#!/usr/bin/env python3
"""One program, two persistency models (the paper's Figure 3).

PMTest's flexibility claim: the same two low-level checkers test the
same crash-consistency requirements under different persistency models.
We write A, order it before B, and require both durable — first on x86
(clwb + sfence), then on HOPS (ofence + dfence), then show what each
model's checker catches when the ordering primitive is dropped.

Run:  python examples/hops_persistency.py
"""

from repro.core.api import PMTestSession
from repro.core.rules import HOPSRules, X86Rules
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine

A, B = 0x100, 0x200


def x86_program(runtime: PMRuntime, correct: bool) -> None:
    """Figure 3a: write A; clwb A; sfence; write B; clwb B; sfence."""
    runtime.store_u64(A, 1)
    runtime.clwb(A, 8)
    if correct:
        runtime.sfence()
    runtime.store_u64(B, 2)
    runtime.clwb(B, 8)
    runtime.sfence()


def hops_program(runtime: PMRuntime, correct: bool) -> None:
    """Figure 3b: write A; ofence; write B; dfence."""
    runtime.store_u64(A, 1)
    if correct:
        runtime.ofence()
    runtime.store_u64(B, 2)
    runtime.dfence()


def run(model: str, correct: bool) -> None:
    if model == "x86":
        rules, machine_model, program = X86Rules(), "x86", x86_program
    else:
        rules, machine_model, program = HOPSRules(), "hops", hops_program
    session = PMTestSession(rules=rules, workers=0)
    session.thread_init()
    session.start()
    runtime = PMRuntime(
        machine=PMMachine(4096, model=machine_model), session=session
    )

    program(runtime, correct)
    # The same checkers, regardless of the model underneath:
    session.is_ordered_before(A, 8, B, 8)
    session.is_persist(A, 8)
    session.is_persist(B, 8)
    result = session.exit()

    variant = "correct" if correct else "missing ordering fence"
    print(f"--- {model:4s} ({variant}): {result.summary()}")
    for report in result.failures:
        print(f"    {report}")
    print()


if __name__ == "__main__":
    print(__doc__)
    run("x86", correct=True)
    run("hops", correct=True)
    run("x86", correct=False)
    run("hops", correct=False)
