"""The PMFS-like filesystem: superblock, inodes, root directory, XIP data.

Region layout::

    +-------------+-------------+--------------+-----------+-----------+
    | superblock  | inode table | dirent table |  journal  | data area |
    +-------------+-------------+--------------+-----------+-----------+

Files live in a single root directory (a fixed table of name -> inode
entries), inodes hold direct block pointers, and data is written
execute-in-place: stores straight into the mapped blocks followed by
flushes.  Metadata updates (inode allocation, directory entries, block
pointers, sizes) are made crash consistent with the undo journal.

Every operation self-annotates with PMTest's low-level checkers (the
"kernel module instrumented by its developers" scenario): e.g. a write
asserts its data persists *before* the published file size, and create
asserts the new inode and directory entry are durable on return.

Historical bug sites (paper Table 6), injectable by name:

``xip-dup-flush``      the XIP write path flushes the same buffer twice
                       (xips.c:207,262, fixed in ded1b075)
``fsync-extra-flush``  fsync writes back buffers that are already clean
                       (files.c:232, fixed in e293e147)
``commit-dup-flush``   journal commit re-flushes the transaction
                       (journal.c:632 — the paper's new Bug 1)

Synthetic low-level bug sites (Table 5 classes):

``write-no-flush``     data stores are never written back (durability)
``size-early``         the file size is published before the data it
                       covers is written (ordering)
``meta-no-fence``      create publishes metadata without a fence
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.instr.runtime import PMRuntime
from repro.pmem.arena import Arena
from repro.pmem.memory import PMImage
from repro.pmfs.journal import Journal, recover_journal

SB_MAGIC = 0x504D46532D4C4954  # "PMFS-LIT"
SB_SIZE = 128

INODE_SIZE = 96
NDIRECT = 8  # direct block pointers per inode
DIRENT_SIZE = 32
NAME_LEN = 24

FS_FAULTS = frozenset(
    {
        "xip-dup-flush",
        "fsync-extra-flush",
        "write-no-flush",
        "size-early",
        "meta-no-fence",
    }
)

#: journal fault names are forwarded to the Journal
from repro.pmfs.journal import KNOWN_FAULTS as JOURNAL_FAULTS

ALL_FAULTS = FS_FAULTS | JOURNAL_FAULTS


class FSError(Exception):
    """Filesystem operation error (no such file, no space, ...)."""


class PMFS:
    """A journaled XIP filesystem over a PM region."""

    def __init__(
        self,
        runtime: PMRuntime,
        base: int = 0,
        size: Optional[int] = None,
        ninodes: int = 64,
        ndirents: int = 64,
        block_size: int = 256,
        journal_capacity: int = 16 * 1024,
        faults: Tuple[str, ...] = (),
        mkfs: bool = True,
    ) -> None:
        unknown = set(faults) - ALL_FAULTS
        if unknown:
            raise ValueError(f"unknown PMFS faults: {sorted(unknown)}")
        if size is None:
            if runtime.machine is None:
                raise ValueError("size required without a machine")
            size = len(runtime.machine.volatile) - base
        self.runtime = runtime
        self.faults = frozenset(faults)
        self.base = base
        self.size = size
        self.ninodes = ninodes
        self.ndirents = ndirents
        self.block_size = block_size
        self.inode_table = base + SB_SIZE
        self.dirent_table = self.inode_table + ninodes * INODE_SIZE
        self.journal_base = self.dirent_table + ndirents * DIRENT_SIZE
        self.journal_capacity = journal_capacity
        self.data_base = self.journal_base + journal_capacity
        data_size = base + size - self.data_base
        if data_size < block_size * 8:
            raise ValueError("PMFS region too small for a useful data area")
        self.arena = Arena(self.data_base, data_size, align=block_size)
        self.journal = Journal(
            runtime,
            self.journal_base,
            journal_capacity,
            faults=tuple(self.faults & JOURNAL_FAULTS),
        )
        if mkfs:
            self._mkfs()
        elif runtime.load_u64(base) != SB_MAGIC:
            raise FSError("no PMFS filesystem at this address")

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def inode_addr(self, ino: int) -> int:
        return self.inode_table + ino * INODE_SIZE

    def dirent_addr(self, index: int) -> int:
        return self.dirent_table + index * DIRENT_SIZE

    def _inode_used(self, ino: int) -> bool:
        return self.runtime.load_u64(self.inode_addr(ino)) != 0

    def _inode_size(self, ino: int) -> int:
        return self.runtime.load_u64(self.inode_addr(ino) + 8)

    def _block_slot(self, ino: int, index: int) -> int:
        return self.inode_addr(ino) + 16 + index * 8

    def max_file_size(self) -> int:
        return NDIRECT * self.block_size

    # ------------------------------------------------------------------
    # mkfs
    # ------------------------------------------------------------------
    def _mkfs(self) -> None:
        runtime = self.runtime
        meta_size = self.data_base - self.base
        runtime.store(self.base, b"\0" * meta_size)
        runtime.persist(self.base, meta_size)
        runtime.store_u64(self.base, SB_MAGIC)
        runtime.store_u64(self.base + 8, self.ninodes)
        runtime.store_u64(self.base + 16, self.ndirents)
        runtime.store_u64(self.base + 24, self.block_size)
        runtime.persist(self.base, 32)

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def _lookup(self, name: bytes) -> Optional[Tuple[int, int]]:
        """Returns ``(dirent_index, ino)`` or None."""
        if len(name) > NAME_LEN:
            raise FSError(f"name longer than {NAME_LEN} bytes")
        for index in range(self.ndirents):
            addr = self.dirent_addr(index)
            ino_plus1 = self.runtime.load_u64(addr)
            if ino_plus1 == 0:
                continue
            stored = self.runtime.load(addr + 8, NAME_LEN).rstrip(b"\0")
            if stored == name:
                return index, ino_plus1 - 1
        return None

    def list_names(self) -> List[bytes]:
        names = []
        for index in range(self.ndirents):
            addr = self.dirent_addr(index)
            if self.runtime.load_u64(addr) != 0:
                names.append(self.runtime.load(addr + 8, NAME_LEN).rstrip(b"\0"))
        return names

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def create(self, name: bytes) -> int:
        """Create an empty file; returns its inode number."""
        if self._lookup(name) is not None:
            raise FSError(f"{name!r} already exists")
        ino = next(
            (i for i in range(self.ninodes) if not self._inode_used(i)), None
        )
        dirent_index = next(
            (
                i
                for i in range(self.ndirents)
                if self.runtime.load_u64(self.dirent_addr(i)) == 0
            ),
            None,
        )
        if ino is None or dirent_index is None:
            raise FSError("out of inodes or directory entries")
        runtime = self.runtime
        inode = self.inode_addr(ino)
        dirent = self.dirent_addr(dirent_index)
        tx = self.journal.begin()
        tx.log_range(inode, INODE_SIZE)
        tx.log_range(dirent, DIRENT_SIZE)
        runtime.store_u64(inode, 1)  # used
        runtime.store_u64(inode + 8, 0)  # size
        runtime.clwb(inode, 16)
        runtime.store_u64(dirent, ino + 1)
        runtime.store(dirent + 8, name.ljust(NAME_LEN, b"\0"))
        runtime.clwb(dirent, DIRENT_SIZE)
        if "meta-no-fence" not in self.faults:
            runtime.sfence()
        commit_entry = tx.commit()
        session = runtime.session
        if session is not None:
            session.is_persist(inode, 16)
            session.is_persist(dirent, DIRENT_SIZE)
            # An undo journal must not declare the transaction committed
            # while the metadata it would roll back is still in flight.
            session.is_ordered_before(inode, 16, commit_entry + 16, 16)
            session.is_ordered_before(dirent, DIRENT_SIZE, commit_entry + 16, 16)
        return ino

    def write(self, name: bytes, offset: int, data: bytes) -> int:
        """XIP write: store into mapped blocks, flush, publish the size."""
        found = self._lookup(name)
        if found is None:
            raise FSError(f"no such file {name!r}")
        _, ino = found
        end = offset + len(data)
        if end > self.max_file_size():
            raise FSError("file would exceed the direct-block limit")
        runtime = self.runtime
        tx = self.journal.begin()
        size_slot = self.inode_addr(ino) + 8
        size_grew = end > self._inode_size(ino)
        if "size-early" in self.faults and size_grew:
            # The ordering bug: the new size is published before the
            # data it covers has been written, let alone persisted.
            tx.log_range(size_slot, 8)
            runtime.store_u64(size_slot, end)
            runtime.clwb(size_slot, 8)
        # Map any missing blocks (journaled pointer updates).
        first_block = offset // self.block_size
        last_block = (end - 1) // self.block_size if data else first_block
        for index in range(first_block, last_block + 1):
            slot = self._block_slot(ino, index)
            if runtime.load_u64(slot) == 0:
                block = self.arena.alloc(self.block_size)
                tx.log_range(slot, 8)
                runtime.store_u64(slot, block)
                runtime.clwb(slot, 8)
        # XIP data stores.
        data_ranges: List[Tuple[int, int]] = []
        cursor = offset
        consumed = 0
        while consumed < len(data):
            index = cursor // self.block_size
            within = cursor % self.block_size
            chunk = min(self.block_size - within, len(data) - consumed)
            block = runtime.load_u64(self._block_slot(ino, index))
            runtime.store(block + within, data[consumed : consumed + chunk])
            if "write-no-flush" not in self.faults:
                runtime.clwb(block + within, chunk)
            if "xip-dup-flush" in self.faults:
                # xips.c: the same buffer written back a second time.
                runtime.clwb(block + within, chunk)
            data_ranges.append((block + within, chunk))
            cursor += chunk
            consumed += chunk
        runtime.sfence()
        # Publish the new size (journaled).
        if size_grew and "size-early" not in self.faults:
            tx.log_range(size_slot, 8)
            runtime.store_u64(size_slot, end)
            runtime.clwb(size_slot, 8)
        runtime.sfence()
        tx.commit()
        session = runtime.session
        if session is not None:
            if size_grew:
                # Freshly exposed data must persist before the size that
                # makes it visible, and the size itself must be durable.
                for addr, length in data_ranges:
                    session.is_ordered_before(addr, length, size_slot, 8)
                session.is_persist(size_slot, 8)
            else:
                for addr, length in data_ranges:
                    session.is_persist(addr, length)
        return len(data)

    def read(self, name: bytes, offset: int = 0,
             length: Optional[int] = None) -> bytes:
        found = self._lookup(name)
        if found is None:
            raise FSError(f"no such file {name!r}")
        _, ino = found
        size = self._inode_size(ino)
        if length is None:
            length = size - offset
        length = max(0, min(length, size - offset))
        out = bytearray()
        cursor = offset
        while len(out) < length:
            index = cursor // self.block_size
            within = cursor % self.block_size
            chunk = min(self.block_size - within, length - len(out))
            block = self.runtime.load_u64(self._block_slot(ino, index))
            if block == 0:
                out.extend(b"\0" * chunk)  # hole
            else:
                out.extend(self.runtime.load(block + within, chunk))
            cursor += chunk
        return bytes(out)

    def unlink(self, name: bytes) -> None:
        found = self._lookup(name)
        if found is None:
            raise FSError(f"no such file {name!r}")
        dirent_index, ino = found
        runtime = self.runtime
        inode = self.inode_addr(ino)
        dirent = self.dirent_addr(dirent_index)
        blocks = [
            runtime.load_u64(self._block_slot(ino, i)) for i in range(NDIRECT)
        ]
        tx = self.journal.begin()
        tx.log_range(dirent, 8)
        tx.log_range(inode, INODE_SIZE)
        runtime.store_u64(dirent, 0)
        runtime.clwb(dirent, 8)
        runtime.store(inode, b"\0" * INODE_SIZE)
        runtime.clwb(inode, INODE_SIZE)
        runtime.sfence()
        tx.commit()
        for block in blocks:
            if block:
                self.arena.free(block)

    def fsync(self, name: bytes) -> None:
        """Data is flushed on write, so a clean fsync is just a fence.

        The historical files.c bug flushed the (already clean) mapped
        buffers anyway — PMTest reports each as an unnecessary
        writeback.
        """
        found = self._lookup(name)
        if found is None:
            raise FSError(f"no such file {name!r}")
        _, ino = found
        if "fsync-extra-flush" in self.faults:
            size = self._inode_size(ino)
            for index in range((size + self.block_size - 1) // self.block_size):
                block = self.runtime.load_u64(self._block_slot(ino, index))
                if block:
                    self.runtime.clwb(block, self.block_size)
        self.runtime.sfence()

    def stat(self, name: bytes) -> Dict[str, int]:
        found = self._lookup(name)
        if found is None:
            raise FSError(f"no such file {name!r}")
        _, ino = found
        return {"ino": ino, "size": self._inode_size(ino)}


# ----------------------------------------------------------------------
# Offline recovery + consistency validation (ground truth)
# ----------------------------------------------------------------------
def recover_fs_image(image: PMImage, fs: PMFS) -> int:
    """Roll back an uncommitted journal transaction in a crash image."""
    return recover_journal(image, fs.journal_base, fs.journal_capacity)


def validate_fs_image(image: PMImage, fs: PMFS) -> bool:
    """Structural consistency of a (recovered) crash image."""
    if image.read_u64(fs.base) != SB_MAGIC:
        return False
    seen_inos = set()
    seen_names = set()
    for index in range(fs.ndirents):
        dirent = fs.dirent_addr(index)
        ino_plus1 = image.read_u64(dirent)
        if ino_plus1 == 0:
            continue
        ino = ino_plus1 - 1
        name = image.read(dirent + 8, NAME_LEN).rstrip(b"\0")
        if ino >= fs.ninodes or ino in seen_inos or not name:
            return False
        if name in seen_names:
            return False
        seen_inos.add(ino)
        seen_names.add(name)
        inode = fs.inode_addr(ino)
        if image.read_u64(inode) != 1:
            return False  # dirent points at a free inode
        size = image.read_u64(inode + 8)
        if size > fs.max_file_size():
            return False
        covered_blocks = (size + fs.block_size - 1) // fs.block_size
        for block_index in range(covered_blocks):
            block = image.read_u64(inode + 16 + block_index * 8)
            if block == 0:
                continue  # holes are legal
            if not (fs.data_base <= block < fs.base + fs.size):
                return False
    return True
