"""Checking rules for the HOPS relaxed persistency model (paper Section 5.2).

HOPS (Nalli et al., ASPLOS '17) decouples ordering from durability with two
fences and has no software-visible cache writebacks:

``ofence``
    Lightweight ordering fence: all earlier writes reach PM before any
    later write, but none is made durable.  It only advances the epoch.
``dfence``
    Durability fence: stalls until every earlier write has persisted.  It
    advances the epoch and closes the persist interval of every open write
    at the new epoch (derived lazily from the recorded dfence epochs).

Because fences alone already order persists, ``isOrderedBefore`` under
HOPS only requires A's interval to *start* strictly before B's — they may
still be durably outstanding together, but the hardware will drain them in
epoch order.
"""

from __future__ import annotations

from typing import List

from repro.core.events import Event, Op
from repro.core.intervals import Interval
from repro.core.reports import Report
from repro.core.rules.base import PersistencyRules, RangeInterval
from repro.core.shadow import SegmentState, ShadowMemory


class HOPSRules(PersistencyRules):
    """HOPS (ofence + dfence) checking rules."""

    name = "hops"

    supported_ops = frozenset({Op.WRITE, Op.OFENCE, Op.DFENCE})

    def apply_op(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        op = event.op
        if op is Op.WRITE:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return []
        if op is Op.OFENCE:
            shadow.advance()
            return []
        if op is Op.DFENCE:
            shadow.record_dfence()
            return []
        self.reject(event)
        return []  # pragma: no cover - reject always raises

    def persist_intervals(
        self, shadow: ShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        return [
            (s, e, shadow.hops_interval(state), state)
            for s, e, state in shadow.pm.overlaps(lo, hi)
        ]

    def ordered(self, a: Interval, b: Interval) -> bool:
        return a.starts_before(b)
