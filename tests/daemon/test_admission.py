"""Unit tests for the admission ladder: token buckets, budgets, rungs."""

import asyncio

import pytest

from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule, Resilience
from repro.core.recovery import RecoveryKind
from repro.daemon.admission import (
    AdmissionController,
    AdmissionPolicy,
    InflightBudget,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_grants_until_empty_then_hints_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=100, clock=clock)
        assert bucket.try_take(60) == 0.0
        assert bucket.try_take(60) == 0.0  # balance 40 > 0: debt allowed
        wait = bucket.try_take(10)
        assert wait == pytest.approx(0.2)  # 20 tokens of debt at 100/s
        assert bucket.tokens == pytest.approx(-20)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=100, clock=clock)
        bucket.try_take(150)  # balance -50
        clock.advance(0.5)
        assert bucket.tokens == pytest.approx(0.0)
        clock.advance(0.25)
        assert bucket.try_take(10) == 0.0  # balance 25 before the take

    def test_burst_is_the_cap(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=30, clock=clock)
        clock.advance(100)  # plenty of time; balance must cap at burst
        assert bucket.tokens == pytest.approx(30)

    def test_oversized_frame_admitted_once_then_paid_back(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=10, clock=clock)
        assert bucket.try_take(1000) == 0.0  # larger than burst, one grant
        assert bucket.try_take(1) > 0  # now deep in debt

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class TestInflightBudget:
    def test_try_acquire_and_release(self):
        budget = InflightBudget(100)
        assert budget.try_acquire(60)
        assert budget.try_acquire(40)
        assert not budget.try_acquire(1)
        budget.release(40)
        assert budget.try_acquire(30)
        assert budget.used == 90

    def test_oversized_request_only_when_idle(self):
        budget = InflightBudget(100)
        assert budget.try_acquire(150)  # idle: debt allowed
        assert budget.used == 150
        budget.release(150)
        assert budget.try_acquire(1)
        assert not budget.try_acquire(150)  # no longer idle

    def test_acquire_waits_for_release(self):
        async def go():
            budget = InflightBudget(100)
            assert budget.try_acquire(100)

            async def releaser():
                await asyncio.sleep(0.01)
                budget.release(100)

            task = asyncio.ensure_future(releaser())
            ok = await budget.acquire(50, timeout=5.0)
            await task
            return ok, budget.used

        ok, used = asyncio.run(go())
        assert ok
        assert used == 50

    def test_acquire_times_out(self):
        async def go():
            budget = InflightBudget(100)
            assert budget.try_acquire(100)
            return await budget.acquire(50, timeout=0.01)

        assert asyncio.run(go()) is False

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            InflightBudget(0)


def run_ladder(controller, session_id=1, tenant="t", nbytes=10, frames=1):
    async def go():
        return [
            await controller.admit_frame(session_id, tenant, nbytes)
            for _ in range(frames)
        ]

    return asyncio.run(go())


class TestAdmissionLadder:
    def test_admits_within_budget(self):
        controller = AdmissionController(AdmissionPolicy())
        [decision] = run_ladder(controller)
        assert decision.admitted
        assert controller.frames_admitted == 1
        assert controller.bytes_admitted == 10

    def test_sheds_when_budget_exhausted(self):
        policy = AdmissionPolicy(
            max_inflight_bytes=100, queue_timeout=0.01, retry_after_ms=50
        )
        controller = AdmissionController(policy)
        first, second = run_ladder(controller, nbytes=100, frames=2)
        assert first.admitted
        assert second.action == "shed"
        assert second.retry_after_ms >= 50
        assert controller.frames_shed == 1
        [event] = controller.events
        assert event.kind is RecoveryKind.SHED
        assert "inflight budget exhausted" in str(event)

    def test_retry_after_grows_exponentially(self):
        policy = AdmissionPolicy(
            max_inflight_bytes=100,
            queue_timeout=0.01,
            retry_after_ms=50,
            max_sheds=100,
        )
        controller = AdmissionController(policy)
        assert run_ladder(controller, nbytes=100)[0].admitted  # fill budget
        decisions = run_ladder(controller, nbytes=50, frames=4)
        hints = [d.retry_after_ms for d in decisions]
        assert hints[0] == 100  # base * 2^1 after the first shed
        assert hints[1] == 200
        assert hints[2] == 400

    def test_retry_after_capped(self):
        policy = AdmissionPolicy(
            max_inflight_bytes=100,
            queue_timeout=0.01,
            retry_after_ms=50,
            max_retry_after_ms=300,
            max_sheds=100,
        )
        controller = AdmissionController(policy)
        assert run_ladder(controller, nbytes=100)[0].admitted  # fill budget
        decisions = run_ladder(controller, nbytes=50, frames=6)
        assert decisions[-1].retry_after_ms == 300

    def test_rejects_after_max_consecutive_sheds(self):
        policy = AdmissionPolicy(
            max_inflight_bytes=100, queue_timeout=0.01, max_sheds=2
        )
        controller = AdmissionController(policy)
        controller.session_opened(1)
        assert run_ladder(controller, nbytes=100)[0].admitted  # fill budget
        decisions = run_ladder(controller, nbytes=50, frames=3)
        assert [d.action for d in decisions] == ["shed", "shed", "reject"]
        assert controller.sessions_rejected == 1
        assert controller.events[-1].kind is RecoveryKind.SESSION_REJECTED

    def test_admit_resets_shed_counter(self):
        policy = AdmissionPolicy(
            max_inflight_bytes=100, queue_timeout=0.01, max_sheds=2
        )
        controller = AdmissionController(policy)
        controller.session_opened(1)

        async def go():
            async def admit(nbytes):
                return await controller.admit_frame(1, "t", nbytes)

            assert (await admit(100)).admitted  # fill budget
            assert (await admit(50)).action == "shed"
            controller.release(100)
            assert (await admit(100)).admitted
            # the earlier shed no longer counts toward the reject
            # threshold: two more sheds stay on rung 1 instead of
            # tripping max_sheds=2
            assert (await admit(50)).action == "shed"
            assert (await admit(50)).action == "shed"

        asyncio.run(go())

    def test_tenant_rate_limit_sheds(self):
        clock = FakeClock()
        policy = AdmissionPolicy(
            tenant_rate_bytes=100, tenant_burst_bytes=100, queue_timeout=0.01
        )
        controller = AdmissionController(policy, clock=clock)
        first, second, third = run_ladder(controller, nbytes=80, frames=3)
        assert first.admitted
        assert second.admitted  # debt
        assert third.action == "shed"
        assert "over byte rate" in third.reason
        clock.advance(10.0)
        [after] = run_ladder(controller, nbytes=80, frames=1)
        assert after.admitted

    def test_rate_limit_is_per_tenant(self):
        clock = FakeClock()
        policy = AdmissionPolicy(
            tenant_rate_bytes=100, tenant_burst_bytes=100, queue_timeout=0.01
        )
        controller = AdmissionController(policy, clock=clock)
        assert run_ladder(controller, tenant="a", nbytes=150)[0].admitted
        assert run_ladder(controller, tenant="a", nbytes=150)[0].action == "shed"
        assert run_ladder(controller, tenant="b", nbytes=150)[0].admitted

    def test_no_fallback_rejects_instead_of_shedding(self):
        policy = AdmissionPolicy(max_inflight_bytes=100, queue_timeout=0.01)
        controller = AdmissionController(
            policy, Resilience(fallback=False)
        )
        first, second = run_ladder(controller, nbytes=100, frames=2)
        assert first.admitted
        assert second.action == "reject"
        assert "degradation is disabled" in second.reason

    def test_session_limit(self):
        policy = AdmissionPolicy(max_sessions=1)
        controller = AdmissionController(policy)
        assert controller.admit_session("a") is None
        controller.session_opened(1)
        reason = controller.admit_session("b")
        assert reason is not None and "session limit" in reason
        controller.session_closed(1)
        assert controller.admit_session("c") is None

    def test_chaos_forced_shed(self):
        plan = FaultPlan(
            [FaultRule(FaultPoint.DAEMON_SHED, FaultKind.FAIL, at=0, count=1)]
        )
        controller = AdmissionController(AdmissionPolicy(), faults=plan)
        controller.session_opened(1)
        first, second = run_ladder(controller, frames=2)
        assert first.action == "shed"
        assert "chaos" in first.reason
        assert second.admitted  # the fault fired once; retry sails through

    def test_budget_shed_refunds_token_bucket(self):
        clock = FakeClock()
        policy = AdmissionPolicy(
            max_inflight_bytes=100,
            queue_timeout=0.01,
            tenant_rate_bytes=1000,
            tenant_burst_bytes=1000,
        )
        controller = AdmissionController(policy, clock=clock)
        assert run_ladder(controller, nbytes=100)[0].admitted
        balance_before = controller._buckets["t"].tokens
        assert run_ladder(controller, nbytes=100)[0].action == "shed"
        # the shed frame will be resent and recharged; no double billing
        assert controller._buckets["t"].tokens == pytest.approx(balance_before)
