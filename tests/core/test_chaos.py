"""End-to-end chaos tests: the checking pipeline under injected faults.

The contract: every *recoverable* fault (worker crash, slow worker,
queue stall, FIFO starvation) is absorbed by supervision — respawn,
requeue, watchdog sweep, backend degradation — and the final
:class:`TestResult` stays **bit-identical** to a fault-free inline run,
with the recovery visible in ``result.diagnostics``.  Unrecoverable
faults (hangs with fallback disabled, corrupted wire encodings) must
surface as :class:`CheckingFailed` within the configured watchdog
bound, never as an indefinite hang.
"""

import time

import pytest

from repro.core.backends import CheckingFailed
from repro.core.events import Event, Op, Trace
from repro.core.faults import (
    FaultError,
    FaultKind,
    FaultPlan,
    FaultPoint,
    FaultRule,
    plan_from_seed,
)
from repro.core.kfifo import KernelFifo
from repro.core.traceio import encode_result
from repro.core.workers import WorkerPool
from repro.pmfs.kernel import KernelBridge


def bad_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, trace_id * 64, 8))
    trace.append(Event(Op.CHECK_PERSIST, trace_id * 64, 8))
    return trace


def good_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, trace_id * 64, 8))
    trace.append(Event(Op.CLWB, trace_id * 64, 8))
    trace.append(Event(Op.SFENCE))
    trace.append(Event(Op.CHECK_PERSIST, trace_id * 64, 8))
    return trace


def mixed_traces(n: int):
    return [bad_trace(i) if i % 2 else good_trace(i) for i in range(n)]


def inline_reference(traces) -> tuple:
    with WorkerPool(num_workers=0) as pool:
        for trace in traces:
            pool.submit(trace)
        return encode_result(pool.drain())


def run_under_faults(traces, **pool_kwargs):
    pool = WorkerPool(**pool_kwargs)
    try:
        for trace in traces:
            pool.submit(trace)
        return pool.drain()
    finally:
        pool._backend.stop()


class TestCrashRecovery:
    def test_process_worker_killed_mid_run_is_bit_identical(self):
        """The acceptance scenario: a chaos plan kills one process worker
        mid-run; the supervisor requeues its traces and respawns it, and
        the final result is bit-identical to the inline reference."""
        traces = mixed_traces(10)
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0)]
        )
        result = run_under_faults(
            traces,
            num_workers=1,
            backend="process",
            batch_size=2,
            check_timeout=10.0,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("respawned checking worker process" in d
                   for d in result.diagnostics)

    def test_thread_worker_killed_mid_run_is_bit_identical(self):
        traces = mixed_traces(9)
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0, worker=0
                )
            ]
        )
        result = run_under_faults(
            traces,
            num_workers=2,
            backend="thread",
            check_timeout=10.0,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("respawned checking worker thread 0" in d
                   for d in result.diagnostics)

    def test_crashes_beyond_retry_budget_degrade_to_fallback(self):
        """Every first-generation process worker crashes; with a retry
        budget of one, the backend is declared unhealthy and the pool
        degrades to the thread backend — verdicts unchanged."""
        traces = mixed_traces(10)
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0)]
        )
        result = run_under_faults(
            traces,
            num_workers=3,
            backend="process",
            batch_size=1,
            max_retries=1,
            check_timeout=10.0,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("degraded checking backend 'process' -> 'thread'" in d
                   for d in result.diagnostics)


class TestSlowAndHungWorkers:
    def test_slow_workers_are_harmless(self):
        traces = mixed_traces(12)
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.WORKER_BATCH,
                    FaultKind.SLOW,
                    at=0,
                    count=3,
                    delay=0.01,
                )
            ]
        )
        result = run_under_faults(
            traces,
            num_workers=2,
            backend="thread",
            check_timeout=10.0,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)

    def test_hung_thread_worker_recovered_by_watchdog_sweep(self):
        """Worker 0 hangs on its first trace; the watchdog redistributes
        its outstanding traces to the live worker and the drain
        completes — no degradation needed."""
        traces = mixed_traces(8)
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.WORKER_BATCH, FaultKind.HANG, at=0, worker=0
                )
            ]
        )
        result = run_under_faults(
            traces,
            num_workers=2,
            backend="thread",
            check_timeout=0.3,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("watchdog" in d for d in result.diagnostics)

    def test_unrecoverable_hang_bounded_by_check_timeout(self):
        """The acceptance bound: with fallback disabled and every worker
        hung, ``drain`` raises within ~2x check_timeout instead of
        blocking forever."""
        traces = mixed_traces(4)
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.HANG, at=0)]
        )
        pool = WorkerPool(
            num_workers=1,
            backend="thread",
            check_timeout=0.25,
            fallback=False,
            faults=plan,
        )
        start = time.monotonic()
        try:
            for trace in traces:
                pool.submit(trace)
            with pytest.raises(CheckingFailed, match="watchdog timeout"):
                pool.drain()
        finally:
            pool._backend.stop()
        assert time.monotonic() - start < 8.0

    def test_hang_degrades_to_inline_when_fallback_enabled(self):
        traces = mixed_traces(4)
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.HANG, at=0)]
        )
        result = run_under_faults(
            traces,
            num_workers=1,
            backend="thread",
            check_timeout=0.25,
            faults=plan,
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("degraded checking backend 'thread' -> 'inline'" in d
                   for d in result.diagnostics)


class TestCorruption:
    def test_corrupted_wire_encoding_fails_typed(self):
        """A trace mangled in transit surfaces as CheckingFailed naming
        TraceDecodeError — never an arbitrary exception or a hang."""
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WIRE_ENCODE, FaultKind.CORRUPT, at=0)]
        )
        pool = WorkerPool(
            num_workers=1, backend="process", batch_size=1, faults=plan
        )
        try:
            for trace in mixed_traces(3):
                pool.submit(trace)
            with pytest.raises(CheckingFailed, match="TraceDecodeError"):
                pool.drain()
        finally:
            pool._backend.stop()


class TestSpawnFallback:
    def test_spawn_failure_degrades_one_step(self):
        plan = FaultPlan(rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL)])
        traces = mixed_traces(6)
        pool = WorkerPool(num_workers=2, backend="process", faults=plan)
        try:
            assert pool.backend_name == "thread"
            assert pool.degraded
            assert any("unavailable at spawn" in d for d in pool.diagnostics)
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert encode_result(result) == inline_reference(traces)
        assert any("unavailable at spawn" in d for d in result.diagnostics)

    def test_spawn_failure_walks_whole_chain(self):
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL, count=2)]
        )
        pool = WorkerPool(num_workers=2, backend="process", faults=plan)
        assert pool.backend_name == "inline"
        assert len(pool.diagnostics) == 2
        pool.close()

    def test_spawn_failure_raises_with_fallback_disabled(self):
        plan = FaultPlan(rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL)])
        with pytest.raises(FaultError):
            WorkerPool(
                num_workers=2, backend="process", fallback=False, faults=plan
            )


class TestKernelFifoStarvation:
    def test_starved_producer_still_delivers_in_order(self):
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.KFIFO_PUT, FaultKind.STALL, at=0, count=2,
                    delay=0.001,
                )
            ]
        )
        fifo: KernelFifo[int] = KernelFifo(capacity=4, faults=plan)
        for i in range(3):
            fifo.put(i)
        assert [fifo.get() for _ in range(3)] == [0, 1, 2]
        assert plan._hits[(FaultPoint.KFIFO_PUT, None)] == 3

    def test_kernel_bridge_survives_seeded_chaos(self):
        """The whole kernel path (FIFO producer stalls + a worker crash)
        under a seed-derived plan still matches the inline reference."""
        traces = mixed_traces(12)
        bridge = KernelBridge(
            num_workers=2,
            backend="thread",
            fifo_capacity=4,
            check_timeout=10.0,
            faults=plan_from_seed(5),
        )
        try:
            for trace in traces:
                bridge.submit(trace)
            result = bridge.close()
        finally:
            bridge.fifo.close()
        assert encode_result(result) == inline_reference(traces)
        assert any("respawned" in d for d in result.diagnostics)


class TestEnvironmentOverrides:
    def test_backend_env_overrides_derived_backend(self, monkeypatch):
        monkeypatch.setenv("PMTEST_BACKEND", "process")
        monkeypatch.delenv("PMTEST_CHAOS_SEED", raising=False)
        pool = WorkerPool(num_workers=2)
        assert pool.backend_name == "process"
        pool.close()

    def test_backend_env_does_not_override_explicit_choice(self, monkeypatch):
        monkeypatch.setenv("PMTEST_BACKEND", "process")
        pool = WorkerPool(num_workers=2, backend="thread")
        assert pool.backend_name == "thread"
        pool.close()

    def test_backend_env_ignores_synchronous_pools(self, monkeypatch):
        monkeypatch.setenv("PMTEST_BACKEND", "process")
        pool = WorkerPool(num_workers=0)
        assert pool.backend_name == "inline"
        pool.close()

    def test_invalid_backend_env_rejected(self, monkeypatch):
        monkeypatch.setenv("PMTEST_BACKEND", "gpu")
        with pytest.raises(ValueError):
            WorkerPool(num_workers=1)

    def test_chaos_seed_env_injects_recoverable_faults(self, monkeypatch):
        monkeypatch.delenv("PMTEST_BACKEND", raising=False)
        monkeypatch.setenv("PMTEST_CHAOS_SEED", "3")
        traces = mixed_traces(12)
        result = run_under_faults(
            traces, num_workers=2, backend="thread", check_timeout=10.0
        )
        assert encode_result(result) == inline_reference(traces)
        assert any("respawned" in d for d in result.diagnostics)
