"""End-to-end span propagation: one chrome://tracing timeline across
the client process, the daemon process, and a checking worker process.

This drives the real CLI in subprocesses (``repro serve --trace-out``
plus ``repro submit --trace-out``), merges the two trace files with
:func:`repro.core.tracing.merge_trace_files`, and asserts that the
parent links stitch the three processes into one correctly-nested
tree:

    client.session  (client pid)
      └─ daemon.session  (server pid)
           └─ pool  (server pid)
                └─ worker.batch  (worker pid)
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.core.traceio import dump_traces
from repro.core.tracing import merge_trace_files, span_tree

from tests.daemon.conftest import make_traces

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_serve(sock, trace_out):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("PMTEST_METRICS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--uds", sock,
            "--workers", "1", "--backend", "process",
            "--trace-out", trace_out,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = process.stdout.readline()
    if "listening on" not in line:
        process.kill()
        rest = process.stdout.read()
        pytest.fail(f"serve did not come up: {line!r} {rest!r}")
    return process


def _events_by_name(events):
    spans = {}
    for event in events:
        if event.get("ph") == "X":
            spans.setdefault(event["name"], []).append(event)
    return spans


class TestCrossProcessTimeline:
    def test_merged_trace_links_three_pids(self, tmp_path, uds_path):
        dump = tmp_path / "run.pmtrace"
        dump_traces(make_traces(12), dump)
        serve_trace = tmp_path / "serve-trace.json"
        client_trace = tmp_path / "client-trace.json"

        serve = _spawn_serve(uds_path, str(serve_trace))
        try:
            env = dict(os.environ, PYTHONPATH=SRC)
            submit = subprocess.run(
                [
                    sys.executable, "-m", "repro", "submit", str(dump),
                    "--connect", uds_path,
                    "--trace-out", str(client_trace),
                    "--quiet",
                ],
                env=env, capture_output=True, text=True, timeout=120,
            )
            assert submit.returncode in (0, 1), submit.stderr
        finally:
            serve.send_signal(signal.SIGTERM)
            out, _ = serve.communicate(timeout=60)
        assert "drained:" in out

        merged = tmp_path / "merged.json"
        total = merge_trace_files([client_trace, serve_trace], merged)
        events = json.loads(merged.read_text())
        assert len(events) == total

        spans = _events_by_name(events)
        for name in ("client.session", "client.drain", "daemon.session",
                     "daemon.drain", "pool", "worker.batch"):
            assert name in spans, f"missing span {name!r}"

        def arg(name, key):
            return spans[name][0]["args"].get(key)

        # The parent chain crosses both wire hops.
        assert arg("daemon.session", "parent_id") == arg(
            "client.session", "span_id"
        )
        assert arg("pool", "parent_id") == arg("daemon.session", "span_id")
        assert arg("worker.batch", "parent_id") == arg("pool", "span_id")
        assert arg("daemon.drain", "parent_id") == arg(
            "client.drain", "span_id"
        )
        assert arg("client.drain", "parent_id") == arg(
            "client.session", "span_id"
        )

        # Three distinct OS processes contributed complete spans.
        pids = {
            event["pid"]
            for batch in spans.values()
            for event in batch
        }
        assert len(pids) >= 3

        # Every non-root parent link resolves inside the merged file.
        tree = span_tree(events)
        roots = []
        for span_id, parent_id in tree.items():
            if parent_id is None:
                roots.append(span_id)
            else:
                assert parent_id in tree, f"dangling parent {parent_id}"
        assert roots == [
            spans["client.session"][0]["args"]["span_id"]
        ]
