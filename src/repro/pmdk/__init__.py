"""A PMDK-like persistent-object library (libpmemobj analogue).

The paper's microbenchmarks and Redis workload are built on Intel's PMDK;
this package reimplements the relevant core from scratch on top of the
simulated PM:

``objects``
    Typed persistent structs: declarative field layouts over raw PM
    addresses, so data structures read like C structs and every store
    goes through the instrumented runtime.
``pool``
    The persistent object pool: header, root object, undo-log region and
    heap allocator.
``tx``
    Failure-atomic transactions with undo logging — ``tx_begin`` /
    ``tx_add`` (snapshot before modify) / ``tx_end`` (flush + commit),
    nested transaction flattening, abort rollback, and offline recovery
    of a crash image.  Faults can be injected by name to reproduce the
    paper's synthetic transaction bugs.

The library itself issues realistic PM operation sequences (log append →
flush → fence → valid flag → fence ...), so PMTest observes the same
shape of traces it would from real PMDK, and library-internal bugs (the
paper's Table 6) have faithful analogues here.
"""

from repro.pmdk.objects import (
    ArrayField,
    BytesField,
    I64Field,
    PStruct,
    PtrField,
    U64Field,
)
from repro.pmdk.pool import PMPool
from repro.pmdk.tx import TransactionAborted, TransactionManager, recover_image

__all__ = [
    "ArrayField",
    "BytesField",
    "I64Field",
    "PMPool",
    "PStruct",
    "PtrField",
    "TransactionAborted",
    "TransactionManager",
    "U64Field",
    "recover_image",
]
