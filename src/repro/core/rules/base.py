"""The persistency-model strategy interface.

A rules object owns three responsibilities:

1. applying each PM *operation* to the shadow memory (possibly emitting
   performance warnings along the way, e.g. duplicate writebacks);
2. deriving the *persist interval* of every modified subrange of an
   address range;
3. deciding what "A is ordered before B" means for two persist intervals
   (x86: A's interval must end before B's starts; HOPS: A's must start
   strictly earlier).

The two low-level checkers are implemented here once, in terms of those
responsibilities, so every persistency model gets them for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.core.events import Event, Op
from repro.core.intervals import Interval
from repro.core.reports import Level, Report, ReportCode
from repro.core.shadow import SegmentState, ShadowMemory

#: ``(lo, hi, interval, state)`` for one modified subrange.
RangeInterval = Tuple[int, int, Interval, SegmentState]


class UnsupportedOperation(Exception):
    """A trace contains an op the active persistency model does not define.

    For example, a ``clwb`` makes no sense under HOPS (which has no
    software-visible writebacks) and an ``ofence`` makes none under x86.
    Reaching this exception means the program under test was built for a
    different PM system than the one the engine is configured with — a
    configuration error, not a crash-consistency bug, hence an exception
    rather than a report.
    """


class PersistencyRules(ABC):
    """Strategy object defining one persistency model's checking rules."""

    #: short model name used in reports and benchmarks
    name: str = "abstract"

    #: ops this model accepts in traces (fences, flush flavours, ...)
    supported_ops: frozenset = frozenset()

    def make_shadow(self) -> ShadowMemory:
        """Create a fresh shadow memory for one trace."""
        return ShadowMemory()

    def state_codec(self):
        """A fresh state-code table for the array shadow store, or ``None``.

        Models that support the ``--shadow array`` store return a
        :class:`repro.core.interval_array.ValueCodec` (x86 returns its
        :class:`repro.core.rules.x86.SegmentStateCodec`, which keeps a
        parallel flush-epoch column for vectorized persist checks).
        ``None`` — the default — means the model's states have no code
        table and :func:`repro.core.shadow.make_shadow_for` quietly
        keeps the object map for it.
        """
        return None

    # ------------------------------------------------------------------
    # Operation semantics
    # ------------------------------------------------------------------
    @abstractmethod
    def apply_op(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        """Update the shadow for one PM operation; return any warnings."""

    def apply_op_silent(self, shadow: ShadowMemory, event: Event) -> None:
        """Apply an op for its *state effects only*, discarding reports.

        Used by epoch-shard replay to reconstruct shadow state over a
        prefix that an earlier shard has already checked.  Shadow
        mutations must be identical to :meth:`apply_op`'s; the default
        simply delegates and drops the reports (reports are apply_op's
        only output besides the mutation, so this is always correct).
        Models may override to skip diagnostic-only scans.
        """
        self.apply_op(shadow, event)

    # ------------------------------------------------------------------
    # Interval derivation
    # ------------------------------------------------------------------
    @abstractmethod
    def persist_intervals(
        self, shadow: ShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        """Persist intervals for every modified subrange of ``[lo, hi)``."""

    @abstractmethod
    def ordered(self, a: Interval, b: Interval) -> bool:
        """Whether interval ``a`` is guaranteed to persist before ``b``."""

    # ------------------------------------------------------------------
    # The two low-level checkers (paper Section 3.1)
    # ------------------------------------------------------------------
    def check_persist(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        """``isPersist(addr, size)``.

        Fails for every subrange whose persist interval has not closed by
        the current timestamp.  Never-written subranges trivially pass
        ("persisted since their last update" — there was no update).
        """
        reports: List[Report] = []
        for lo, hi, interval, state in self.persist_intervals(
            shadow, event.addr, event.end
        ):
            if not interval.ends_by(shadow.timestamp):
                reports.append(
                    Report(
                        level=Level.FAIL,
                        code=ReportCode.NOT_PERSISTED,
                        message=(
                            f"[{lo:#x}, {hi:#x}) may not be persistent: "
                            f"persist interval {interval} is open at "
                            f"epoch {shadow.timestamp}"
                        ),
                        site=event.site,
                        related_site=state.write_site,
                        seq=event.seq,
                    )
                )
        return reports

    def check_order(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        """``isOrderedBefore(addrA, sizeA, addrB, sizeB)``.

        Fails for every pair of persist intervals (one over A, one over B)
        that the model cannot guarantee are ordered.  If either range was
        never written there is nothing to order; that usually indicates a
        misplaced checker, so it is surfaced as a warning.
        """
        a_side = self.persist_intervals(shadow, event.addr, event.end)
        b_side = self.persist_intervals(shadow, event.addr2, event.end2)
        if not a_side or not b_side:
            empty = "first" if not a_side else "second"
            return [
                Report(
                    level=Level.WARN,
                    code=ReportCode.ORDER_UNKNOWN,
                    message=(
                        f"isOrderedBefore: the {empty} range was never "
                        "written in this trace; nothing to order"
                    ),
                    site=event.site,
                    seq=event.seq,
                )
            ]
        reports: List[Report] = []
        for a_lo, a_hi, a_iv, a_state in a_side:
            for b_lo, b_hi, b_iv, _ in b_side:
                if not self.ordered(a_iv, b_iv):
                    reports.append(
                        Report(
                            level=Level.FAIL,
                            code=ReportCode.NOT_ORDERED,
                            message=(
                                f"[{a_lo:#x}, {a_hi:#x}) {a_iv} may not "
                                f"persist before [{b_lo:#x}, {b_hi:#x}) "
                                f"{b_iv}: persist intervals are not ordered"
                            ),
                            site=event.site,
                            related_site=a_state.write_site,
                            seq=event.seq,
                        )
                    )
        return reports

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def reject(self, event: Event) -> None:
        raise UnsupportedOperation(
            f"{self.name} persistency model does not define "
            f"{event.op.name} (at {event.site})"
        )

    def is_supported(self, op: Op) -> bool:
        return op in self.supported_ops
