"""PMTest reproduction: a fast and flexible testing framework for
persistent-memory programs, with a fully simulated PM stack.

This package reimplements the system of

    Liu, Wei, Zhao, Kolli, Khan.  "PMTest: A Fast and Flexible Testing
    Framework for Persistent Memory Programs", ASPLOS 2019

from scratch in Python, together with every substrate its evaluation
depends on: a simulated persistent-memory machine with crash-state
enumeration, PMDK-/Mnemosyne-like persistence libraries, a PMFS-like
filesystem, the WHISPER-style workloads, and the Yat/pmemcheck baseline
tools.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the per-figure reproduction results.

Quick taste::

    from repro import PMTestSession, PMRuntime, PMMachine

    with PMTestSession(workers=0) as session:
        rt = PMRuntime(machine=PMMachine(4096), session=session)
        rt.store_u64(0x00, 1)          # write A
        rt.persist(0x00, 8)            # clwb; sfence
        rt.store_u64(0x40, 2)          # write B
        session.is_ordered_before(0x00, 8, 0x40, 8)   # ok
        session.is_persist(0x40, 8)                   # FAIL: B not durable
"""

from repro.core.api import PMTestSession
from repro.core.engine import CheckingEngine
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import HOPSRules, PersistencyRules, X86Rules
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool

__version__ = "1.0.0"

__all__ = [
    "CheckingEngine",
    "CrashEnumerator",
    "HOPSRules",
    "Level",
    "PMMachine",
    "PMPool",
    "PMRuntime",
    "PMTestSession",
    "PersistencyRules",
    "Report",
    "ReportCode",
    "TestResult",
    "X86Rules",
    "__version__",
]
