"""Equivalence of the naive per-byte rules with the interval rules.

The ablation baseline (:class:`NaiveX86Rules`) must produce identical
FAIL verdicts to :class:`X86Rules` on arbitrary traces — the two differ
only in data-structure cost (and in how finely performance warnings are
reported: the naive rules emit at most one warning per category per
flush op, the interval rules one per offending subrange).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, Trace
from repro.core.reports import FAIL_CODES
from repro.core.rules import X86Rules
from repro.core.rules.naive import NaiveX86Rules

_ADDR = st.integers(0, 100)
_SIZE = st.integers(1, 24)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just(Op.WRITE), _ADDR, _SIZE),
        st.tuples(st.just(Op.WRITE_NT), _ADDR, _SIZE),
        st.tuples(st.just(Op.CLWB), _ADDR, _SIZE),
        st.tuples(st.just(Op.SFENCE), st.just(0), st.just(0)),
        st.tuples(st.just(Op.CHECK_PERSIST), _ADDR, _SIZE),
    ),
    max_size=30,
)


def _trace(ops) -> Trace:
    trace = Trace(0)
    for op, addr, size in ops:
        if op is Op.SFENCE:
            trace.append(Event(op))
        else:
            trace.append(Event(op, addr, size))
    return trace


@given(_OPS)
@settings(max_examples=150, deadline=None)
def test_fail_verdicts_identical(ops):
    interval = CheckingEngine(X86Rules()).check_trace(_trace(ops))
    naive = CheckingEngine(NaiveX86Rules()).check_trace(_trace(ops))
    # Compare verdicts per checker event as *sets*: the two shadows may
    # segment one logical range differently (adjacent equal-state writes
    # merge per byte but not per segment), changing report multiplicity
    # without changing any verdict.
    fail_interval = {
        (r.code, r.seq) for r in interval.reports if r.code in FAIL_CODES
    }
    fail_naive = {
        (r.code, r.seq) for r in naive.reports if r.code in FAIL_CODES
    }
    assert fail_interval == fail_naive


@given(_OPS)
@settings(max_examples=100, deadline=None)
def test_warning_categories_agree(ops):
    """Per event, the *set* of warning codes must match (the naive rules
    only collapse multiplicities)."""
    interval = CheckingEngine(X86Rules()).check_trace(_trace(ops))
    naive = CheckingEngine(NaiveX86Rules()).check_trace(_trace(ops))

    def by_seq(result):
        out = {}
        for report in result.reports:
            if report.code not in FAIL_CODES:
                out.setdefault(report.seq, set()).add(report.code)
        return out

    assert by_seq(interval) == by_seq(naive)


def test_order_checker_supported():
    """isOrderedBefore works through the naive range grouping too."""
    trace = Trace(0)
    trace.append(Event(Op.WRITE, 0, 8))
    trace.append(Event(Op.CLWB, 0, 8))
    trace.append(Event(Op.SFENCE))
    trace.append(Event(Op.WRITE, 64, 8))
    trace.append(Event(Op.CHECK_ORDER, 0, 8, 64, 8))
    result = CheckingEngine(NaiveX86Rules()).check_trace(trace)
    assert not result.failures
