"""Tests for the span tracer: fake clocks, nesting, misuse, output."""

import json

import pytest

from repro.core.tracing import Tracer, TracingError


class FakeClock:
    """Deterministic nanosecond clock: each read advances by ``step``."""

    def __init__(self, step=1000):
        self.now = 0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    return Tracer(**kwargs), clock


class TestSpans:
    def test_span_duration_from_injected_clock(self):
        tracer, clock = make_tracer()
        clock.step = 0
        clock.now = 5_000
        with tracer.span("check"):
            clock.now = 12_000
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "check"
        assert event["dur"] == pytest.approx(7.0)  # microseconds

    def test_nested_spans_close_lifo(self):
        tracer, _ = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events()]
        assert names == ["inner", "outer"]  # inner ends first
        assert tracer.open_spans == 0

    def test_span_args_survive(self):
        tracer, _ = make_tracer()
        with tracer.span("submit", trace_id=7):
            pass
        (event,) = tracer.events()
        assert event["args"] == {"trace_id": 7}

    def test_instant_and_counter_events(self):
        tracer, _ = make_tracer()
        tracer.instant("backend.degraded", old="process")
        tracer.counter("queue", depth=3)
        kinds = [e["ph"] for e in tracer.events()]
        assert kinds == ["i", "C"]
        assert tracer.events()[1]["args"] == {"depth": 3}


class TestMisuse:
    def test_strict_unbalanced_end_raises(self):
        tracer, _ = make_tracer(strict=True)
        tracer.begin("a")
        with pytest.raises(TracingError, match="unbalanced"):
            tracer.end("b")

    def test_strict_end_without_begin_raises(self):
        tracer, _ = make_tracer(strict=True)
        with pytest.raises(TracingError, match="no open span"):
            tracer.end("a")

    def test_strict_leak_at_finish_raises(self):
        tracer, _ = make_tracer(strict=True)
        tracer.begin("leaky")
        with pytest.raises(TracingError, match="never closed"):
            tracer.finish()

    def test_production_leak_warns_and_force_closes(self):
        tracer, _ = make_tracer(strict=False)
        tracer.begin("leaky")
        with pytest.warns(RuntimeWarning, match="never closed"):
            tracer.finish()
        (event,) = tracer.events()
        assert event["name"] == "leaky"
        assert event["ph"] == "X"  # still a complete span in the timeline

    def test_production_unbalanced_end_warns_but_closes(self):
        tracer, _ = make_tracer(strict=False)
        tracer.begin("a")
        with pytest.warns(RuntimeWarning, match="unbalanced"):
            tracer.end("b")
        assert tracer.open_spans == 0

    def test_finish_is_idempotent(self):
        tracer, _ = make_tracer()
        tracer.finish()
        tracer.finish()

    def test_recording_after_finish_raises(self):
        tracer, _ = make_tracer()
        tracer.finish()
        with pytest.raises(TracingError, match="finished"):
            tracer.begin("late")


class TestOutput:
    def test_write_emits_valid_chrome_trace(self, tmp_path):
        tracer, _ = make_tracer(process_name="unit-test")
        with tracer.span("drain"):
            tracer.instant("mark")
        path = tmp_path / "trace.json"
        count = tracer.write(path)
        assert count == 2
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        assert data[0]["ph"] == "M"
        assert data[0]["args"] == {"name": "unit-test"}
        for event in data[1:]:
            assert {"ph", "name", "pid", "tid", "ts"} <= set(event)

    def test_write_finishes_first(self, tmp_path):
        tracer, _ = make_tracer()
        tracer.begin("open")
        with pytest.warns(RuntimeWarning):
            tracer.write(tmp_path / "t.json")
        data = json.loads((tmp_path / "t.json").read_text())
        assert any(e.get("name") == "open" for e in data)
