"""Table 6: the historical bugs — 3 reproduced from commit history plus
the 3 new bugs PMTest found in PMFS and PMDK applications.

Each row names the original file/line and upstream fix; the benchmark
re-detects all six on the reimplemented code paths.
"""

import pytest

from repro.bugs import HISTORICAL_BUGS, run_bug_case


def test_table6_real_bugs(benchmark, capsys):
    outcomes = {}

    def run_corpus():
        outcomes.clear()
        for case in HISTORICAL_BUGS:
            outcomes[case.bug_id] = run_bug_case(case, scale=20)

    benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    with capsys.disabled():
        print("\n--- Table 6 reproduction: known + new real bugs ---")
        for case in HISTORICAL_BUGS:
            outcome = outcomes[case.bug_id]
            status = "DETECTED" if outcome.detected else "MISSED"
            codes = ", ".join(sorted(c.value for c in outcome.fired)) or "-"
            print(f"[{case.category:5s}] {status:8s} {case.description}")
            print(f"        fix: {case.historical}   reports: {codes}")

    missed = [o for o in outcomes.values() if not o.detected]
    assert not missed, [str(o) for o in missed]
