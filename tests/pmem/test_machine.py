"""Tests for the PM machine: volatile/durable split and retirement."""

import pytest

from repro.pmem.machine import PMMachine


class TestVolatileDomain:
    def test_store_visible_to_loads_immediately(self):
        m = PMMachine(1024)
        m.store(0, b"hello")
        assert m.load(0, 5) == b"hello"

    def test_store_not_durable_until_flushed_and_fenced(self):
        m = PMMachine(1024)
        m.store(0, b"hello")
        assert m.durable.read(0, 5) == b"\0" * 5
        m.flush(0, 5)
        assert m.durable.read(0, 5) == b"\0" * 5
        m.sfence()
        assert m.durable.read(0, 5) == b"hello"

    def test_fence_without_flush_retires_nothing(self):
        m = PMMachine(1024)
        m.store(0, b"x")
        m.sfence()
        assert m.durable.read(0, 1) == b"\0"
        assert m.pending_fragments() == 1

    def test_nt_store_durable_after_fence_alone(self):
        m = PMMachine(1024)
        m.store(0, b"y", nt=True)
        m.sfence()
        assert m.durable.read(0, 1) == b"y"

    def test_flush_covers_whole_lines(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(32, b"b")  # same cache line
        m.flush(0, 1)  # flushing any byte of the line flushes both stores
        m.sfence()
        assert m.durable.read(32, 1) == b"b"

    def test_straddling_store_fragments_per_line(self):
        m = PMMachine(1024)
        m.store(60, b"12345678")  # 4 bytes in line 0, 4 in line 1
        assert m.pending_lines() == 2
        m.flush(60, 1)  # only line 0
        m.sfence()
        assert m.durable.read(60, 4) == b"1234"
        assert m.durable.read(64, 4) == b"\0" * 4

    def test_quiescent(self):
        m = PMMachine(1024)
        assert m.quiescent
        m.store(0, b"z")
        assert not m.quiescent
        m.flush(0, 1)
        m.sfence()
        assert m.quiescent


class TestLinePrefixInvariant:
    def test_later_flush_retires_earlier_stores_of_line(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(8, b"b")
        m.flush(8, 1)  # marks both: the flush writes the whole line back
        m.sfence()
        assert m.durable.read(0, 1) == b"a"
        assert m.durable.read(8, 1) == b"b"

    def test_store_after_flush_stays_pending(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.flush(0, 1)
        m.store(8, b"b")  # after the flush: not covered by it
        m.sfence()
        assert m.durable.read(0, 1) == b"a"
        assert m.durable.read(8, 1) == b"\0"
        assert m.pending_fragments() == 1


class TestHOPSMachine:
    def test_dfence_drains_everything(self):
        m = PMMachine(1024, model="hops")
        m.store(0, b"a")
        m.ofence()
        m.store(64, b"b")
        m.dfence()
        assert m.durable.read(0, 1) == b"a"
        assert m.durable.read(64, 1) == b"b"
        assert m.quiescent

    def test_ofence_only_advances_epoch(self):
        m = PMMachine(1024, model="hops")
        m.store(0, b"a")
        m.ofence()
        assert m.epoch == 1
        assert not m.quiescent

    def test_model_mismatch_raises(self):
        x86 = PMMachine(64, model="x86")
        with pytest.raises(RuntimeError):
            x86.ofence()
        hops = PMMachine(64, model="hops")
        with pytest.raises(RuntimeError):
            hops.flush(0, 8)
        with pytest.raises(RuntimeError):
            hops.sfence()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            PMMachine(64, model="arm")


class TestOpLog:
    def test_disabled_by_default(self):
        assert PMMachine(64).oplog is None

    def test_records_all_ops(self):
        m = PMMachine(1024, record_ops=True)
        m.store(0, b"a")
        m.flush(0, 1)
        m.sfence()
        m.store(8, b"b", nt=True)
        assert [kind for kind, _, _ in m.oplog] == [
            "store",
            "flush",
            "sfence",
            "store_nt",
        ]


class TestStats:
    def test_counters(self):
        m = PMMachine(1024)
        m.store(0, b"abcd")
        m.load(0, 4)
        m.flush(0, 4)
        m.sfence()
        assert m.stats.stores == 1
        assert m.stats.loads == 1
        assert m.stats.flushes == 1
        assert m.stats.fences == 1
        assert m.stats.bytes_stored == 4

    def test_bounds_checked(self):
        m = PMMachine(64)
        with pytest.raises(IndexError):
            m.store(60, b"123456789")
        with pytest.raises(IndexError):
            m.load(64, 1)
