"""Runs bug cases: inject, drive, and check PMTest's verdict.

For each case the injector builds a fresh simulated PM system with the
case's faults wired into the target, drives the standard workload for
that target under a synchronous PMTest session with the appropriate
checkers (transaction checkers for transactional targets, the targets'
self-annotated low-level checkers otherwise), and reports whether any of
the expected diagnostics fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode, TestResult
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmfs.fs import PMFS
from repro.mnemosyne.pmap import MnemosyneMap
from repro.structures import ALL_STRUCTURES
from repro.bugs.registry import BugCase


@dataclass
class BugRunOutcome:
    """What happened when a bug case was executed."""

    case: BugCase
    result: TestResult
    detected: bool
    fired: Set[ReportCode]

    def __str__(self) -> str:
        status = "DETECTED" if self.detected else "MISSED"
        codes = ", ".join(sorted(code.value for code in self.fired)) or "-"
        return f"{self.case.bug_id:4s} {status:8s} [{codes}] {self.case.description}"


def run_bug_case(case: BugCase, scale: int = 40, sink=None) -> BugRunOutcome:
    """Execute one case; ``scale`` sizes the workload.

    ``sink`` substitutes the session's trace sink — e.g. a
    :class:`~repro.core.traceio.TraceRecorder` to capture the case's
    traces instead of checking them (the cross-backend equivalence test
    replays such recordings through every checking backend).
    """
    session = PMTestSession(workers=0, sink=sink)
    session.thread_init()
    session.start()
    runtime = PMRuntime(machine=PMMachine(32 << 20), session=session)
    if case.target == "pmfs":
        _drive_pmfs(runtime, case, scale)
    elif case.target == "mnemosyne":
        _drive_mnemosyne(runtime, case, scale)
    else:
        _drive_structure(runtime, session, case, scale)
    result = session.exit()
    fired = set(result.codes())
    return BugRunOutcome(
        case=case,
        result=result,
        detected=bool(fired & case.expected),
        fired=fired,
    )


# ----------------------------------------------------------------------
# Per-target drivers
# ----------------------------------------------------------------------
def _drive_structure(
    runtime: PMRuntime,
    session: PMTestSession,
    case: BugCase,
    scale: int,
) -> None:
    pool = PMPool(runtime, log_capacity=512 * 1024, tx_faults=case.tx_faults)
    structure = ALL_STRUCTURES[case.target](
        pool, value_size=32, faults=case.faults
    )
    session.send_trace()  # keep setup out of the checked traces
    transactional = case.target != "hashmap_atomic"
    keys = _keys_for(case.workload, scale)

    def checked(fn) -> None:
        if transactional:
            session.tx_check_start()
        fn()
        if transactional:
            session.tx_check_end()
        session.send_trace()

    for key in keys:
        checked(lambda k=key: structure.insert(k))
    if case.workload == "update":
        for key in keys:
            checked(lambda k=key: structure.insert(k))
    elif case.workload == "remove":
        for key in keys[::2]:
            checked(lambda k=key: structure.remove(k))


def _keys_for(workload: str, scale: int):
    if workload == "ascending":
        return list(range(scale))
    if workload == "descending":
        return list(range(scale))[::-1]
    # A mixing stride so tree shapes stay interesting.
    return [(i * 13) % (scale * 2) for i in range(scale)]


def _drive_pmfs(runtime: PMRuntime, case: BugCase, scale: int) -> None:
    fs = PMFS(runtime, journal_capacity=32 * 1024, faults=case.faults)
    session = runtime.session
    session.send_trace()
    for i in range(max(scale // 4, 4)):
        name = f"f{i}".encode()
        fs.create(name)
        fs.write(name, 0, bytes([i % 256]) * 300)
        fs.fsync(name)
        session.send_trace()
        if i % 3 == 2:
            fs.unlink(name)
            session.send_trace()


def _drive_mnemosyne(runtime: PMRuntime, case: BugCase, scale: int) -> None:
    pool = PMPool(runtime, log_capacity=64 * 1024)
    pmap = MnemosyneMap(pool, log_faults=case.log_faults)
    session = runtime.session
    session.send_trace()
    for i in range(max(scale // 2, 8)):
        pmap.set(f"key{i}".encode(), f"value{i}".encode())
        session.send_trace()
        if i % 4 == 3:
            pmap.delete(f"key{i - 1}".encode())
            session.send_trace()
