#!/usr/bin/env python3
"""Quickstart: find the paper's Figure 1a bug with two checkers.

The program updates an array element crash-consistently via undo
logging: back up the old value, mark the backup valid, persist; update
in place, invalidate the backup, persist.  The buggy version (the
paper's opening example) misses two persist_barriers, so the hardware
may reorder the persists; the crash-consistency requirements are stated
with ``isOrderedBefore`` and PMTest finds both violations.

Run:  python examples/quickstart.py
"""

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine

# A tiny PM layout: one backup record and a four-element array.
BACKUP_VAL = 0x000  # backup.val
BACKUP_VALID = 0x008  # backup.valid
ARRAY = 0x040  # array[4] of u64


def array_update(runtime: PMRuntime, index: int, new_val: int,
                 buggy: bool) -> None:
    """The paper's ArrayUpdate (Figure 1a)."""
    session = runtime.session
    array_slot = ARRAY + index * 8

    runtime.store_u64(BACKUP_VAL, runtime.load_u64(array_slot))
    if not buggy:  # the first missing persist_barrier
        runtime.persist(BACKUP_VAL, 8)
    runtime.store_u64(BACKUP_VALID, 1)
    runtime.persist(BACKUP_VALID, 8) if not buggy else runtime.persist(
        BACKUP_VAL, 16
    )
    # Requirement 1: the backup value persists before the valid flag
    # (otherwise recovery may trust a garbage backup).
    session.is_ordered_before(BACKUP_VAL, 8, BACKUP_VALID, 8)

    runtime.store_u64(array_slot, new_val)
    if not buggy:  # the second missing persist_barrier
        runtime.persist(array_slot, 8)
    runtime.store_u64(BACKUP_VALID, 0)
    if buggy:
        runtime.clwb(array_slot, 8)
        runtime.clwb(BACKUP_VALID, 8)
        runtime.sfence()
    else:
        runtime.persist(BACKUP_VALID, 8)
    # Requirement 2: the in-place update persists before the backup is
    # invalidated (otherwise recovery has neither old nor new value).
    session.is_ordered_before(array_slot, 8, BACKUP_VALID, 8)


def run(buggy: bool) -> None:
    session = PMTestSession(workers=0, capture_sites=True)
    session.thread_init()
    session.start()
    machine = PMMachine(4096)
    runtime = PMRuntime(machine=machine, session=session, capture_sites=True)

    array_update(runtime, index=1, new_val=42, buggy=buggy)
    result = session.exit()

    label = "buggy" if buggy else "fixed"
    print(f"--- {label} ArrayUpdate: {result.summary()}")
    for report in result.reports:
        print(f"    {report}")
    print()


if __name__ == "__main__":
    print(__doc__)
    run(buggy=True)  # PMTest reports both ordering violations
    run(buggy=False)  # and the fixed version is clean
