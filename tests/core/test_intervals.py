"""Unit tests for epoch-interval arithmetic."""

from repro.core.intervals import INF, Interval, span


class TestInterval:
    def test_closed(self):
        assert Interval(0, 1).closed
        assert not Interval(0, INF).closed

    def test_ends_by(self):
        assert Interval(0, 1).ends_by(1)
        assert Interval(0, 1).ends_by(5)
        assert not Interval(0, 2).ends_by(1)
        assert not Interval(0, INF).ends_by(10**9)

    def test_ordered_before_disjoint(self):
        # Paper Figure 7 line 6: (0,1) before (1,inf) -- touching is ordered.
        assert Interval(0, 1).ordered_before(Interval(1, INF))

    def test_ordered_before_overlap(self):
        # Paper Figure 4: (1,2) does not order before (1,inf).
        assert not Interval(1, 2).ordered_before(Interval(1, INF))

    def test_open_interval_orders_before_nothing(self):
        assert not Interval(0, INF).ordered_before(Interval(5, 6))

    def test_starts_before(self):
        assert Interval(0, INF).starts_before(Interval(1, INF))
        assert not Interval(1, INF).starts_before(Interval(1, INF))

    def test_overlaps_symmetry(self):
        a, b = Interval(0, 2), Interval(1, 3)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_span_default_open(self):
        assert span(3) == Interval(3, INF)
        assert span(3, 4) == Interval(3, 4)
