"""Shared helpers for daemon tests: workloads and server fixtures."""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.rules import X86Rules
from repro.core.workers import WorkerPool


def make_traces(n: int = 10, *, offset: int = 0, broken_every: int = 2) -> List[Trace]:
    """A deterministic mixed workload: every ``broken_every``-th trace
    omits its flush, so verdicts carry real FAIL reports to compare."""
    traces = []
    for i in range(n):
        trace_id = offset + i
        addr = 0x1000 + trace_id * 0x40
        t = Trace(trace_id, thread_name=f"t{trace_id}")
        t.append(Event(Op.WRITE, addr, 64,
                       site=SourceSite("app.c", trace_id, "update")))
        if broken_every == 0 or i % broken_every:
            t.append(Event(Op.CLWB, addr, 64))
            t.append(Event(Op.SFENCE))
        t.append(Event(Op.CHECK_PERSIST, addr, 64))
        traces.append(t)
    return traces


def library_verdict(traces, **pool_kwargs):
    """The in-process WorkerPool verdict for ``traces``."""
    pool = WorkerPool(X86Rules(), **pool_kwargs)
    try:
        for trace in traces:
            pool.submit(trace)
        return pool.drain()
    finally:
        pool.close()


def verdict_key(result):
    """The comparable essence of a verdict (excludes diagnostics and
    metadata, same as the wire format and cross-backend equivalence)."""
    return (
        result.summary(),
        [
            (r.level, r.code, r.message, r.site, r.related_site,
             r.trace_id, r.seq)
            for r in result.reports
        ],
    )


@pytest.fixture
def uds_path(tmp_path):
    # Keep the socket path short: AF_UNIX paths cap at ~108 bytes.
    return os.path.join(str(tmp_path), "d.sock")
