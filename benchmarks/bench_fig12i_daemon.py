"""Fig 12i: checking-as-a-service daemon under a load generator.

Streams the fig12 checking workload through the daemon over a Unix
domain socket and compares against the same pool driven in-process.
Three rows:

* ``library``       — WorkerPool submit+drain, no wire (baseline)
* ``daemon-uds``    — framed PMTB stream through ``repro.daemon``
* ``daemon-overload`` — same stream against a tenant rate limit sized
  to roughly half the offered load, so the admission ladder sheds and
  the client retries (2x-overload acceptance row)

A separate load-generator pass records per-frame round-trip latency in
a log2 :class:`Histogram` and stashes sustained traces/sec plus
p50/p99 into :data:`_harness.DAEMON_LOAD` for the benchmark JSON.
"""

import os
import tempfile
import time

import pytest

from repro.core.rules import X86Rules
from repro.core.metrics import Histogram
from repro.core.workers import WorkerPool
from repro.daemon import AdmissionPolicy, CheckingClient, start_in_thread

from _harness import (
    DAEMON_LOAD,
    RESULTS,
    env_int,
    make_checking_traces,
    pedantic,
    record,
)

N_TRACES = env_int("PMTEST_BENCH_DAEMON_TRACES", 60)
BATCH = 8


@pytest.fixture()
def workload():
    return make_checking_traces(n_traces=N_TRACES)


@pytest.fixture()
def uds_path():
    # AF_UNIX caps sun_path around 108 bytes; keep it short and ours.
    with tempfile.TemporaryDirectory(prefix="pmtb-", dir="/tmp") as d:
        yield os.path.join(d, "d.sock")


def stream(client: CheckingClient, traces):
    for trace in traces:
        client.submit(trace)
    return client.close()


class TestFig12iDaemon:
    def test_library_baseline(self, benchmark, bench_rounds, workload):
        def make_execute():
            pool = WorkerPool(X86Rules(), num_workers=0)

            def execute():
                for trace in workload:
                    pool.submit(trace)
                pool.drain()
                pool.close()

            return execute

        pedantic(benchmark, bench_rounds, make_execute)
        record("fig12i", ("library",), benchmark)

    def test_daemon_uds(self, benchmark, bench_rounds, workload, uds_path):
        with start_in_thread(uds=uds_path, workers=0):
            def make_execute():
                client = CheckingClient(
                    f"unix://{uds_path}", batch_size=BATCH, deadline=120
                )

                def execute():
                    stream(client, workload)

                return execute

            pedantic(benchmark, bench_rounds, make_execute)
        record("fig12i", ("daemon-uds",), benchmark)

    def test_daemon_overload(
        self, benchmark, bench_rounds, workload, uds_path
    ):
        # Size the tenant rate well under the offered byte rate (this
        # workload streams ~24 KiB in ~28 ms unthrottled, ~860 KB/s)
        # with a burst of about one frame, so the run is a sustained
        # >=2x overload and every round sheds.
        policy = AdmissionPolicy(
            tenant_rate_bytes=256 * 1024,
            tenant_burst_bytes=4096,
            retry_after_ms=2,
            max_sheds=100000,
        )
        sheds = []
        with start_in_thread(uds=uds_path, workers=0, policy=policy):
            def make_execute():
                client = CheckingClient(
                    f"unix://{uds_path}", batch_size=BATCH, deadline=300
                )

                def execute():
                    stream(client, workload)
                    sheds.append(client.sheds_seen)

                return execute

            pedantic(benchmark, bench_rounds, make_execute)
        record("fig12i", ("daemon-overload",), benchmark)
        DAEMON_LOAD["overload_sheds_per_round"] = sum(sheds) / len(sheds)
        seconds = benchmark.stats.stats.mean
        DAEMON_LOAD["overload_traces_per_sec"] = (
            N_TRACES / seconds if seconds else 0.0
        )


class TestFig12iLatencyProfile:
    def test_load_generator_profile(self, workload, uds_path):
        """Not a timing row: one sustained pass recording per-frame
        round-trip latency, published as traces/sec + p50/p99."""
        latency = Histogram()
        with start_in_thread(uds=uds_path, workers=0):
            # batch_size > BATCH so submit() never auto-flushes: the
            # timed flush() below is the real frame round trip.
            client = CheckingClient(
                f"unix://{uds_path}", batch_size=2 * BATCH, deadline=120
            )
            start = time.perf_counter()
            for i in range(0, len(workload), BATCH):
                for trace in workload[i:i + BATCH]:
                    client.submit(trace)
                t0 = time.perf_counter_ns()
                client.flush()
                latency.record(time.perf_counter_ns() - t0)
            result = client.close()
            elapsed = time.perf_counter() - start
        assert result.traces_checked == N_TRACES
        assert latency.count == -(-N_TRACES // BATCH)
        DAEMON_LOAD["sustained_traces_per_sec"] = N_TRACES / elapsed
        DAEMON_LOAD["frame_p50_ms"] = latency.quantile(0.50) / 1e6
        DAEMON_LOAD["frame_p99_ms"] = latency.quantile(0.99) / 1e6
        DAEMON_LOAD["frame_mean_ms"] = latency.mean / 1e6


class TestFig12iShape:
    """Relationships the figure asserts, not absolute numbers."""

    def test_daemon_overhead_is_bounded(self):
        library = RESULTS.get(("fig12i", ("library",)))
        daemon = RESULTS.get(("fig12i", ("daemon-uds",)))
        if not library or not daemon:
            pytest.skip("fig12i rows not benchmarked in this run")
        # The wire adds overhead, but checking still dominates: the
        # daemon must stay within an order of magnitude of in-process.
        assert daemon < library * 10

    def test_overload_sheds_but_completes(self):
        if "overload_sheds_per_round" not in DAEMON_LOAD:
            pytest.skip("overload row not benchmarked in this run")
        # Overload was real (the ladder fired) yet every trace was
        # eventually accepted — the recorded rate is the proof the
        # round finished with a verdict.
        assert DAEMON_LOAD["overload_sheds_per_round"] > 0
        assert DAEMON_LOAD["overload_traces_per_sec"] > 0
