"""Tests for the kernel FIFO channel (paper Section 4.5)."""

import threading
import time

import pytest

from repro.core.kfifo import FifoClosed, KernelFifo


class TestBasics:
    def test_fifo_order(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        for i in range(5):
            fifo.put(i)
        assert [fifo.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        fifo.put(1)
        fifo.put(2)
        assert len(fifo) == 2

    def test_get_timeout(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=8)
        with pytest.raises(TimeoutError):
            fifo.get(timeout=0.01)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            KernelFifo(capacity=1)


class TestBackpressure:
    def test_producer_blocks_when_full_and_wakes_below_half(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        for i in range(4):
            fifo.put(i)
        produced = threading.Event()

        def producer():
            fifo.put(99)  # must block: fifo full
            produced.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not produced.is_set()
        # Draining one item (3 left, >= capacity//2 == 2) must NOT wake it.
        fifo.get()
        time.sleep(0.05)
        assert not produced.is_set()
        # Draining below half capacity wakes the producer (hysteresis).
        fifo.get()
        fifo.get()
        t.join(timeout=1)
        assert produced.is_set()
        assert fifo.producer_waits == 1

    def test_no_wait_when_not_full(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.put(1)
        assert fifo.producer_waits == 0


class TestClose:
    def test_close_wakes_blocked_consumer(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        raised = threading.Event()

        def consumer():
            try:
                fifo.get()
            except FifoClosed:
                raised.set()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.02)
        fifo.close()
        t.join(timeout=1)
        assert raised.is_set()

    def test_put_on_closed_raises(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.close()
        with pytest.raises(FifoClosed):
            fifo.put(1)

    def test_get_drains_before_raising(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        fifo.put(1)
        fifo.close()
        assert fifo.get() == 1
        with pytest.raises(FifoClosed):
            fifo.get()

    def test_close_wakes_parked_producer(self):
        """Satellite regression: a producer parked on a full FIFO must be
        released promptly by close() with FifoClosed, not left blocked
        forever on a dead consumer."""
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        for i in range(4):
            fifo.put(i)
        outcome = []

        def producer():
            try:
                fifo.put(99)
            except FifoClosed:
                outcome.append("closed")

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not outcome  # parked: FIFO full, nothing drained
        fifo.close()
        t.join(timeout=2)
        assert outcome == ["closed"]


class TestHardening:
    def test_put_timeout_while_parked(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        for i in range(4):
            fifo.put(i)
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            fifo.put(99, timeout=0.05)
        assert time.monotonic() - start < 2.0
        # The timed-out item was never enqueued.
        assert len(fifo) == 4

    def test_put_with_timeout_succeeds_when_space_frees(self):
        fifo: KernelFifo[int] = KernelFifo(capacity=4)
        for i in range(4):
            fifo.put(i)

        def consumer():
            time.sleep(0.02)
            for _ in range(4):
                fifo.get()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        fifo.put(99, timeout=5.0)  # parks, then space frees up
        t.join(timeout=2)
        assert fifo.get() == 99

    def test_capacity_two_hysteresis_edge(self):
        """capacity=2 is the degenerate hysteresis case: half capacity
        is 1, so a parked producer wakes only once the FIFO is empty."""
        fifo: KernelFifo[int] = KernelFifo(capacity=2)
        fifo.put(0)
        fifo.put(1)
        produced = threading.Event()

        def producer():
            fifo.put(2)
            produced.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not produced.is_set()
        assert fifo.get() == 0  # one item left == capacity // 2: no wake
        time.sleep(0.05)
        assert not produced.is_set()
        assert fifo.get() == 1  # empty: below half, producer wakes
        t.join(timeout=2)
        assert produced.is_set()
        assert fifo.get() == 2
        assert fifo.producer_waits == 1
