"""Checking rules for the x86 strict persistency model (paper Section 4.4).

Operation semantics:

``write(addr, size)``
    Clears any existing persist/flush state over the range and opens a
    persist interval at the current epoch: the store may persist at any
    time from now on (cache eviction), but is not guaranteed to.
``write_nt(addr, size)``
    A non-temporal store bypasses the cache: it behaves like a write whose
    writeback has already been issued, so the next ``sfence`` persists it
    without a ``clwb``.
``clwb/clflushopt/clflush(addr, size)``
    Opens a flush interval.  Two performance diagnostics fire here:
    flushing a range with a writeback already in flight is a duplicate
    flush, and flushing a range that holds no un-persisted write (never
    written, or already persisted) is an unnecessary writeback
    (Section 5.1.2).  The ISA guarantees a flush is ordered after a prior
    write to the same cache line, which is why ``(write, clwb, sfence)``
    suffices to persist — no fence is needed *between* write and clwb.
``sfence``
    Increments the global timestamp.  Interval closure is derived lazily
    (see :mod:`repro.core.shadow`): a flush issued in epoch ``t`` is
    complete — and its write persistent — once the timestamp has passed
    ``t``, with interval end ``t + 1``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.events import Event, FLUSH_OPS, Op, SourceSite
from repro.core.interval_map import IntervalMap
from repro.core.intervals import Interval
from repro.core.reports import Level, Report, ReportCode
from repro.core.rules.base import PersistencyRules, RangeInterval
from repro.core.shadow import SegmentState, ShadowMemory

try:  # the write-run kernel vectorizes span detection with numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is usually present
    _np = None

_OP_WRITE = Op.WRITE.value


def _run_is_disjoint(addrs, sizes, start: int, end: int) -> bool:
    """Whether the write run ``[start, end)`` covers strictly ascending,
    non-overlapping ranges — the common struct-field/append pattern,
    where every write survives whole and the coverage sweep is pure
    overhead.  Vectorized as two slice comparisons under numpy; the
    fallback is a plain forward scan (columns may be ``array``,
    ``memoryview`` or — for out-of-``int64``-range property-test inputs
    that overflow the numpy conversion — lists)."""
    if _np is not None:
        try:
            a = _np.asarray(addrs[start:end], dtype=_np.int64)
            s = _np.asarray(sizes[start:end], dtype=_np.int64)
        except (OverflowError, ValueError, TypeError):
            pass
        else:
            return bool((a[1:] >= (a + s)[:-1]).all())
    prev_hi = None
    for k in range(start, end):
        lo = addrs[k]
        if prev_hi is not None and lo < prev_hi:
            return False
        prev_hi = lo + sizes[k]
    return True


class X86Rules(PersistencyRules):
    """x86 (clwb + sfence) checking rules."""

    name = "x86"

    supported_ops = frozenset(
        {Op.WRITE, Op.WRITE_NT, Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH, Op.SFENCE}
    )

    def apply_op(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        op = event.op
        if op is Op.WRITE:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return []
        if op is Op.WRITE_NT:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, shadow.timestamp, event.site, event.site),
            )
            return []
        if op in FLUSH_OPS:
            return self._apply_flush(shadow, event)
        if op is Op.SFENCE:
            shadow.advance()
            return []
        self.reject(event)
        return []  # pragma: no cover - reject always raises

    def apply_op_silent(self, shadow: ShadowMemory, event: Event) -> None:
        """State-only :meth:`apply_op` for epoch-shard prefix replay.

        Identical shadow mutations with the diagnostic passes skipped:
        the gap/overlap scans in :meth:`_apply_flush` only *read* the
        map to build warnings, so dropping them cannot change state.
        """
        op = event.op
        if op is Op.WRITE:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return
        if op is Op.WRITE_NT:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, shadow.timestamp, event.site, event.site),
            )
            return
        if op in FLUSH_OPS:
            now = shadow.timestamp
            site = event.site

            def record(lo: int, hi: int, state: SegmentState) -> SegmentState:
                if state.flush_epoch is not None:
                    return state
                return state.with_flush(now, site)

            shadow.pm.update(event.addr, event.end, record)
            return
        if op is Op.SFENCE:
            shadow.advance()
            return
        self.reject(event)

    def _apply_flush(self, shadow: ShadowMemory, event: Event) -> List[Report]:
        """Record a writeback and diagnose redundant ones."""
        reports: List[Report] = []
        now = shadow.timestamp
        for lo, hi in shadow.pm.gaps(event.addr, event.end):
            reports.append(
                _warn(
                    ReportCode.UNNECESSARY_FLUSH,
                    f"writeback of [{lo:#x}, {hi:#x}) which was never "
                    "modified in this trace",
                    event,
                )
            )
        for lo, hi, state in shadow.pm.overlaps(event.addr, event.end):
            flush_iv = shadow.x86_flush_interval(state)
            if flush_iv is not None and not flush_iv.closed:
                reports.append(
                    _warn(
                        ReportCode.DUP_FLUSH,
                        f"[{lo:#x}, {hi:#x}) already has a writeback in "
                        f"flight (issued at {state.flush_site})",
                        event,
                    )
                )
            elif flush_iv is not None:
                # Flushed and fenced already, and not re-written since:
                # this writeback moves no new data.
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"[{lo:#x}, {hi:#x}) is already persistent; "
                        "this writeback is redundant",
                        event,
                    )
                )
        # Only the first writeback after a write matters: a duplicate
        # keeps the original epoch (persistence is guaranteed by the
        # first fence after the *first* writeback), and re-flushing an
        # already-persistent segment must not reopen its closed persist
        # interval.
        def record(lo: int, hi: int, state: SegmentState) -> SegmentState:
            if state.flush_epoch is not None:
                return state
            return state.with_flush(now, event.site)

        shadow.pm.update(event.addr, event.end, record)
        return reports

    def apply_flush_fused(
        self, shadow: ShadowMemory, event: Event
    ) -> List[Report]:
        """:meth:`_apply_flush` with the gap scan derived from the
        overlap scan — one map walk instead of two, identical reports
        in identical order (gap warnings first, ascending; then overlap
        diagnostics, ascending).  Used by the columnar engine's bulk
        replay loop; the differential suite pins the equivalence.
        """
        reports: List[Report] = []
        now = shadow.timestamp
        lo = event.addr
        hi = event.end
        segments = shadow.pm.overlaps(lo, hi)
        prev = lo
        for seg_lo, seg_hi, _ in segments:
            if seg_lo > prev:
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"writeback of [{prev:#x}, {seg_lo:#x}) which was "
                        "never modified in this trace",
                        event,
                    )
                )
            prev = seg_hi
        if prev < hi:
            reports.append(
                _warn(
                    ReportCode.UNNECESSARY_FLUSH,
                    f"writeback of [{prev:#x}, {hi:#x}) which was never "
                    "modified in this trace",
                    event,
                )
            )
        for seg_lo, seg_hi, state in segments:
            flush_iv = shadow.x86_flush_interval(state)
            if flush_iv is not None and not flush_iv.closed:
                reports.append(
                    _warn(
                        ReportCode.DUP_FLUSH,
                        f"[{seg_lo:#x}, {seg_hi:#x}) already has a "
                        f"writeback in flight (issued at {state.flush_site})",
                        event,
                    )
                )
            elif flush_iv is not None:
                reports.append(
                    _warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        f"[{seg_lo:#x}, {seg_hi:#x}) is already persistent; "
                        "this writeback is redundant",
                        event,
                    )
                )
        site = event.site

        def record(s_lo: int, s_hi: int, state: SegmentState) -> SegmentState:
            if state.flush_epoch is not None:
                return state
            return state.with_flush(now, site)

        shadow.pm.update(lo, hi, record)
        return reports

    def apply_write_run(
        self,
        shadow: ShadowMemory,
        ops,
        addrs,
        sizes,
        site_at: Callable[[int], Optional[SourceSite]],
        start: int,
        end: int,
    ) -> None:
        """Epoch kernel: apply a pure write/write_nt run ``[start, end)``
        (all sizes positive) as one whole-run operation.

        The final shadow segmentation is byte-identical to sequential
        :meth:`apply_op_silent` calls, by one of two arguments:

        * **Disjoint runs** (ascending, non-overlapping — detected
          vectorized by :func:`_run_is_disjoint`): every write is the
          sole writer of its range, so forward per-range ``assign``
          calls are literally the sequential replay minus the dead
          scratch-event fills.
        * **Overlapping runs**: one reverse coverage sweep finds, for
          each write, the subranges no *later* write in the run covers
          (gap queries against an accumulating coverage map); only
          those surviving pieces are assigned, in forward write order.
          Each surviving piece has exactly the last-writer state the
          sequential replay would leave it with, and dead writes never
          touch the shadow map at all.

        Writes never emit reports and the epoch timestamp cannot
        advance inside a run, so nothing can observe the intermediate
        states the sequential replay would have created.
        """
        ts = shadow.timestamp
        pm_assign = shadow.pm.assign
        write = _OP_WRITE
        if _run_is_disjoint(addrs, sizes, start, end):
            for k in range(start, end):
                site = site_at(k)
                lo = addrs[k]
                pm_assign(
                    lo,
                    lo + sizes[k],
                    SegmentState(ts, None, site)
                    if ops[k] == write
                    else SegmentState(ts, ts, site, site),
                )
            return
        coverage: IntervalMap[bool] = IntervalMap()
        coverage_gaps = coverage.gaps
        coverage_assign = coverage.assign
        pieces: List[Tuple[int, List[Tuple[int, int]]]] = []
        for k in range(end - 1, start - 1, -1):
            lo = addrs[k]
            hi = lo + sizes[k]
            gaps = coverage_gaps(lo, hi)
            if gaps:
                pieces.append((k, gaps))
                coverage_assign(lo, hi, True)
        for k, gaps in reversed(pieces):
            site = site_at(k)
            state = (
                SegmentState(ts, None, site)
                if ops[k] == write
                else SegmentState(ts, ts, site, site)
            )
            for lo, hi in gaps:
                pm_assign(lo, hi, state)

    def persist_intervals(
        self, shadow: ShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        return [
            (s, e, shadow.x86_interval(state), state)
            for s, e, state in shadow.pm.overlaps(lo, hi)
        ]

    def ordered(self, a: Interval, b: Interval) -> bool:
        return a.ordered_before(b)


def _warn(code: ReportCode, message: str, event: Event) -> Report:
    return Report(
        level=Level.WARN,
        code=code,
        message=message,
        site=event.site,
        seq=event.seq,
    )
