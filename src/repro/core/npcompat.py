"""Optional-numpy loader shared by the vectorized fast paths.

Every module with a numpy fast path loads the library through
:func:`load_numpy` so one environment knob — ``PMTEST_NO_NUMPY=1`` —
forces the ``array('q')``/scalar fallbacks everywhere at once.  The knob
exists because the scalar paths are the only ones exercised on hosts
without numpy; CI runs the differential suite under it so those paths
cannot rot on developer machines where numpy is installed.

The check happens at import time: the fallback choice must be stable for
the life of a process (worker processes inherit the environment, so a
pool stays internally consistent).
"""

from __future__ import annotations

import os

#: environment variable that disables numpy fast paths when set truthy
NO_NUMPY_ENV_VAR = "PMTEST_NO_NUMPY"


def load_numpy():
    """Return the numpy module, or ``None`` when absent or disabled."""
    if os.environ.get(NO_NUMPY_ENV_VAR):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy
