"""The paper's Section 7.1 discovery, reproduced as a test.

"In a program with nested PMDK transactions ... PMTest reports that the
updates in the inner transaction are not persisted before the end of
the inner TX_END.  ...  Analyzing PMDK source code, we found that
updates are guaranteed to be persisted only when the outermost
transaction ends."

PMTest is not only a bug finder: wrapping the checker pair around the
inner vs the outer transaction reveals the library's real durability
semantics.
"""

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool


def _nested_tx(session, check: str):
    """Outer TX containing an inner TX that updates one object."""
    runtime = PMRuntime(machine=PMMachine(1 << 20), session=session)
    pool = PMPool(runtime, log_capacity=8 * 1024)
    addr = pool.alloc(8)
    session.send_trace()
    tx = pool.tx
    if check == "outer":
        session.tx_check_start()
    tx.begin()  # outer
    if check == "inner":
        session.tx_check_start()
    tx.begin()  # inner
    tx.add(addr, 8)
    runtime.store_u64(addr, 42)
    tx.commit()  # inner TX_END: nothing is durable yet
    if check == "inner":
        session.tx_check_end()
    tx.commit()  # outer TX_END: now everything is flushed + fenced
    if check == "outer":
        session.tx_check_end()


def test_inner_scope_reports_unpersisted_updates():
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    _nested_tx(session, check="inner")
    result = session.exit()
    # The checkers around the inner transaction report that its updates
    # are not durable at the inner TX_END...
    assert result.count(ReportCode.TX_NOT_PERSISTED) >= 1
    assert result.count(ReportCode.INCOMPLETE_TX) >= 1  # still nested


def test_outer_scope_is_clean():
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    _nested_tx(session, check="outer")
    result = session.exit()
    # ...but moving them to the outermost transaction passes: updates
    # are guaranteed durable only when the outermost transaction ends.
    assert result.clean, [str(r) for r in result.reports]
