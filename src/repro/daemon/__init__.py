"""Checking-as-a-service: the PMTest daemon (``repro serve``).

The library's :class:`~repro.core.workers.WorkerPool` assumes the
checker lives in the instrumented process.  This package turns it into
a long-running network service: an asyncio server that speaks the PMTB
binary codec over TCP and Unix domain sockets, multiplexes many client
sessions, applies admission control under overload (queue -> shed ->
reject), and propagates backpressure to clients instead of buffering
unbounded work.  Verdicts are byte-identical to library-mode checking:
each session drives its own worker pool, so the service changes *where*
checking happens, never *what* it concludes.
"""

from repro.daemon.admission import (  # noqa: F401
    AdmissionController,
    AdmissionPolicy,
    Decision,
    InflightBudget,
    TokenBucket,
)
from repro.daemon.client import (  # noqa: F401
    CheckingClient,
    DaemonError,
    DaemonOverloaded,
    DeadlineExceeded,
)
from repro.daemon.protocol import (  # noqa: F401
    DEFAULT_MAX_FRAME,
    ProtocolError,
)
from repro.daemon.server import (  # noqa: F401
    CheckingServer,
    ServerHandle,
    start_in_thread,
)
from repro.daemon.telemetry import (  # noqa: F401
    FlightRecorder,
    build_stats_payload,
    render_prometheus,
    serve_http,
)
