"""Epoch-sharded replay: split one big trace, merge back bit-identically.

The contract under test (DESIGN.md §10): when ``shard_min_events`` is
set on a columnar pool, a large trace is cut at fence-delimited epoch
boundaries into per-worker shards.  Each shard silently replays its
prefix to reconstruct shadow state and checks only its own range; the
pool folds shard results in shard order before the ordinary
deterministic merge.  The outcome — the wire-encoded
:class:`TestResult` — must be byte-identical to unsharded replay on a
single worker, for any worker count, backend, and under chaos-injected
worker crashes; only the (non-verdict) ``epoch_shards`` metadata key
betrays that sharding happened.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.column_arena import ArenaOverflow
from repro.core.columns import ColumnarTrace
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.traceio import encode_result
from repro.core.workers import SHARD_ENV_VAR, WorkerPool


def big_trace(trace_id: int = 1, epochs: int = 60) -> Trace:
    """One multi-epoch trace mixing passes, failures and transactions.

    Every fourth epoch omits its fence so the following ``isPersist``
    fails, and every fifth epoch wraps its writes in a logged
    transaction with a checker scope — the shard cutter must keep
    those blocks intact.
    """
    trace = Trace(trace_id)
    seq = 0

    def emit(op, *args, site=None):
        nonlocal seq
        trace.append(Event(op, *args, site=site, seq=seq))
        seq += 1

    for e in range(epochs):
        base = 0x1000 + (e % 16) * 0x40
        site = SourceSite("store.c", e, "commit")
        if e % 5 == 0:
            emit(Op.TX_CHECK_START)
            emit(Op.TX_BEGIN)
            emit(Op.TX_ADD, base, 0x20)
            emit(Op.WRITE, base, 16, site=site)
            emit(Op.WRITE, base + 4, 4)  # dead sub-write
            emit(Op.CLWB, base, 16)
            emit(Op.SFENCE)
            emit(Op.TX_END)
            emit(Op.TX_CHECK_END)
            emit(Op.CHECK_PERSIST, base, 16)
        else:
            emit(Op.WRITE, base, 8, site=site)
            emit(Op.CLWB, base, 8)
            if e % 4 != 0:
                emit(Op.SFENCE)
            emit(Op.CHECK_PERSIST, base, 8)
    return trace


def reference_wire(trace) -> bytes:
    with WorkerPool(num_workers=0, engine="columnar") as pool:
        pool.submit(trace)
        return encode_result(pool.drain())


def object_reference_wire(trace) -> bytes:
    with WorkerPool(num_workers=0, engine="object") as pool:
        pool.submit(trace)
        return encode_result(pool.drain())


def run_sharded(trace, **pool_kwargs) -> tuple:
    pool = WorkerPool(engine="columnar", shard_min_events=1, **pool_kwargs)
    try:
        pool.submit(trace)
        result = pool.drain()
        return encode_result(result), result.metadata
    finally:
        pool._backend.stop()


class TestShardEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_pool_bit_identical(self, workers):
        trace = big_trace()
        wire, metadata = run_sharded(trace, num_workers=workers,
                                     backend="thread")
        assert wire == reference_wire(big_trace())
        if workers >= 2:
            assert metadata["epoch_shards"] == workers

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_shm_pool_bit_identical(self, workers):
        trace = big_trace()
        wire, metadata = run_sharded(
            trace, num_workers=workers, backend="process",
            transport="shm", codec="binary",
        )
        assert wire == reference_wire(big_trace())
        assert metadata["epoch_shards"] == workers

    def test_sharded_equals_object_engine(self):
        """The full chain: epoch-sharded columnar == plain object."""
        wire, _ = run_sharded(big_trace(), num_workers=4, backend="thread")
        assert wire == object_reference_wire(big_trace())

    def test_single_worker_pool_does_not_shard(self):
        trace = big_trace()
        wire, metadata = run_sharded(trace, num_workers=1, backend="thread")
        assert "epoch_shards" not in metadata
        assert wire == reference_wire(big_trace())

    def test_mixed_sizes_only_large_traces_shard(self):
        small = Trace(9)
        small.append(Event(Op.WRITE, 0x40, 8, seq=0))
        small.append(Event(Op.CLWB, 0x40, 8, seq=1))
        small.append(Event(Op.SFENCE, seq=2))
        small.append(Event(Op.CHECK_PERSIST, 0x40, 8, seq=3))
        big = big_trace(2)
        pool = WorkerPool(num_workers=2, backend="thread", engine="columnar",
                          shard_min_events=50)
        try:
            pool.submit(small)
            pool.submit(big)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert result.metadata["epoch_shards"] == 2
        with WorkerPool(num_workers=0, engine="columnar") as ref:
            ref.submit(small)
            ref.submit(big_trace(2))
            assert encode_result(result) == encode_result(ref.drain())


class TestShardMergeMetadata:
    def test_metadata_merge_is_deterministic(self):
        """Repeated sharded runs produce identical metadata (modulo
        nothing: the keyed merge cannot depend on completion order)."""
        runs = [
            run_sharded(big_trace(), num_workers=4, backend="thread")[1]
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_shard_counters(self):
        registry = MetricsRegistry(MetricsLevel.BASIC)
        pool = WorkerPool(num_workers=4, backend="thread", engine="columnar",
                          shard_min_events=1, metrics=registry)
        try:
            pool.submit(big_trace())
            pool.drain()
        finally:
            pool._backend.stop()
        assert registry.counter_value("shard.traces") == 1
        assert registry.counter_value("shard.shards") == 4


class TestShardQueryStats:
    """Per-shard interval-query accounting is explicitly owned.

    Each shard's checker builds its own ``QueryStats`` (created in the
    checker's ``__init__``, never shared); cached verdict templates
    copy the final integers.  Shared mutable stats would show up here
    as double counting: the merged ``engine.interval_queries`` /
    ``engine.interval_scanned`` counters must equal the unsharded
    totals exactly, and repeated cache hits must re-bill the *frozen*
    template numbers, not a still-live accumulator."""

    @staticmethod
    def _interval_counters(**pool_kwargs):
        registry = MetricsRegistry(MetricsLevel.FULL)
        pool = WorkerPool(engine="columnar", metrics=registry, **pool_kwargs)
        try:
            pool.submit(big_trace())
            pool.drain()
            snap = pool.metrics_snapshot()
        finally:
            pool._backend.stop()
        return (
            snap.counter_value("engine.interval_queries"),
            snap.counter_value("engine.interval_scanned"),
        )

    def test_sharded_totals_match_unsharded(self):
        want = self._interval_counters(num_workers=0)
        assert want[0] > 0
        for workers in (2, 4):
            got = self._interval_counters(
                num_workers=workers, backend="thread", shard_min_events=1
            )
            assert got == want, f"{workers} workers: {got} != {want}"

    def test_cache_hits_rebill_frozen_template_stats(self):
        """N identical traces through a cached single worker bill
        exactly N times the single-trace stats — a template sharing a
        live stats object would drift upward per hit."""
        single = self._interval_counters(num_workers=0, verdict_cache=False)
        registry = MetricsRegistry(MetricsLevel.FULL)
        with WorkerPool(num_workers=0, engine="columnar", metrics=registry,
                        verdict_cache=True) as pool:
            for i in range(3):
                pool.submit(big_trace(trace_id=i))
            pool.drain()
            snap = pool.metrics_snapshot()
        assert snap.counter_value("engine.interval_queries") == 3 * single[0]
        assert snap.counter_value("engine.interval_scanned") == 3 * single[1]

    def test_checkers_never_share_stats_objects(self):
        from repro.core.engine_columnar import _ColumnarChecker
        from repro.core.rules import X86Rules

        registry = MetricsRegistry(MetricsLevel.FULL)
        rules = X86Rules()
        cols = ColumnarTrace.from_trace(big_trace())
        a = _ColumnarChecker(rules, cols, registry)
        b = _ColumnarChecker(rules, cols, registry)
        assert a.qstats is not None
        assert a.qstats is not b.qstats


class TestShardChaos:
    def test_worker_crash_mid_shard_is_bit_identical(self):
        """A chaos-killed process worker loses its shard; supervision
        requeues and respawns, and the folded result is unchanged."""
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0)]
        )
        wire, metadata = run_sharded(
            big_trace(), num_workers=2, backend="process",
            batch_size=1, check_timeout=10.0, faults=plan,
        )
        assert wire == reference_wire(big_trace())
        assert metadata["epoch_shards"] == 2

    def test_chaos_seed_env_matches_reference(self, monkeypatch):
        """The CI chaos matrix path: a seeded random fault plan from
        ``PMTEST_CHAOS_SEED`` leaves sharded verdicts bit-identical."""
        monkeypatch.setenv("PMTEST_CHAOS_SEED", "3")
        wire, _ = run_sharded(
            big_trace(), num_workers=2, backend="process",
            batch_size=1, check_timeout=10.0,
        )
        assert wire == reference_wire(big_trace())


class TestShardGuards:
    def test_shard_without_columnar_engine_rejected(self):
        with pytest.raises(ValueError, match="requires engine='columnar'"):
            WorkerPool(num_workers=2, backend="thread", engine="object",
                       shard_min_events=1)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            WorkerPool(num_workers=2, backend="thread", engine="columnar",
                       shard_min_events=0)

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "1")
        trace = big_trace()
        pool = WorkerPool(num_workers=2, backend="thread", engine="columnar")
        try:
            pool.submit(trace)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert result.metadata["epoch_shards"] == 2
        assert encode_result(result) == reference_wire(big_trace())

    def test_split_respects_epoch_boundaries(self):
        cols = ColumnarTrace.from_trace(big_trace())
        shards = cols.split(4)
        assert len(shards) == 4
        assert shards[0].check_from == 0
        total = 0
        for shard in shards:
            assert shard.is_shard
            checked = len(shard) - shard.check_from
            assert checked > 0
            total += checked
            if shard.check_from:
                # every cut lands just after an epoch-closing fence
                assert shard.ops[shard.check_from - 1] == Op.SFENCE.value
        assert total == len(cols)


class TestArenaDispatch:
    """The zero-copy plane: process-backend shards travel as O(1)
    arena descriptors, everything else keeps the in-process zero-wire
    path, and overflow falls back to payload shipping."""

    def test_process_shards_dispatch_as_descriptors(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        trace = big_trace()
        n_events = len(trace.events)
        with WorkerPool(num_workers=2, backend="process", transport="shm",
                        codec="binary", engine="columnar",
                        shard_min_events=1, metrics=registry) as pool:
            pool.submit(trace)
            result = pool.drain()
            assert encode_result(result) == reference_wire(big_trace())
            snap = pool.metrics_snapshot()
        assert snap.counter_value("shard.arenas") == 1
        assert snap.counter_value("shard.arena_bytes") > 0
        assert snap.counter_value("shard.arena_fallbacks", 0) == 0
        # Dispatch is O(1) per shard: the task wire for both shard
        # descriptors together is far smaller than the event payload
        # (each descriptor is a name + three varints, not n_events of
        # columns).
        task_bytes = snap.counter_value("codec.task_bytes")
        assert 0 < task_bytes < 120
        assert task_bytes < n_events  # not even one byte per event

    def test_thread_pool_never_builds_arenas(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        with WorkerPool(num_workers=2, backend="thread", engine="columnar",
                        shard_min_events=1, metrics=registry) as pool:
            pool.submit(big_trace())
            pool.drain()
            snap = pool.metrics_snapshot()
        assert snap.counter_value("shard.arenas", 0) == 0
        assert snap.counter_value("codec.task_bytes", 0) == 0

    def test_overflow_falls_back_to_payload_dispatch(self, monkeypatch):
        """When a trace cannot be laid out in an arena the shards ship
        as ordinary payload — slower, never wrong."""
        import repro.core.workers as workers_mod

        def refuse(cols):
            raise ArenaOverflow("injected")

        monkeypatch.setattr(workers_mod, "build_arena", refuse)
        registry = MetricsRegistry(MetricsLevel.BASIC)
        trace = big_trace()
        with WorkerPool(num_workers=2, backend="process", transport="shm",
                        codec="binary", engine="columnar",
                        shard_min_events=1, metrics=registry) as pool:
            pool.submit(trace)
            result = pool.drain()
            assert result.metadata["epoch_shards"] == 2
            assert encode_result(result) == reference_wire(big_trace())
            snap = pool.metrics_snapshot()
        assert snap.counter_value("shard.arena_fallbacks") == 1
        assert snap.counter_value("shard.arenas", 0) == 0

    def test_auto_plan_end_to_end(self):
        """``shard_plan='auto'`` shards a large trace without any
        fixed threshold configured, bit-identically."""
        trace = big_trace(epochs=600)  # ~3.6k events, > 2 shard floors
        with WorkerPool(num_workers=2, backend="thread", engine="columnar",
                        shard_plan="auto") as pool:
            pool.submit(trace)
            result = pool.drain()
        assert result.metadata["epoch_shards"] == 2
        assert encode_result(result) == reference_wire(big_trace(epochs=600))

    def test_auto_plan_leaves_small_traces_alone(self):
        with WorkerPool(num_workers=4, backend="thread", engine="columnar",
                        shard_plan="auto") as pool:
            pool.submit(big_trace(epochs=10))
            result = pool.drain()
        assert "epoch_shards" not in result.metadata

    def test_plan_env_var(self, monkeypatch):
        from repro.core.shard_plan import PLAN_ENV_VAR

        monkeypatch.setenv(PLAN_ENV_VAR, "auto")
        trace = big_trace(epochs=600)
        with WorkerPool(num_workers=2, backend="thread",
                        engine="columnar") as pool:
            pool.submit(trace)
            result = pool.drain()
        assert result.metadata["epoch_shards"] == 2

    def test_plan_without_columnar_engine_rejected(self):
        with pytest.raises(ValueError, match="requires engine='columnar'"):
            WorkerPool(num_workers=2, backend="thread", engine="object",
                       shard_plan="auto")


# ----------------------------------------------------------------------
# Property-based differential: the whole zero-copy plane vs. the
# object engine
# ----------------------------------------------------------------------

@st.composite
def _epoch_events(draw):
    """Multi-epoch event lists that actually shard: several fenced
    epochs over a colliding address window, with occasional missing
    fences, checker scopes and transactions."""
    epochs = draw(st.integers(min_value=2, max_value=7))
    events = []
    seq = 0

    def emit(op, *args, site=None):
        nonlocal seq
        events.append(Event(op, *args, site=site, seq=seq))
        seq += 1

    for e in range(epochs):
        in_tx = draw(st.booleans()) and e % 2 == 0
        if in_tx:
            emit(Op.TX_CHECK_START)
            emit(Op.TX_BEGIN)
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            kind = draw(st.integers(min_value=0, max_value=5))
            addr = 0x1000 + draw(st.integers(min_value=0, max_value=20)) * 8
            size = draw(st.integers(min_value=1, max_value=32))
            site = draw(st.sampled_from(
                [None, SourceSite("prop.c", e, "emit")]
            ))
            if kind <= 2:
                emit(Op.WRITE if kind < 2 else Op.WRITE_NT, addr, size,
                     site=site)
            elif kind == 3:
                emit(Op.CLWB, addr, size, site=site)
            elif kind == 4:
                emit(Op.CHECK_PERSIST, addr, size, site=site)
            else:
                addr2 = 0x1000 + draw(
                    st.integers(min_value=0, max_value=20)) * 8
                emit(Op.CHECK_ORDER, addr, size, addr2, size, site=site)
        if in_tx:
            emit(Op.TX_END)
            emit(Op.TX_CHECK_END)
        if draw(st.integers(min_value=0, max_value=4)):  # 4/5 fenced
            emit(Op.SFENCE)
    emit(Op.SFENCE)
    return events


def _object_reference(events):
    trace = Trace(21)
    for event in events:
        trace.append(event)
    with WorkerPool(num_workers=0, engine="object") as pool:
        pool.submit(trace)
        result = pool.drain()
    return (
        encode_result(result),
        result.traces_checked,
        result.events_checked,
        result.checkers_evaluated,
    )


#: backend, transport, codec, verdict_cache, chaos
_MATRIX = [
    pytest.param("thread", None, None, False, False, id="thread"),
    pytest.param("process", "queue", "pickle", False, False,
                 id="process-queue"),
    pytest.param("process", "shm", "binary", False, False,
                 id="process-shm"),
    pytest.param("process", "shm", "binary", True, False,
                 id="process-shm-cache"),
    pytest.param("process", "queue", "pickle", False, True,
                 id="process-chaos-kill"),
]


class TestZeroCopyDifferential:
    @pytest.mark.parametrize(
        "backend,transport,codec,cache,chaos", _MATRIX
    )
    def test_arena_shards_match_object_engine(
        self, backend, transport, codec, cache, chaos
    ):
        """For random multi-epoch traces, arena-dispatched shard replay
        through the vectorized kernels returns byte-identical verdicts
        and counters to the inline object engine — on every backend,
        transport and cache row, and with a worker killed mid-shard."""
        kwargs = dict(num_workers=2, backend=backend, engine="columnar",
                      shard_min_events=1, verdict_cache=cache)
        if transport is not None:
            kwargs.update(transport=transport, codec=codec)
        if backend == "process":
            kwargs.update(batch_size=1, check_timeout=30.0)
        examples = 5 if backend == "process" else 40

        @given(_epoch_events())
        @settings(max_examples=examples, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def run(events):
            # Fresh pool per example: drain() snapshots are cumulative
            # over a pool's lifetime, and the chaos plan re-arms so
            # every example kills a worker mid-shard.
            if chaos:
                kwargs["faults"] = FaultPlan(rules=[
                    FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH,
                              at=0)
                ])
            with WorkerPool(**kwargs) as pool:
                trace = Trace(21)
                for event in events:
                    trace.append(event)
                pool.submit(trace)
                result = pool.drain()
            outcome = (
                encode_result(result),
                result.traces_checked,
                result.events_checked,
                result.checkers_evaluated,
            )
            assert outcome == _object_reference(events)
            if not chaos:
                assert result.diagnostics == []

        run()
