"""Crash-state enumeration: every PM image reachable "if power fails now".

This is the ground truth that exhaustive tools like Yat explore and that
PMTest's interval inference is validated against (our property tests check
that PMTest never passes a checker whose guarantee some reachable crash
state violates).

x86 model
    The durable baseline certainly persisted.  For each cache line with
    pending fragments, any *prefix* of that line's fragment list may have
    additionally persisted (the cache holds one merged copy per line, so
    later fragments cannot persist without earlier non-overwritten ones);
    lines are independent.  The number of states is
    ``prod(len(line) + 1)`` — exponential in dirty lines, which is
    precisely why Yat needs years on large traces (paper Section 2.2).

HOPS model
    ``ofence`` divides stores into epochs that persist in order: a crash
    state consists of *all* fragments from epochs before some boundary,
    plus a per-line prefix of the boundary epoch's fragments.

Enumeration is lazy; :meth:`CrashEnumerator.count` computes the state
count without materializing images, and :meth:`CrashEnumerator.sample`
draws uniform-ish random states for Monte-Carlo checking when the space
is too large.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence

from repro.pmem.machine import PMMachine, StoreFragment
from repro.pmem.memory import PMImage


class CrashSpaceTooLarge(Exception):
    """Enumeration would exceed the caller's state budget."""


class CrashEnumerator:
    """Enumerates the PM images reachable by crashing a machine now."""

    def __init__(self, machine: PMMachine) -> None:
        self.machine = machine
        # Snapshot the pending structure: enumeration must not be
        # invalidated by further machine execution.
        self._durable = machine.durable.snapshot()
        self._lines: List[List[StoreFragment]] = [
            list(fragments) for fragments in machine.pending.values()
        ]
        self._model = machine.model
        self._epoch = machine.epoch

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of reachable crash states (may double-count identical
        images produced by different fragment choices)."""
        if self._model == "x86":
            total = 1
            for fragments in self._lines:
                total *= len(fragments) + 1
            return total
        total = 0
        for boundary in range(self._epoch + 1):
            per_boundary = 1
            for fragments in self._lines:
                at_boundary = sum(1 for f in fragments if f.epoch == boundary)
                per_boundary *= at_boundary + 1
            total += per_boundary
        return total

    def iter_images(self, limit: Optional[int] = None) -> Iterator[PMImage]:
        """Yield every reachable crash image.

        Raises :class:`CrashSpaceTooLarge` up front if the state count
        exceeds ``limit`` — exhaustive tools must budget explicitly.
        """
        if limit is not None and self.count() > limit:
            raise CrashSpaceTooLarge(
                f"{self.count()} crash states exceed the budget of {limit}"
            )
        if self._model == "x86":
            yield from self._iter_x86()
        else:
            yield from self._iter_hops()

    def sample(self, rng: random.Random, n: int) -> Iterator[PMImage]:
        """Draw ``n`` random crash states (with replacement)."""
        for _ in range(n):
            if self._model == "x86":
                choice = [rng.randint(0, len(frags)) for frags in self._lines]
                yield self._materialize_x86(choice)
            else:
                boundary = rng.randint(0, self._epoch)
                yield self._materialize_hops_random(rng, boundary)

    # ------------------------------------------------------------------
    # x86
    # ------------------------------------------------------------------
    def _iter_x86(self) -> Iterator[PMImage]:
        prefix_ranges = [range(len(frags) + 1) for frags in self._lines]
        for choice in itertools.product(*prefix_ranges):
            yield self._materialize_x86(choice)

    def _materialize_x86(self, choice: Sequence[int]) -> PMImage:
        image = self._durable.snapshot()
        for fragments, k in zip(self._lines, choice):
            for fragment in fragments[:k]:
                image.write(fragment.addr, fragment.data)
        return image

    # ------------------------------------------------------------------
    # HOPS
    # ------------------------------------------------------------------
    def _iter_hops(self) -> Iterator[PMImage]:
        for boundary in range(self._epoch + 1):
            base = self._hops_base(boundary)
            boundary_lines = [
                [f for f in fragments if f.epoch == boundary]
                for fragments in self._lines
            ]
            prefix_ranges = [range(len(frags) + 1) for frags in boundary_lines]
            for choice in itertools.product(*prefix_ranges):
                image = base.snapshot()
                for fragments, k in zip(boundary_lines, choice):
                    for fragment in fragments[:k]:
                        image.write(fragment.addr, fragment.data)
                yield image

    def _hops_base(self, boundary: int) -> PMImage:
        """Durable baseline plus every fragment from epochs < boundary."""
        base = self._durable.snapshot()
        ordered: List[StoreFragment] = []
        for fragments in self._lines:
            ordered.extend(f for f in fragments if f.epoch < boundary)
        ordered.sort(key=lambda f: f.seq)
        for fragment in ordered:
            base.write(fragment.addr, fragment.data)
        return base

    def _materialize_hops_random(
        self, rng: random.Random, boundary: int
    ) -> PMImage:
        image = self._hops_base(boundary)
        for fragments in self._lines:
            at_boundary = [f for f in fragments if f.epoch == boundary]
            k = rng.randint(0, len(at_boundary))
            for fragment in at_boundary[:k]:
                image.write(fragment.addr, fragment.data)
        return image


def worst_case_image(machine: PMMachine) -> PMImage:
    """The crash image where nothing pending persisted (durable baseline)."""
    return machine.durable.snapshot()


def best_case_image(machine: PMMachine) -> PMImage:
    """The crash image where everything pending persisted.

    Applying every pending fragment in sequence order must reproduce the
    volatile view — an invariant the property tests exercise.
    """
    image = machine.durable.snapshot()
    ordered: List[StoreFragment] = []
    for fragments in machine.pending.values():
        ordered.extend(fragments)
    ordered.sort(key=lambda fragment: fragment.seq)
    for fragment in ordered:
        image.write(fragment.addr, fragment.data)
    return image
