"""Fig 12k: vectorized shadow plane — array interval store vs object map.

The ``--shadow array`` knob swaps the per-segment object
:class:`IntervalMap` inside the columnar engine's shadow memory for a
struct-of-arrays interval store (``core/interval_array.py``) whose
batched epoch operations — sort-and-sweep write-run assignment, the
code-level silent/fused flush remap, and the vectorized isPersist
pre-test — replace thousands of per-range carve/walk calls with a
handful of column passes (numpy where available, batched ``array('q')``
scalar sweeps otherwise).

This ablation isolates exactly what the knob changes: columns are
pre-decoded and epoch coalescing is off, so the timed region is the
shadow-update + checker-validate plane and nothing else.  The claim
gate (``test_fig12k_shadow_shape``) asserts the >= 2x min-of-rounds
speedup on the interval-heavy micro workload; the recorded rows and
derived ratios land in the benchmark JSON for the regression gate.
"""

import pytest

from _harness import (
    RESULTS,
    measure_shadow_speedup,
    pedantic,
    prepare_shadow_validate,
    record,
)
from repro.core.interval_array import SHADOW_NAMES
from repro.core.npcompat import load_numpy


@pytest.mark.parametrize("shadow", SHADOW_NAMES)
def test_fig12k_shadow_ablation(benchmark, bench_rounds, shadow):
    """(k) shadow-plane ablation: replay the interval-heavy corpus
    (long same-site write runs, wide flushes, strided isPersist fans)
    on one columnar engine, varying only ``--shadow``."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_shadow_validate(shadow),
    )
    record("fig12k", (shadow,), benchmark)


def test_fig12k_shadow_shape(benchmark):
    """The tentpole claim: the array shadow validates interval-heavy
    epochs >= 2x faster than the object map, measured with interleaved
    min-of-rounds on a fixed workload size, independent of the
    smoke-scaling env knobs.  Without numpy the batched scalar sweeps
    still win, but the floor is relaxed to absorb the noisier
    pure-Python timing on shared CI hosts."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best = measure_shadow_speedup()
    speedup = best["object"] / best["array"]
    floor = 2.0 if load_numpy() is not None else 1.5
    assert speedup >= floor, (
        f"array shadow {speedup:.2f}x object on the interval-heavy micro "
        f"workload; the vectorized-shadow claim needs >= {floor}x ({best})"
    )


def test_fig12k_verdicts_identical(benchmark):
    """Sanity row riding the bench corpus: both shadows produce the
    same verdict counts on the exact traces being timed (the byte-level
    differential lives in tests/core/test_shadow_array.py)."""
    from _harness import make_interval_heavy_cols
    from repro.core.engine_columnar import ColumnarCheckingEngine
    from repro.core.rules import X86Rules
    from repro.core.traceio import encode_result

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cols = make_interval_heavy_cols(n_traces=2)
    wires = []
    for shadow in SHADOW_NAMES:
        engine = ColumnarCheckingEngine(
            X86Rules(), coalesce=False, shadow=shadow
        )
        wires.append(
            [encode_result(engine.check_trace(trace)) for trace in cols]
        )
    assert wires[0] == wires[1]
    mean_obj = RESULTS.get(("fig12k", ("object",)))
    mean_arr = RESULTS.get(("fig12k", ("array",)))
    if mean_obj and mean_arr:
        assert mean_arr < mean_obj, (mean_obj, mean_arr)
