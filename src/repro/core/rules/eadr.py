"""Checking rules for an eADR-style persistency model (extension).

The paper demonstrates flexibility with x86 and HOPS; this module adds a
third model as the extension exercise the design invites: *extended
asynchronous DRAM refresh* (eADR) platforms, where the cache hierarchy
is inside the persistence domain — on power failure, platform firmware
flushes the caches.  Consequences for checking:

* a plain store is durable once it is *globally visible*: no ``clwb``
  is ever required, and flushes are pure overhead;
* ``sfence`` still matters, but only for *ordering*: a store is
  guaranteed durable (and ordered against later stores) after the next
  fence retires it from the store buffer.

So the rules are: ``write`` opens a persist interval; any fence closes
every open interval (the store buffer drains); every flush is an
``UNNECESSARY_FLUSH`` performance warning — exactly the diagnosis a
PMTest user porting clwb-heavy code to an eADR platform wants.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import List

from repro.core.events import Event, FLUSH_OPS, Op
from repro.core.intervals import INF, Epoch, Interval
from repro.core.reports import Level, Report, ReportCode
from repro.core.rules.base import PersistencyRules, RangeInterval
from repro.core.shadow import SegmentState, ShadowMemory


class EADRShadowMemory(ShadowMemory):
    """Shadow with the fence history (every fence closes intervals)."""

    __slots__ = ("fence_epochs",)

    def __init__(self) -> None:
        super().__init__()
        self.fence_epochs: List[int] = []

    def record_fence(self) -> int:
        now = self.advance()
        insort(self.fence_epochs, now)
        return now

    def first_fence_after(self, epoch: int) -> Epoch:
        index = bisect_right(self.fence_epochs, epoch)
        if index < len(self.fence_epochs):
            return self.fence_epochs[index]
        return INF

    def eadr_interval(self, state: SegmentState) -> Interval:
        return Interval(
            state.write_epoch, self.first_fence_after(state.write_epoch)
        )


class EADRRules(PersistencyRules):
    """eADR (cache-in-persistence-domain) checking rules."""

    name = "eadr"

    supported_ops = frozenset(
        {Op.WRITE, Op.WRITE_NT, Op.SFENCE, Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH}
    )

    def make_shadow(self) -> EADRShadowMemory:
        return EADRShadowMemory()

    def apply_op(self, shadow: EADRShadowMemory, event: Event) -> List[Report]:
        op = event.op
        if op is Op.WRITE or op is Op.WRITE_NT:
            shadow.pm.assign(
                event.addr,
                event.end,
                SegmentState(shadow.timestamp, None, event.site),
            )
            return []
        if op is Op.SFENCE:
            shadow.record_fence()
            return []
        if op in FLUSH_OPS:
            # The whole point of eADR: flushes buy nothing.
            return [
                Report(
                    level=Level.WARN,
                    code=ReportCode.UNNECESSARY_FLUSH,
                    message=(
                        "cache writeback on an eADR platform: the cache "
                        "is already in the persistence domain"
                    ),
                    site=event.site,
                    seq=event.seq,
                )
            ]
        self.reject(event)
        return []  # pragma: no cover - reject always raises

    def persist_intervals(
        self, shadow: EADRShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        return [
            (s, e, shadow.eadr_interval(state), state)
            for s, e, state in shadow.pm.overlaps(lo, hi)
        ]

    def ordered(self, a: Interval, b: Interval) -> bool:
        return a.ordered_before(b)
