"""A Redis-like store on PMDK transactions with LRU eviction.

The paper's Redis workload persists its keyspace through PMDK; the
redis-cli client runs an LRU test over 1M keys.  This server stores
string keys/values in a transactional chained hash table (every command
is one failure-atomic transaction, checked with the high-level
transaction checkers when a session is attached) and enforces a
``maxkeys`` cap with LRU eviction — the eviction transaction is where
the LRU test spends its time once the cap is hit.

The LRU bookkeeping itself is volatile (as in Redis, where the LRU
clock is approximate and rebuilt on restart); only the keyspace is
persistent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Optional, Tuple

from repro.core.api import PMTestSession
from repro.mnemosyne.pmap import fnv1a_64
from repro.pmdk.objects import PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.workloads.clients import KVOp

DEFAULT_BUCKETS = 256


class RedisHeader(PStruct):
    nbuckets = U64Field()
    count = U64Field()
    buckets = PtrField()


class RedisEntry(PStruct):
    key_hash = U64Field()
    next = PtrField()
    key = PtrField()  # length-prefixed byte buffer
    value = PtrField()  # length-prefixed byte buffer


class RedisServer:
    """Persistent string KV store with transactional commands."""

    def __init__(
        self,
        pool: PMPool,
        root_slot: int = 0,
        nbuckets: int = DEFAULT_BUCKETS,
        maxkeys: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.runtime = pool.runtime
        self.maxkeys = maxkeys
        self.lru: "OrderedDict[bytes, None]" = OrderedDict()
        self.evictions = 0
        addr = pool.read_root(root_slot)
        if addr:
            self.header = RedisHeader(pool, addr)
            for key, _ in self.items():  # rebuild the volatile LRU clock
                self.lru[key] = None
        else:
            with pool.tx.transaction():
                self.header = RedisHeader.alloc(pool)
                self.header.nbuckets = nbuckets
                self.header.buckets = pool.alloc(nbuckets * 8)
            pool.write_root(root_slot, self.header.addr)

    # ------------------------------------------------------------------
    # Buffers and chains
    # ------------------------------------------------------------------
    def _store_buffer(self, data: bytes) -> int:
        addr = self.pool.alloc(8 + max(len(data), 1))
        self.runtime.store_u64(addr, len(data))
        if data:
            self.runtime.store(addr + 8, data)
        return addr

    def _load_buffer(self, addr: int) -> bytes:
        length = self.runtime.load_u64(addr)
        return self.runtime.load(addr + 8, length) if length else b""

    def _bucket_addr(self, key: bytes) -> int:
        return self.header.buckets + (
            fnv1a_64(key) % self.header.nbuckets
        ) * 8

    def _find(self, key: bytes) -> Optional[RedisEntry]:
        digest = fnv1a_64(key)
        cursor = self.runtime.load_u64(self._bucket_addr(key))
        while cursor:
            entry = RedisEntry(self.pool, cursor)
            if entry.key_hash == digest and self._load_buffer(entry.key) == key:
                return entry
            cursor = entry.next
        return None

    # ------------------------------------------------------------------
    # Commands (each one failure-atomic transaction)
    # ------------------------------------------------------------------
    def set(self, key: bytes, value: bytes) -> None:
        tx = self.pool.tx
        with tx.transaction():
            existing = self._find(key)
            if existing is not None:
                buf = self._store_buffer(value)
                tx.add_field(existing, "value")
                existing.value = buf
            else:
                entry = RedisEntry.alloc(self.pool)
                entry.key_hash = fnv1a_64(key)
                entry.key = self._store_buffer(key)
                entry.value = self._store_buffer(value)
                head_addr = self._bucket_addr(key)
                entry.next = self.runtime.load_u64(head_addr)
                tx.add(head_addr, 8)
                self.runtime.store_u64(head_addr, entry.addr)
                tx.add_field(self.header, "count")
                self.header.count = self.header.count + 1
        self.lru[key] = None
        self.lru.move_to_end(key)
        if self.maxkeys is not None:
            while self.header.count > self.maxkeys:
                victim, _ = self.lru.popitem(last=False)
                self._evict(victim)

    def get(self, key: bytes) -> Optional[bytes]:
        entry = self._find(key)
        if entry is None:
            return None
        if key in self.lru:
            self.lru.move_to_end(key)
        return self._load_buffer(entry.value)

    def delete(self, key: bytes) -> bool:
        removed = self._unlink(key)
        if removed:
            self.lru.pop(key, None)
        return removed

    def _evict(self, key: bytes) -> None:
        if self._unlink(key):
            self.evictions += 1

    def _unlink(self, key: bytes) -> bool:
        tx = self.pool.tx
        digest = fnv1a_64(key)
        with tx.transaction():
            head_addr = self._bucket_addr(key)
            prev_slot = head_addr
            cursor = self.runtime.load_u64(head_addr)
            while cursor:
                entry = RedisEntry(self.pool, cursor)
                if (
                    entry.key_hash == digest
                    and self._load_buffer(entry.key) == key
                ):
                    tx.add(prev_slot, 8)
                    self.runtime.store_u64(prev_slot, entry.next)
                    tx.add_field(self.header, "count")
                    self.header.count = self.header.count - 1
                    return True
                prev_slot, _ = entry.field_range("next")
                cursor = entry.next
        return False

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for index in range(self.header.nbuckets):
            cursor = self.runtime.load_u64(self.header.buckets + index * 8)
            while cursor:
                entry = RedisEntry(self.pool, cursor)
                yield self._load_buffer(entry.key), self._load_buffer(entry.value)
                cursor = entry.next

    def __len__(self) -> int:
        return self.header.count

    # ------------------------------------------------------------------
    def process(self, op: KVOp) -> Optional[bytes]:
        kind, key, value = op
        if kind == "set":
            self.set(key, value or b"")
            return None
        if kind == "get":
            return self.get(key)
        if kind == "delete":
            self.delete(key)
            return None
        raise ValueError(f"unknown redis op {kind!r}")

    def serve(
        self,
        ops: Iterable[KVOp],
        session: Optional[PMTestSession] = None,
        tx_check: bool = True,
        trace_every: int = 1,
    ) -> int:
        """Process an op stream, optionally under the TX checkers."""
        processed = 0
        for op in ops:
            if session is not None and tx_check:
                session.tx_check_start()
            self.process(op)
            if session is not None and tx_check:
                session.tx_check_end()
            processed += 1
            if session is not None and processed % trace_every == 0:
                session.send_trace()
        if session is not None:
            session.send_trace()
        return processed
