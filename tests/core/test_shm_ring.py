"""Tests for the shared-memory ring buffer (the shm transport's core)."""

import multiprocessing
import threading
import time

import pytest

from repro.core.shm_ring import RingClosed, ShmRing


@pytest.fixture
def ring():
    r = ShmRing(4096)
    yield r
    r.release()


class TestBasics:
    def test_fifo_order(self, ring):
        for i in range(10):
            assert ring.try_push(b"rec-%d" % i)
        for i in range(10):
            assert ring.try_pop() == b"rec-%d" % i

    def test_empty_pop_is_none(self, ring):
        assert ring.try_pop() is None

    def test_empty_payload(self, ring):
        assert ring.try_push(b"")
        assert ring.try_pop() == b""

    def test_byte_accounting(self, ring):
        assert ring.used_bytes() == 0
        ring.try_push(b"x" * 100)
        assert ring.used_bytes() == 104  # 4-byte length frame
        assert ring.free_bytes() == ring.capacity - 104
        ring.try_pop()
        assert ring.used_bytes() == 0

    def test_oversized_record_rejected(self, ring):
        with pytest.raises(ValueError, match="cannot fit"):
            ring.try_push(b"x" * ring.capacity)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            ShmRing(8)


class TestWraparound:
    def test_many_records_through_small_ring(self):
        """Total bytes pushed far exceed capacity, forcing the length
        frame and the payload to straddle the wrap point repeatedly."""
        ring = ShmRing(256)
        try:
            for i in range(1000):
                payload = bytes([i % 251]) * (i % 97)
                assert ring.push(payload, timeout=1.0) is None
                assert ring.pop(timeout=1.0) == payload
        finally:
            ring.release()

    def test_interleaved_partial_drain(self):
        ring = ShmRing(512)
        try:
            expected = []
            pushed = popped = 0
            for round_no in range(50):
                while pushed - popped < 4:
                    payload = b"%d:%d" % (round_no, pushed)
                    if not ring.try_push(payload):
                        break
                    expected.append(payload)
                    pushed += 1
                assert ring.try_pop() == expected[popped]
                popped += 1
            while popped < pushed:
                assert ring.try_pop() == expected[popped]
                popped += 1
        finally:
            ring.release()

    def test_max_size_record_fills_ring_exactly(self):
        """The largest admissible record (capacity − 4-byte frame)
        occupies every data byte; one more byte is refused up front."""
        ring = ShmRing(256)
        try:
            payload = bytes(i % 251 for i in range(ring.capacity - 4))
            assert ring.try_push(payload)
            assert ring.used_bytes() == ring.capacity
            assert ring.free_bytes() == 0
            assert not ring.try_push(b"")  # even an empty frame is 4 bytes
            assert ring.try_pop() == payload
            assert ring.used_bytes() == 0
            with pytest.raises(ValueError, match="cannot fit"):
                ring.try_push(payload + b"!")
        finally:
            ring.release()

    def test_max_size_record_straddles_every_wrap_offset(self):
        """A full-capacity record pushed after the head has advanced by
        1..capacity−1 bytes forces both the frame and the payload to
        split across the wrap point at every possible offset."""
        ring = ShmRing(128)
        maxrec = ring.capacity - 4
        try:
            for shift in range(1, ring.capacity):
                pad = b"p" * ((shift - 4) % ring.capacity)
                if len(pad) + 4 <= ring.capacity:
                    assert ring.try_push(pad)
                    assert ring.try_pop() == pad
                payload = bytes((shift + k) % 251 for k in range(maxrec))
                assert ring.try_push(payload)
                assert ring.free_bytes() == 0
                assert ring.try_pop() == payload
        finally:
            ring.release()


class TestBackpressure:
    def test_try_push_full_returns_false(self):
        ring = ShmRing(64)
        try:
            assert ring.try_push(b"x" * 50)
            assert not ring.try_push(b"y" * 50)
        finally:
            ring.release()

    def test_push_timeout(self):
        ring = ShmRing(64)
        try:
            ring.try_push(b"x" * 50)
            with pytest.raises(TimeoutError):
                ring.push(b"y" * 50, timeout=0.05)
        finally:
            ring.release()

    def test_pop_timeout(self, ring):
        with pytest.raises(TimeoutError):
            ring.pop(timeout=0.05)

    def test_parked_producer_resumes(self):
        ring = ShmRing(64)
        try:
            ring.try_push(b"x" * 50)

            def drain_soon():
                time.sleep(0.05)
                ring.try_pop()

            t = threading.Thread(target=drain_soon)
            t.start()
            ring.push(b"y" * 50, timeout=2.0)  # must not raise
            t.join()
            assert ring.try_pop() == b"y" * 50
        finally:
            ring.release()


class TestClose:
    def test_push_on_closed_raises(self, ring):
        ring.close()
        with pytest.raises(RingClosed):
            ring.try_push(b"data")

    def test_pop_drains_then_raises(self, ring):
        ring.try_push(b"last")
        ring.close()
        assert ring.try_pop() == b"last"
        with pytest.raises(RingClosed):
            ring.try_pop()

    def test_close_wakes_parked_consumer(self, ring):
        def close_soon():
            time.sleep(0.05)
            ring.close()

        t = threading.Thread(target=close_soon)
        t.start()
        with pytest.raises(RingClosed):
            ring.pop(timeout=5.0)
        t.join()

    def test_release_is_idempotent(self):
        ring = ShmRing(1024)
        ring.release()
        ring.release()


def _child_pushes(ring, n):
    for i in range(n):
        ring.push(b"child-%d" % i, timeout=10.0)


class TestCrossProcess:
    def test_fork_transfer(self):
        ctx = multiprocessing.get_context("fork")
        ring = ShmRing(4096, ctx=ctx)
        try:
            p = ctx.Process(target=_child_pushes, args=(ring, 20))
            p.start()
            got = [ring.pop(timeout=10.0) for _ in range(20)]
            p.join(timeout=10.0)
            assert got == [b"child-%d" % i for i in range(20)]
            assert p.exitcode == 0
        finally:
            ring.release()

    def test_spawn_transfer(self):
        """Pickling ships the segment name; the child re-attaches."""
        ctx = multiprocessing.get_context("spawn")
        ring = ShmRing(4096, ctx=ctx)
        try:
            p = ctx.Process(target=_child_pushes, args=(ring, 5))
            p.start()
            got = [ring.pop(timeout=30.0) for _ in range(5)]
            p.join(timeout=30.0)
            assert got == [b"child-%d" % i for i in range(5)]
            assert p.exitcode == 0
        finally:
            ring.release()
