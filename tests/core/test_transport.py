"""Cross-transport/codec equivalence and the adaptive batcher.

The transport (queue vs shm) and the wire codec (pickle vs binary) are
pure plumbing: verdicts, engine counter totals, and recovery
diagnostics must be identical across every combination on the same
input, with chaos faults recovered the same way.  The adaptive batcher
must never change results either — only how many traces share an IPC
message.
"""

import multiprocessing
import time

import pytest

from repro.core.backends import (
    AdaptiveBatch,
    CheckingFailed,
    DEFAULT_BATCH_SIZE,
    MAX_BATCH_SIZE,
    ProcessBackend,
    resolve_transport_name,
)
from repro.core.events import Event, Op, Trace
from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule
from repro.core.kfifo import FifoClosed, ShmKernelFifo
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.traceio import encode_result
from repro.core.workers import WorkerPool
from repro.pmfs.kernel import KernelBridge

#: Every transport x codec combination the process backend supports.
COMBOS = [("queue", "pickle"), ("queue", "binary"), ("shm", "binary")]


def bad_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, trace_id * 64, 8))
    trace.append(Event(Op.CHECK_PERSIST, trace_id * 64, 8))
    return trace


def good_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, trace_id * 64, 8))
    trace.append(Event(Op.CLWB, trace_id * 64, 8))
    trace.append(Event(Op.SFENCE))
    trace.append(Event(Op.CHECK_PERSIST, trace_id * 64, 8))
    return trace


def mixed_traces(n: int):
    return [bad_trace(i) if i % 2 else good_trace(i) for i in range(n)]


def inline_reference(traces) -> tuple:
    with WorkerPool(num_workers=0) as pool:
        for trace in traces:
            pool.submit(trace)
        return encode_result(pool.drain())


def run_combo(traces, transport, codec, *, metrics=None, **kwargs):
    backend = ProcessBackend(
        num_workers=kwargs.pop("num_workers", 1),
        transport=transport,
        codec=codec,
        metrics=metrics,
        **kwargs,
    )
    try:
        for trace in traces:
            backend.submit(trace)
        return backend.drain()
    finally:
        backend.stop()


class TestTransportConfig:
    def test_default_is_queue(self, monkeypatch):
        monkeypatch.delenv("PMTEST_TRANSPORT", raising=False)
        assert resolve_transport_name(None) == "queue"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("PMTEST_TRANSPORT", "shm")
        assert resolve_transport_name(None) == "shm"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("PMTEST_TRANSPORT", "shm")
        assert resolve_transport_name("queue") == "queue"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            resolve_transport_name("carrier-pigeon")

    def test_shm_requires_binary_codec(self):
        with pytest.raises(ValueError, match="binary"):
            ProcessBackend(num_workers=1, transport="shm", codec="pickle")

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            ProcessBackend(num_workers=1, codec="morse")

    def test_native_codec_defaults(self, monkeypatch):
        monkeypatch.delenv("PMTEST_TRANSPORT", raising=False)
        queue_backend = ProcessBackend(num_workers=1)
        try:
            assert queue_backend.transport == "queue"
            assert queue_backend.codec == "pickle"
        finally:
            queue_backend.stop()
        shm_backend = ProcessBackend(num_workers=1, transport="shm")
        try:
            assert shm_backend.codec == "binary"
        finally:
            shm_backend.stop()

    def test_pool_transport_property(self):
        with WorkerPool(num_workers=0) as pool:
            pool.drain()
            assert pool.transport == "queue"  # inline never ships bytes


class TestAdaptiveBatch:
    def test_explicit_size_is_pinned(self):
        batch = AdaptiveBatch(3)
        assert batch.fixed
        batch.observe(backlog=1000, workers=1)
        batch.observe(backlog=0, workers=1)
        assert batch.size == 3

    def test_explicit_size_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            AdaptiveBatch(0)

    def test_adaptive_starts_at_default(self):
        batch = AdaptiveBatch()
        assert not batch.fixed
        assert batch.size == DEFAULT_BATCH_SIZE

    def test_grows_under_backpressure_to_cap(self):
        batch = AdaptiveBatch()
        for _ in range(10):
            batch.observe(backlog=100, workers=2)
        assert batch.size == MAX_BATCH_SIZE

    def test_shrinks_on_starvation_to_one(self):
        batch = AdaptiveBatch()
        for _ in range(10):
            batch.observe(backlog=0, workers=2)
        assert batch.size == 1

    def test_steady_backlog_holds(self):
        batch = AdaptiveBatch()
        batch.observe(backlog=2, workers=2)  # not > 2*workers, not 0
        assert batch.size == DEFAULT_BATCH_SIZE

    def test_recovers_after_shrink(self):
        batch = AdaptiveBatch()
        batch.observe(backlog=0, workers=1)
        assert batch.size == DEFAULT_BATCH_SIZE // 2
        batch.observe(backlog=50, workers=1)
        assert batch.size == DEFAULT_BATCH_SIZE


class TestCrossTransportEquality:
    @pytest.mark.parametrize("transport,codec", COMBOS)
    def test_verdicts_bit_identical(self, transport, codec):
        traces = mixed_traces(12)
        result = run_combo(traces, transport, codec, batch_size=3)
        assert encode_result(result) == inline_reference(traces)

    @pytest.mark.parametrize("transport,codec", COMBOS)
    def test_adaptive_batching_matches_pinned(self, transport, codec):
        traces = mixed_traces(12)
        adaptive = run_combo(traces, transport, codec)  # batch_size=None
        assert encode_result(adaptive) == inline_reference(traces)

    @pytest.mark.parametrize("transport,codec", COMBOS)
    def test_engine_counters_identical(self, transport, codec):
        traces = mixed_traces(8)
        reference = MetricsRegistry(MetricsLevel.FULL)
        with WorkerPool(num_workers=0, metrics=reference) as pool:
            for trace in traces:
                pool.submit(trace)
            pool.drain()
            ref_snap = pool.metrics_snapshot()

        registry = MetricsRegistry(MetricsLevel.FULL)
        backend = ProcessBackend(
            num_workers=1, transport=transport, codec=codec, metrics=registry
        )
        try:
            for trace in traces:
                backend.submit(trace)
            backend.drain()
            merged = MetricsRegistry(MetricsLevel.FULL)
            merged.merge(registry)
            for remote in backend.metrics_registries():
                merged.merge(remote)
        finally:
            backend.stop()
        for name in ("engine.traces", "engine.events", "engine.checkers",
                     "engine.reports"):
            assert merged.counter_value(name) == ref_snap.counter_value(
                name
            ), name

    @pytest.mark.parametrize("transport,codec", COMBOS)
    def test_worker_crash_recovery(self, transport, codec):
        """A crashed worker is respawned and its traces requeued the
        same way on every transport."""
        traces = mixed_traces(10)
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0)]
        )
        backend = ProcessBackend(
            num_workers=1,
            batch_size=2,
            transport=transport,
            codec=codec,
            faults=plan,
        )
        try:
            for trace in traces:
                backend.submit(trace)
            result = backend.drain()
        finally:
            backend.stop()
        assert encode_result(result) == inline_reference(traces)
        assert any("respawned" in d for d in result.diagnostics)

    def test_corrupt_wire_fails_typed_under_shm(self):
        """The CORRUPT chaos fault has a binary-codec spelling (a poison
        opcode) that must surface exactly like the tuple truncation."""
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WIRE_ENCODE, FaultKind.CORRUPT, at=0)]
        )
        pool = WorkerPool(
            num_workers=1,
            backend="process",
            transport="shm",
            batch_size=1,
            faults=plan,
        )
        try:
            for trace in mixed_traces(3):
                pool.submit(trace)
            with pytest.raises(CheckingFailed, match="TraceDecodeError"):
                pool.drain()
        finally:
            pool._backend.stop()


class TestZeroWireBytes:
    """Satellite: in-process backends share an address space, so their
    pipelines must move zero codec bytes."""

    @pytest.mark.parametrize("backend,workers", [("inline", 0), ("thread", 2)])
    def test_no_codec_counters(self, backend, workers):
        registry = MetricsRegistry(MetricsLevel.FULL)
        with WorkerPool(
            num_workers=workers, backend=backend, metrics=registry
        ) as pool:
            for trace in mixed_traces(6):
                pool.submit(trace)
            pool.drain()
            snapshot = pool.metrics_snapshot()
        for name, value in snapshot.counters().items():
            if name.startswith("codec."):
                assert value == 0, f"{backend} moved wire bytes: {name}"

    def test_binary_codec_counts_wire_bytes(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        traces = mixed_traces(6)
        backend = ProcessBackend(
            num_workers=1, transport="shm", metrics=registry
        )
        try:
            for trace in traces:
                backend.submit(trace)
            backend.drain()
            merged = MetricsRegistry(MetricsLevel.FULL)
            merged.merge(registry)
            for remote in backend.metrics_registries():
                merged.merge(remote)
        finally:
            backend.stop()
        assert merged.counter_value("codec.task_bytes") > 0
        assert merged.counter_value("codec.task_traces") == len(traces)
        assert merged.counter_value("codec.result_bytes") > 0
        # Workers saw exactly what the submitter shipped.
        assert merged.counter_value("codec.worker_task_bytes") == (
            merged.counter_value("codec.task_bytes")
        )


class TestShmKernelFifo:
    def test_traces_roundtrip(self):
        fifo = ShmKernelFifo(capacity=16)
        try:
            traces = mixed_traces(5)
            for trace in traces:
                fifo.put(trace)
            assert len(fifo) == 5
            assert [fifo.get() for _ in range(5)] == traces
        finally:
            fifo.release()

    def test_byte_space_parks_producer(self):
        """A ring too small for the outstanding records parks the
        producer even though the entry budget has room."""
        fifo = ShmKernelFifo(capacity=1024, ring_bytes=64)
        try:
            fifo.put(good_trace(0))
            with pytest.raises(TimeoutError):
                fifo.put(good_trace(1), timeout=0.05)
            fifo.get()
            fifo.put(good_trace(1), timeout=1.0)  # freed bytes admit it
        finally:
            fifo.release()

    def test_close_wakes_parked_producer(self):
        import threading

        fifo = ShmKernelFifo(capacity=1024, ring_bytes=64)
        fifo.put(good_trace(0))

        def close_soon():
            time.sleep(0.05)
            fifo.close()

        t = threading.Thread(target=close_soon)
        t.start()
        with pytest.raises(FifoClosed):
            fifo.put(good_trace(1), timeout=5.0)
        t.join()
        fifo.release()

    def test_oversized_trace_fails_fast(self):
        fifo = ShmKernelFifo(capacity=4, ring_bytes=32)
        try:
            big = Trace(0)
            for i in range(16):
                big.append(Event(Op.WRITE, i * 64, 8))
            with pytest.raises(ValueError, match="cannot fit"):
                fifo.put(big)
        finally:
            fifo.release()

    def test_bridge_end_to_end_matches_queue_bridge(self):
        traces = mixed_traces(8)
        results = []
        for transport in ("queue", "shm"):
            bridge = KernelBridge(
                num_workers=1, transport=transport, fifo_capacity=4
            )
            for trace in traces:
                bridge.submit(trace)
            results.append(encode_result(bridge.close()))
        assert results[0] == results[1]
        assert results[0] == inline_reference(traces)
