"""Tests for the Mnemosyne raw word log and persistent map."""

import random

import pytest

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.mnemosyne.log import LogFull, RawWordLog, replay_log
from repro.mnemosyne.pmap import (
    MnemosyneMap,
    fnv1a_64,
    recover_map_image,
    validate_image,
)


def make_runtime(session=None, size=16 << 20):
    return PMRuntime(machine=PMMachine(size), session=session)


def make_session():
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    return session


class TestRawWordLog:
    def _log(self, session=None, faults=()):
        runtime = make_runtime(session)
        pool = PMPool(runtime, log_capacity=4096)
        base = pool.alloc(1024)
        return runtime, RawWordLog(runtime, base, 1024, faults=faults)

    def test_update_applies_words(self):
        runtime, log = self._log()
        a = 0x100000
        log.update([(a, 7), (a + 8, 9)])
        assert runtime.load_u64(a) == 7
        assert runtime.load_u64(a + 8) == 9

    def test_update_is_durable(self):
        runtime, log = self._log()
        a = 0x100000
        log.update([(a, 7)])
        assert runtime.machine.durable.read_u64(a) == 7

    def test_commit_truncates(self):
        runtime, log = self._log()
        log.update([(0x100000, 7)])
        assert runtime.load_u64(log.base) == 0

    def test_abandon_discards(self):
        runtime, log = self._log()
        log.append(0x100000, 7)
        log.abandon()
        log.commit()  # no pending records: no-op
        assert runtime.load_u64(0x100000) == 0

    def test_log_full(self):
        runtime, log = self._log()
        with pytest.raises(LogFull):
            for i in range(log.max_records + 1):
                log.append(0x100000 + i * 8, i)

    def test_unknown_fault_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            RawWordLog(runtime, 0x1000, 1024, faults=("bogus",))

    def test_tiny_region_rejected(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            RawWordLog(runtime, 0x1000, 16)

    def test_replay_committed_log(self):
        """A crash after the commit marker but before the in-place redo
        must be repaired by replay."""
        runtime, log = self._log()
        a = 0x100000
        log.append(a, 42)
        log.log_flush()
        # Simulate the commit marker persisting without the redo: build
        # the image by hand.
        image = runtime.machine.durable.snapshot()
        image.write_u64(log.base, 1)
        replayed = replay_log(image, log.base)
        assert replayed == 1
        assert image.read_u64(a) == 42
        assert image.read_u64(log.base) == 0

    def test_replay_uncommitted_log_is_noop(self):
        runtime, log = self._log()
        log.append(0x100000, 42)
        log.log_flush()
        image = runtime.machine.volatile.snapshot()
        image.write_u64(log.base, 0)
        assert replay_log(image, log.base) == 0
        # Value not applied.
        assert image.read_u64(0x100000) == 0

    @pytest.mark.parametrize(
        "fault,code",
        [
            ("no-log-flush", ReportCode.NOT_ORDERED),
            ("no-commit-fence", ReportCode.NOT_ORDERED),
            ("apply-no-flush", ReportCode.NOT_PERSISTED),
        ],
    )
    def test_faults_detected_by_self_annotation(self, fault, code):
        session = make_session()
        runtime, log = self._log(session=session, faults=(fault,))
        log.update([(0x100000, 7)])
        result = session.exit()
        assert result.count(code) >= 1

    def test_clean_log_passes_checkers(self):
        session = make_session()
        runtime, log = self._log(session=session)
        log.update([(0x100000, 7), (0x100008, 8)])
        assert session.exit().clean


class TestMnemosyneMap:
    def _map(self, session=None, log_faults=()):
        runtime = make_runtime(session)
        pool = PMPool(runtime, log_capacity=4096)
        return MnemosyneMap(pool, log_faults=log_faults)

    def test_set_get(self):
        m = self._map()
        m.set(b"hello", b"world")
        assert m.get(b"hello") == b"world"
        assert m.get(b"missing") is None

    def test_update(self):
        m = self._map()
        m.set(b"k", b"v1")
        m.set(b"k", b"v2")
        assert m.get(b"k") == b"v2"
        assert len(m) == 1

    def test_delete(self):
        m = self._map()
        m.set(b"k", b"v")
        assert m.delete(b"k")
        assert not m.delete(b"k")
        assert m.get(b"k") is None
        assert len(m) == 0

    def test_reopen_via_root(self):
        m = self._map()
        m.set(b"k", b"v")
        again = MnemosyneMap(m.pool)
        assert again.get(b"k") == b"v"

    def test_model_random_ops(self):
        m = self._map()
        model = {}
        rng = random.Random(11)
        for i in range(250):
            key = f"k{rng.randrange(40)}".encode()
            if rng.random() < 0.6:
                value = f"v{i}".encode()
                m.set(key, value)
                model[key] = value
            else:
                assert m.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(m.items()) == model
        assert len(m) == len(model)

    def test_empty_values_and_keys(self):
        m = self._map()
        m.set(b"", b"")
        assert m.get(b"") == b""

    def test_clean_run_passes_pmtest(self):
        session = make_session()
        m = self._map(session=session)
        for i in range(30):
            m.set(f"key{i}".encode(), f"value{i}".encode())
            session.send_trace()
        assert session.exit().clean

    def test_fnv_stability(self):
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") != fnv1a_64(b"b")


class TestMapCrashTruth:
    def test_quiescent_consistent(self):
        m = self._filled_map()
        machine = m.pool.runtime.machine
        root_addr = m.pool.root_slot_addr(0)
        enum = CrashEnumerator(machine)
        images = (
            enum.iter_images()
            if enum.count() <= 2048
            else enum.sample(random.Random(0), 48)
        )
        for image in images:
            recover_map_image(image, image.read_u64(root_addr))
            assert validate_image(image, image.read_u64(root_addr))

    def test_mid_splice_crash_consistent(self):
        """Crash between log commit and redo: replay must finish the
        splice (or the splice never happened); both are consistent."""
        m = self._filled_map()
        machine = m.pool.runtime.machine
        root_addr = m.pool.root_slot_addr(0)
        # Stage a new insert's log without committing the redo: append,
        # flush, then stop before commit applies in place.
        key, value = b"in-flight", b"data"
        key_buf = m._store_buffer(key)
        value_buf = m._store_buffer(value)
        m.runtime.persist(key_buf, 8 + len(key))
        m.runtime.persist(value_buf, 8 + len(value))
        from repro.mnemosyne.pmap import MapEntry

        entry = MapEntry.alloc(m.pool)
        head_addr = m._bucket_addr(key)
        entry.key_hash = fnv1a_64(key)
        entry.key = key_buf
        entry.value = value_buf
        entry.next = m.runtime.load_u64(head_addr)
        m.runtime.persist(entry.addr, MapEntry.SIZE)
        count_slot, _ = m.header.field_range("count")
        m.log.append(head_addr, entry.addr)
        m.log.append(count_slot, m.header.count + 1)
        m.log.log_flush()
        # Commit marker persisted, redo not performed: crash here.
        m.runtime.store_u64(m.log.base, 2)
        m.runtime.persist(m.log.base, 8)
        enum = CrashEnumerator(machine)
        images = (
            enum.iter_images()
            if enum.count() <= 2048
            else enum.sample(random.Random(1), 48)
        )
        checked = 0
        for image in images:
            recover_map_image(image, image.read_u64(root_addr))
            assert validate_image(image, image.read_u64(root_addr))
            checked += 1
        assert checked

    def _filled_map(self):
        runtime = make_runtime()
        pool = PMPool(runtime, log_capacity=4096)
        m = MnemosyneMap(pool)
        for i in range(8):
            m.set(f"key{i}".encode(), f"value{i}".encode())
        return m
