"""Tests for the PM image and the arena allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem.arena import Arena, OutOfPMError
from repro.pmem.memory import PMImage, pack_u64, unpack_u64


class TestPMImage:
    def test_zero_initialized(self):
        image = PMImage(64)
        assert image.read(0, 64) == b"\0" * 64

    def test_write_read_roundtrip(self):
        image = PMImage(64)
        image.write(10, b"abc")
        assert image.read(10, 3) == b"abc"

    def test_u64_roundtrip(self):
        image = PMImage(64)
        image.write_u64(8, 0xDEADBEEF12345678)
        assert image.read_u64(8) == 0xDEADBEEF12345678

    def test_i64(self):
        image = PMImage(64)
        image.write_u64(0, (1 << 64) - 5)  # two's complement -5
        assert image.read_i64(0) == -5

    def test_snapshot_is_independent(self):
        image = PMImage(64)
        image.write(0, b"a")
        snap = image.snapshot()
        image.write(0, b"b")
        assert snap.read(0, 1) == b"a"

    def test_bounds(self):
        image = PMImage(64)
        with pytest.raises(IndexError):
            image.read(60, 8)
        with pytest.raises(IndexError):
            image.write(-1, b"x")
        with pytest.raises(ValueError):
            image.read(0, 0)

    def test_pack_unpack(self):
        assert unpack_u64(pack_u64(42)) == 42
        assert pack_u64(0) == b"\0" * 8


class TestArena:
    def test_alloc_within_bounds(self):
        arena = Arena(100, 1000)
        addr = arena.alloc(64)
        assert arena.owns(addr)
        assert addr >= 100

    def test_alignment(self):
        arena = Arena(0, 1024, align=8)
        a = arena.alloc(3)
        b = arena.alloc(3)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 8

    def test_explicit_alignment(self):
        arena = Arena(0, 1024)
        arena.alloc(10)
        addr = arena.alloc(64, align=64)
        assert addr % 64 == 0

    def test_free_and_reuse(self):
        arena = Arena(0, 128)
        a = arena.alloc(64)
        arena.free(a)
        b = arena.alloc(64)
        assert b == a

    def test_coalescing(self):
        arena = Arena(0, 96)
        a = arena.alloc(32)
        b = arena.alloc(32)
        c = arena.alloc(32)
        arena.free(a)
        arena.free(b)
        arena.free(c)
        # After coalescing the full extent is allocatable again.
        assert arena.alloc(96) == 0

    def test_exhaustion(self):
        arena = Arena(0, 64)
        arena.alloc(64)
        with pytest.raises(OutOfPMError):
            arena.alloc(8)

    def test_double_free_rejected(self):
        arena = Arena(0, 64)
        a = arena.alloc(8)
        arena.free(a)
        with pytest.raises(ValueError):
            arena.free(a)

    def test_size_of(self):
        arena = Arena(0, 64)
        a = arena.alloc(10)  # rounded to 16
        assert arena.size_of(a) == 16

    def test_accounting(self):
        arena = Arena(0, 128)
        assert arena.free_bytes == 128
        a = arena.alloc(32)
        assert arena.allocated_bytes == 32
        assert arena.free_bytes == 96
        arena.free(a)
        assert arena.allocated_bytes == 0

    def test_reset(self):
        arena = Arena(0, 128)
        arena.alloc(64)
        arena.reset()
        assert arena.free_bytes == 128

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Arena(0, 0)
        with pytest.raises(ValueError):
            Arena(0, 64, align=3)
        arena = Arena(0, 64)
        with pytest.raises(ValueError):
            arena.alloc(0)

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        arena = Arena(0, 4096)
        live = []
        for i, size in enumerate(sizes):
            addr = arena.alloc(size)
            live.append((addr, arena.size_of(addr)))
            if i % 3 == 2:  # free every third allocation
                victim = live.pop(0)
                arena.free(victim[0])
        live.sort()
        for (a1, s1), (a2, _) in zip(live, live[1:]):
            assert a1 + s1 <= a2
