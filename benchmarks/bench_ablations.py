"""Ablations for the design choices DESIGN.md calls out.

1. **Interval map vs per-byte shadow** — the paper's core speed claim:
   the same engine semantics over a naive per-byte dict shadow must be
   far slower on coarse-grained traces.
2. **Trace batching** — ``PMTest_SEND_TRACE`` granularity: batching
   many operations per trace amortizes dispatch.
3. **Source-site capture** — the per-op file:line metadata is the most
   expensive part of tracking; measure it.
"""

import pytest

from _harness import pedantic, prepare_micro, prepare_real, record, RESULTS

from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, Trace
from repro.core.rules import X86Rules
from repro.core.rules.naive import NaiveX86Rules


# ----------------------------------------------------------------------
# 1. Shadow-memory representation
# ----------------------------------------------------------------------
def _coarse_trace(n_tx: int = 50, span: int = 2048) -> Trace:
    """A trace of coarse writes — the shape PM transactions produce."""
    trace = Trace(0)
    for i in range(n_tx):
        base = (i % 8) * span
        trace.append(Event(Op.WRITE, base, span))
        trace.append(Event(Op.CLWB, base, span))
        trace.append(Event(Op.SFENCE))
        trace.append(Event(Op.CHECK_PERSIST, base, span))
    return trace


@pytest.mark.parametrize("shadow", ["interval", "naive"])
def test_ablation_shadow(benchmark, bench_rounds, shadow):
    rules = X86Rules() if shadow == "interval" else NaiveX86Rules()
    engine = CheckingEngine(rules)
    trace = _coarse_trace()

    def run():
        result = engine.check_trace(trace)
        assert result.passed

    benchmark.pedantic(run, rounds=bench_rounds, iterations=1)
    record("ablation-shadow", (shadow,), benchmark)


def test_ablation_shadow_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    interval = RESULTS.get(("ablation-shadow", ("interval",)))
    naive = RESULTS.get(("ablation-shadow", ("naive",)))
    if interval is None or naive is None:
        pytest.skip("shadow ablation did not run")
    # The interval map must beat per-byte tracking by a wide margin on
    # coarse-grained traces.
    assert naive > 5 * interval, (interval, naive)


def _query_heavy_trace(n_segments: int = 400, n_queries: int = 400) -> Trace:
    """Many disjoint segments, then many point-ish checker queries.

    This is the shape the ``overlaps`` tail-copy fix targets: every
    query used to copy the segment list from the first hit to the end,
    so low-address queries over a large shadow were O(segments).
    """
    trace = Trace(0)
    for i in range(n_segments):
        trace.append(Event(Op.WRITE, i * 128, 64))
        trace.append(Event(Op.CLWB, i * 128, 64))
    trace.append(Event(Op.SFENCE))
    for i in range(n_queries):
        # Cluster queries at low addresses (longest tail to mis-copy).
        trace.append(Event(Op.CHECK_PERSIST, (i % 32) * 128, 64))
    return trace


@pytest.mark.parametrize("shadow", ["interval", "naive"])
def test_ablation_interval_query(benchmark, bench_rounds, shadow):
    rules = X86Rules() if shadow == "interval" else NaiveX86Rules()
    engine = CheckingEngine(rules)
    trace = _query_heavy_trace()

    def run():
        result = engine.check_trace(trace)
        assert result.passed

    benchmark.pedantic(run, rounds=bench_rounds, iterations=1)
    record("ablation-intervalquery", (shadow,), benchmark)


def test_ablation_interval_query_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    interval = RESULTS.get(("ablation-intervalquery", ("interval",)))
    naive = RESULTS.get(("ablation-intervalquery", ("naive",)))
    if interval is None or naive is None:
        pytest.skip("interval query ablation did not run")
    # With the bounded overlaps scan the margin on query-heavy traces is
    # wider than the coarse-trace ablation's 5x floor.
    assert naive > 8 * interval, (interval, naive)


# ----------------------------------------------------------------------
# 2. Trace batching (SEND_TRACE granularity)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("trace_every", [1, 10, 50])
@pytest.mark.parametrize("tool", ["none", "pmtest"])
def test_ablation_batching(benchmark, bench_rounds, trace_every, tool):
    def make():
        from _harness import make_runtime
        from repro.pmdk.pool import PMPool
        from repro.workloads import MemcachedServer, drive_kv, memslap_ops

        runtime, session, finish = make_runtime(tool, 16 << 20)
        pool = PMPool(runtime, log_capacity=256 * 1024)
        server = MemcachedServer(pool)
        ops = list(memslap_ops(250, key_space=64))

        def execute():
            drive_kv(server, ops, session=session, trace_every=trace_every)
            finish()

        return execute

    pedantic(benchmark, bench_rounds, make)
    record("ablation-batching", (trace_every, tool), benchmark)


# ----------------------------------------------------------------------
# 3. Source-site capture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sites", ["off", "on"])
def test_ablation_sites(benchmark, bench_rounds, sites):
    def make():
        return prepare_micro(
            "hashmap_tx", 256, "pmtest", n_ops=80,
            capture_sites=sites == "on",
        )

    pedantic(benchmark, bench_rounds, make)
    record("ablation-sites", (sites, "pmtest"), benchmark)


def test_ablation_sites_baseline(benchmark, bench_rounds):
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_micro("hashmap_tx", 256, "none", n_ops=80),
    )
    record("ablation-sites", ("off", "none"), benchmark)
