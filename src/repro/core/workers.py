"""Master/worker checking runtime (paper Section 4.4, Figure 8).

PMTest decouples program execution from checker validation: the program
pushes completed traces (``PMTest_SEND_TRACE``) to a master, the master
dispatches them to a pool of checking workers, and
``PMTest_GET_RESULT`` blocks until every trace submitted so far has
been tested.  Traces are independent, so this parallelism is
embarrassingly safe.

*Where* the checking runs is a pluggable strategy
(:mod:`repro.core.backends`): inline on the submitting thread
(``workers=0``, deterministic unit-test mode), on Python worker threads
(the paper's architecture; concurrency but no parallel speedup under
the GIL), or on worker *processes* (true multi-core checking — the
backend that reproduces Fig. 12's worker-scaling on a multi-core
host).  :class:`WorkerPool` is the facade the rest of the system
drives; it owns backend selection, the closed-pool guard, and the
**degradation ladder**: when a backend cannot be spawned or declares
itself unhealthy mid-run (worker crashed beyond the retry budget,
watchdog fired with no progress), the pool salvages the partial
results, replaces the backend with the next one in the chain
(process -> thread -> inline), resubmits every unchecked trace, and
records the event in the result's diagnostics — verdicts stay
bit-identical to a fault-free run, and stay honest about how they were
produced.

Environment overrides (for chaos CI runs):

``PMTEST_BACKEND``
    Overrides the *derived* backend for pools created with
    ``backend=None`` and ``num_workers > 0`` (i.e. the pools that would
    historically get the thread backend).  Explicit ``backend=`` and
    synchronous ``workers=0`` pools are untouched.
``PMTEST_CHAOS_SEED``
    Installs :func:`repro.core.faults.plan_from_seed` (recoverable
    faults only) on every pool that was not given an explicit plan.
"""

from __future__ import annotations

import os
from time import perf_counter_ns
from typing import Any, List, Optional, Tuple

from repro.core.backends import (
    BACKEND_NAMES,
    DEFAULT_BATCH_SIZE,
    FALLBACK_CHAIN,
    BackendUnhealthy,
    CheckingBackend,
    CheckingFailed,
    make_backend,
    make_backend_with_fallback,
    resolve_backend_name,
    _merge_ordered,
)
from repro.core.column_arena import (
    ArenaOverflow,
    ArenaShardRef,
    ColumnArena,
    build_arena,
)
from repro.core.columns import ColumnarTrace
from repro.core.engine_columnar import merge_shard_results, resolve_engine_name
from repro.core.interval_array import resolve_shadow_name
from repro.core.events import Trace
from repro.core.faults import FaultPlan, Resilience, plan_from_seed
from repro.core.metrics import MetricsRegistry, make_registry
from repro.core.recovery import RecoveryEvent, render_events
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.shard_plan import ShardPlanner, resolve_plan_mode
from repro.core.tracing import SpanContext, SpanHandle, Tracer
from repro.core.verdict_cache import resolve_cache_size

__all__ = ["WorkerPool", "BACKEND_NAMES", "DEFAULT_BATCH_SIZE",
           "SHARD_ENV_VAR"]

#: Environment override for the epoch-shard threshold (events); unset
#: or empty means sharding stays off unless ``shard_min_events`` is
#: passed explicitly.
SHARD_ENV_VAR = "PMTEST_SHARD_MIN_EVENTS"

#: Sentinel for "no explicit registry passed": the pool then builds one
#: from ``PMTEST_METRICS`` (``None`` stays "metrics off" for callers
#: that explicitly opt out).
_METRICS_FROM_ENV: Any = object()

#: ``(global submit seq, per-trace result)`` salvaged from a degraded
#: backend, merged back in at drain time.
_CarryPair = Tuple[int, TestResult]


class WorkerPool:
    """Dispatch of traces to checking workers, behind a backend strategy.

    Parameters
    ----------
    rules:
        Persistency-model checking rules (default x86).
    num_workers:
        Checking workers.  With ``backend=None``, ``0`` selects the
        ``inline`` backend and anything else the ``thread`` backend
        (the historical knob).
    backend:
        ``"inline"``, ``"thread"`` or ``"process"`` to pick the
        checking backend explicitly; ``None`` derives it from
        ``num_workers`` as above.
    batch_size:
        Traces per IPC message (process backend only).  ``None``
        (default) lets the batch size adapt to backpressure between 1
        and ``MAX_BATCH_SIZE``; an explicit integer pins it.
    transport:
        ``"queue"`` or ``"shm"`` — how process-backend batches cross
        the process boundary (``None`` consults ``PMTEST_TRANSPORT``,
        defaulting to ``queue``).  Ignored by inline/thread backends.
    codec:
        ``"pickle"`` or ``"binary"`` wire codec for the process
        backend (``None`` picks the transport's native codec).
    check_timeout:
        Per-drain watchdog (seconds).  After this long with no trace
        completing, outstanding work is requeued once; if that brings
        no progress either, the backend is declared unhealthy and the
        pool degrades (or raises ``CheckingFailed`` with ``fallback``
        off).  ``None`` (default) waits forever.
    max_retries:
        Dead-worker respawns tolerated per backend before it is
        declared unhealthy.
    fallback:
        Degrade along ``process -> thread -> inline`` on spawn failure
        or mid-run unhealthiness instead of raising.  Every
        degradation is recorded in the result's ``diagnostics``.
    faults:
        A :class:`~repro.core.faults.FaultPlan` for deterministic chaos
        injection (``None``: no injected faults, unless
        ``PMTEST_CHAOS_SEED`` is set).
    metrics:
        A :class:`~repro.core.metrics.MetricsRegistry` to record
        pipeline telemetry into, or ``None`` to disable recording.
        When omitted entirely, the registry is built from the
        ``PMTEST_METRICS`` environment switch (off by default).
    tracer:
        An optional :class:`~repro.core.tracing.Tracer`; submit/drain
        get spans, degradations get instant markers, and the backends'
        workers record batch spans (the process backend ships theirs
        back piggybacked on result messages).
    span_context:
        Optional :class:`~repro.core.tracing.SpanContext` the pool's
        lifetime span parents under — set it to a context received
        over the wire (the daemon threads the client's session span
        here) and the whole checking timeline hangs off the remote
        caller's span.  Only meaningful with ``tracer``.
    verdict_cache:
        Explicit on/off switch for the per-worker verdict cache
        (:mod:`repro.core.verdict_cache`).  ``None`` (default)
        consults ``PMTEST_VERDICT_CACHE``; unset means **on**.
    verdict_cache_size:
        Per-worker cache capacity in entries (default 1024 when the
        cache is on).
    engine:
        Replay engine the checking workers build: ``"object"``
        (per-event dispatch, the default) or ``"columnar"``
        (struct-of-arrays batch replay, :mod:`repro.core
        .engine_columnar`).  ``None`` consults ``PMTEST_ENGINE``.
        Verdict-neutral: both engines produce identical results.
    shadow:
        Shadow-memory interval store the workers' engines build:
        ``"object"`` (the default :class:`~repro.core.interval_map
        .IntervalMap`) or ``"array"`` (struct-of-arrays
        :class:`~repro.core.interval_array.ArrayIntervalMap` with
        batched epoch updates).  ``None`` consults ``PMTEST_SHADOW``.
        Verdict-neutral, like ``engine``.
    shard_min_events:
        Epoch-shard threshold.  A submitted trace with at least this
        many events is split at fence-delimited epoch boundaries into
        one shard per worker, checked in parallel, and the per-shard
        results folded back into a single per-trace
        :class:`~repro.core.reports.TestResult` at drain — verdicts
        stay byte-identical to unsharded replay.  Requires the
        columnar engine.  ``None`` consults ``PMTEST_SHARD_MIN_EVENTS``
        (unset: sharding off).
    shard_plan:
        How shard counts are decided (:mod:`repro.core.shard_plan`):
        ``"off"`` (never shard), ``"fixed"`` (the historical
        ``shard_min_events`` threshold, one shard per worker) or
        ``"auto"`` (size shards from a measured per-event replay-cost
        estimate, updated every drain).  ``None`` consults
        ``PMTEST_SHARD_PLAN``, else derives ``fixed`` from a set
        ``shard_min_events`` and ``off`` otherwise.  Any mode but
        ``off`` requires the columnar engine.

    For the process backend, shard dispatch is **zero-copy**: the
    split trace's columns are laid out once in a shared-memory
    :class:`~repro.core.column_arena.ColumnArena` and each shard
    travels as an O(1) descriptor (arena name + epoch-range offsets)
    that workers resolve into ``memoryview`` slices — the payload
    bytes are never re-shipped per worker.  Arenas live until the
    pool closes (requeues and degradation resubmissions resolve
    against them) and are unlinked in :meth:`close`.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        name: str = "pmtest",
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        transport: Optional[str] = None,
        codec: Optional[str] = None,
        check_timeout: Optional[float] = None,
        max_retries: int = 2,
        fallback: bool = True,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = _METRICS_FROM_ENV,
        tracer: Optional[Tracer] = None,
        span_context: Optional[SpanContext] = None,
        verdict_cache: Optional[bool] = None,
        verdict_cache_size: Optional[int] = None,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
        shard_min_events: Optional[int] = None,
        shard_plan: Optional[str] = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self._engine_name = resolve_engine_name(engine)
        self._shadow_name = resolve_shadow_name(shadow)
        if shard_min_events is None:
            env = os.environ.get(SHARD_ENV_VAR)
            if env:
                shard_min_events = int(env)
        if shard_min_events is not None:
            if shard_min_events < 1:
                raise ValueError("shard_min_events must be >= 1")
            if self._engine_name != "columnar":
                raise ValueError(
                    "epoch sharding (shard_min_events) requires "
                    "engine='columnar'"
                )
        self._shard_min_events = shard_min_events
        plan_mode = resolve_plan_mode(shard_plan, shard_min_events)
        if plan_mode != "off" and self._engine_name != "columnar":
            raise ValueError(
                f"epoch sharding (shard_plan={plan_mode!r}) requires "
                "engine='columnar'"
            )
        if plan_mode == "fixed" and shard_min_events is None:
            raise ValueError(
                "shard_plan='fixed' requires shard_min_events"
            )
        self._planner: Optional[ShardPlanner] = (
            ShardPlanner(plan_mode, min_events=shard_min_events)
            if plan_mode != "off" else None
        )
        #: shared-memory column arenas owned by this pool; shard
        #: descriptors resolve against them until :meth:`close` unlinks
        self._arenas: List[ColumnArena] = []
        #: events submitted since the last drain, the denominator for
        #: the auto planner's coarse wall-time feed
        self._events_since_drain = 0
        #: ``(start global seq, shard count)`` per split trace, folded
        #: back into one result at drain time
        self._shard_spans: List[Tuple[int, int]] = []
        if backend is None and num_workers > 0:
            override = os.environ.get("PMTEST_BACKEND")
            if override:
                backend = resolve_backend_name(override, num_workers)
        if faults is None:
            chaos_seed = os.environ.get("PMTEST_CHAOS_SEED")
            if chaos_seed:
                faults = plan_from_seed(int(chaos_seed))
        self._rules = rules
        self._num_workers = num_workers
        self._name = name
        self._batch_size = batch_size
        self._transport = transport
        self._codec = codec
        #: resolved once so degradation rebuilds use the same capacity
        self._cache_size = resolve_cache_size(
            verdict_cache, verdict_cache_size
        )
        self._resilience = Resilience(
            check_timeout=check_timeout,
            max_retries=max_retries,
            fallback=fallback,
        )
        if metrics is _METRICS_FROM_ENV:
            metrics = make_registry()
        self._metrics: Optional[MetricsRegistry] = metrics
        self._tracer = tracer
        #: pool-lifetime span; worker batch spans parent under its
        #: context, so a caller-supplied ``span_context`` (the daemon
        #: session) links straight through to worker processes
        self._pool_span: Optional[SpanHandle] = (
            tracer.start_span("pool", parent=span_context, pool=name)
            if tracer is not None else None
        )
        self._span_ctx: Optional[SpanContext] = (
            self._pool_span.context if self._pool_span is not None else None
        )
        self._events: List[RecoveryEvent] = []
        backend_obj, spawn_events = make_backend_with_fallback(
            backend,
            rules,
            num_workers=num_workers,
            batch_size=batch_size,
            transport=transport,
            codec=codec,
            thread_name=name,
            resilience=self._resilience,
            faults=faults,
            metrics=metrics,
            cache_size=self._cache_size,
            engine=self._engine_name,
            shadow=self._shadow_name,
            tracer=tracer,
            span_context=self._span_ctx,
        )
        self._backend: CheckingBackend = backend_obj
        self._events.extend(spawn_events)
        #: global submit sequence number per current-backend sequence
        self._seq_map: List[int] = []
        self._global_seq = 0
        #: per-trace results salvaged from backends that were replaced
        self._carry: List[_CarryPair] = []
        self._closed = False
        self._final: Optional[Tuple[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """Which checking backend is active (inline/thread/process)."""
        return self._backend.name

    @property
    def transport(self) -> str:
        """The active backend's transport (``queue`` for in-process
        backends, which never cross a process boundary)."""
        return getattr(self._backend, "transport", "queue")

    @property
    def num_workers(self) -> int:
        return self._backend.num_workers

    @property
    def engine_name(self) -> str:
        """Which replay engine the workers run (object/columnar)."""
        return self._engine_name

    @property
    def shadow_name(self) -> str:
        """Which shadow interval store the workers run (object/array)."""
        return self._shadow_name

    @property
    def synchronous(self) -> bool:
        """Whether traces are checked inline on the submitting thread."""
        return self._backend.name == "inline"

    @property
    def dispatched(self) -> int:
        return self._global_seq

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back from its requested backend."""
        return bool(self._events)

    @property
    def diagnostics(self) -> List[str]:
        """Pool-level recovery events (spawn fallbacks, degradations)."""
        return render_events(self._events)

    @property
    def recovery_events(self) -> List[RecoveryEvent]:
        """Typed recovery records: pool-level plus active-backend ones."""
        return list(self._events) + list(self._backend.events)

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The pool's submit-side registry (``None`` when metrics are off)."""
        return self._metrics

    def metrics_snapshot(self) -> Optional[MetricsRegistry]:
        """A merged copy of every registry the pipeline recorded into.

        Combines the pool/submit-side registry with the per-worker
        registries of the active backend (registries of degraded,
        replaced backends were already absorbed at degradation time).
        Safe to call repeatedly; each call starts from a fresh copy.
        """
        if self._metrics is None:
            return None
        snapshot = self._metrics.snapshot()
        for registry in self._backend.metrics_registries():
            snapshot.merge(registry)
        return snapshot

    def worker_trace_counts(self) -> List[int]:
        """How many traces each worker has been handed."""
        return self._backend.worker_trace_counts()

    def backlog(self) -> int:
        """Traces submitted but not yet checked (0 for inline).

        A cheap backpressure signal: the daemon polls it to decide when
        to stop reading a session's socket instead of letting unchecked
        traces pile up in the task queues.
        """
        return self._backend.backlog()

    # ------------------------------------------------------------------
    def submit(self, trace: Trace) -> None:
        """Dispatch one trace for checking (non-blocking with workers).

        With epoch sharding on (``shard_min_events``), a large trace is
        split at fence boundaries into one
        :class:`~repro.core.columns.ColumnarTrace` shard per worker,
        each dispatched under its own consecutive sequence number;
        :meth:`drain` folds the span back into one per-trace result.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        tracer = self._tracer
        self._events_since_drain += len(trace)
        shards = self._maybe_split(trace)
        if shards is not None:
            start = self._global_seq
            if tracer is not None:
                tracer.instant(
                    "submit.sharded",
                    trace_id=trace.trace_id,
                    events=len(trace),
                    shards=len(shards),
                )
            for shard in shards:
                self._backend.submit(shard)
                self._seq_map.append(self._global_seq)
                self._global_seq += 1
            self._shard_spans.append((start, len(shards)))
            if self._metrics is not None:
                counter = self._metrics.counter
                counter("shard.traces").inc(1)
                counter("shard.shards").inc(len(shards))
            return
        if tracer is None:
            self._backend.submit(trace)
        else:
            with tracer.span(
                "submit", parent=self._span_ctx,
                trace_id=trace.trace_id, events=len(trace),
            ):
                self._backend.submit(trace)
        self._seq_map.append(self._global_seq)
        self._global_seq += 1

    def _maybe_split(self, trace) -> Optional[List[Any]]:
        """Epoch-split a large trace, or ``None`` for the plain path.

        The shard planner decides the target shard count; for the
        process backend the shards come back as zero-copy
        :class:`~repro.core.column_arena.ArenaShardRef` descriptors
        over a freshly built arena, otherwise as plain
        :class:`~repro.core.columns.ColumnarTrace` slices (in-process
        backends share memory for free, and shipping descriptors would
        break their zero-wire-bytes invariant for nothing).
        """
        planner = self._planner
        if planner is None:
            return None
        target = planner.plan(len(trace), self._backend.num_workers)
        if target < 2:
            return None
        cols = (
            trace if isinstance(trace, ColumnarTrace)
            else ColumnarTrace.from_trace(trace)
        )
        shards = cols.split(target)
        if len(shards) < 2:
            return None  # no usable epoch boundary: check whole
        if self._backend.name != "process":
            return shards
        try:
            arena = build_arena(cols)
        except (ArenaOverflow, OSError):
            # Column values beyond i64 or shm exhaustion: fall back to
            # shipping the shard payloads themselves.
            if self._metrics is not None:
                self._metrics.counter("shard.arena_fallbacks").inc(1)
            return shards
        self._arenas.append(arena)
        if self._metrics is not None:
            self._metrics.counter("shard.arenas").inc(1)
            self._metrics.counter("shard.arena_bytes").inc(arena.size)
        return [
            ArenaShardRef(arena, len(shard), shard.check_from)
            for shard in shards
        ]

    def drain(self) -> TestResult:
        """Block until all submitted traces are checked; return a snapshot.

        This is ``PMTest_GET_RESULT``: the snapshot aggregates every trace
        checked since the pool was created, merged in submission order
        regardless of which worker (or, after a degradation, which
        *backend*) checked what.  With ``check_timeout`` configured this
        call is bounded: an unrecoverable hang surfaces as degradation
        or ``CheckingFailed`` instead of blocking forever.
        """
        metrics = self._metrics
        tracer = self._tracer
        planner = self._planner
        adaptive = planner is not None and planner.mode == "auto"
        timed = metrics is not None and metrics.full
        start = perf_counter_ns() if timed or adaptive else 0
        if tracer is not None:
            tracer.begin(
                "drain", parent=self._span_ctx, dispatched=self._global_seq
            )
        try:
            pairs = self._drain_pairs_degrading()
        finally:
            if tracer is not None:
                tracer.end("drain")
        elapsed = perf_counter_ns() - start if timed or adaptive else 0
        if adaptive:
            # Feed the planner: the precise per-event replay cost from
            # worker stage counters when full metrics are on, else the
            # coarse drain wall-time over events submitted since the
            # last drain.
            if timed:
                planner.absorb(self.metrics_snapshot())
            else:
                planner.observe(self._events_since_drain, elapsed)
        self._events_since_drain = 0
        if metrics is not None:
            counter = metrics.counter
            if timed:
                counter("stage.drain.ns").inc(elapsed)
            counter("stage.drain.count").inc(1)
        result = _merge_ordered(self._fold_shards(self._carry + pairs))
        result.diagnostics.extend(self.diagnostics)
        result.diagnostics.extend(self._backend.diagnostics)
        result.metadata["backend"] = self._backend.name
        result.metadata["degraded"] = self.degraded
        if self._shard_spans:
            result.metadata["epoch_shards"] = sum(
                count for _, count in self._shard_spans
            )
        return result

    def _fold_shards(self, pairs: List[_CarryPair]) -> List[_CarryPair]:
        """Collapse each shard span into one per-trace result.

        Per-shard results are merged in sequence order (shard order ==
        epoch order), so the folded reports are byte-identical to the
        single-worker replay of the whole trace regardless of which
        worker — or which backend, after a degradation — checked each
        shard.  Requeue replays were already de-duplicated upstream.
        """
        if not self._shard_spans:
            return pairs
        by_seq = dict(pairs)
        folded: List[_CarryPair] = []
        consumed: set = set()
        for start, count in self._shard_spans:
            span = [by_seq[seq] for seq in range(start, start + count)
                    if seq in by_seq]
            consumed.update(range(start, start + count))
            if span:
                folded.append((start, merge_shard_results(span)))
        for seq, result in pairs:
            if seq not in consumed:
                folded.append((seq, result))
        return folded

    def _drain_pairs_degrading(self) -> List[_CarryPair]:
        """Drain the active backend, walking the fallback chain on failure."""
        while True:
            try:
                pairs = self._backend.drain_pairs()
                return [(self._seq_map[seq], result) for seq, result in pairs]
            except BackendUnhealthy as exc:
                nxt = FALLBACK_CHAIN.get(self._backend.name)
                if not self._resilience.fallback or nxt is None:
                    raise CheckingFailed(
                        f"checking backend {self._backend.name!r} is "
                        f"unhealthy and fallback is disabled: {exc}"
                    ) from exc
                self._degrade_to(nxt, exc)

    def _degrade_to(self, name: str, exc: BackendUnhealthy) -> None:
        """Replace the unhealthy backend, salvaging its finished work."""
        old = self._backend
        # Salvage partial results and remember every recovery event.
        self._carry.extend(
            (self._seq_map[seq], result) for seq, result in exc.pairs
        )
        self._events.extend(exc.events)
        self._events.append(
            RecoveryEvent.degraded(
                old.name, name, exc, len(exc.pairs), len(exc.unchecked)
            )
        )
        if self._tracer is not None:
            self._tracer.instant(
                "backend.degraded", old=old.name, new=name
            )
        unchecked = [
            (self._seq_map[seq], trace) for seq, trace in exc.unchecked
        ]
        old.stop()
        # Absorb the dying backend's worker registries now; after the
        # swap only the new backend is consulted at snapshot time.
        if self._metrics is not None:
            for registry in old.metrics_registries():
                self._metrics.merge(registry)
        # Respawned fallbacks are not re-injected with faults: the chaos
        # plan applies to the first-choice backend only.
        self._backend, spawn_events = make_backend_with_fallback(
            name,
            self._rules,
            num_workers=max(self._num_workers, 1),
            batch_size=self._batch_size,
            transport=self._transport,
            codec=self._codec,
            thread_name=self._name,
            resilience=self._resilience,
            metrics=self._metrics,
            cache_size=self._cache_size,
            engine=self._engine_name,
            shadow=self._shadow_name,
            tracer=self._tracer,
            span_context=self._span_ctx,
        )
        self._events.extend(spawn_events)
        self._seq_map = []
        for global_seq, trace in sorted(unchecked, key=lambda pair: pair[0]):
            self._backend.submit(trace)
            self._seq_map.append(global_seq)

    def close(self) -> TestResult:
        """Drain, stop all workers, and return the final result.

        Idempotent: a second ``close`` (or a close after a failed
        drain) replays the first outcome without touching the stopped
        workers or their dead queues.
        """
        if self._final is not None:
            kind, value = self._final
            if kind == "err":
                raise value  # type: ignore[misc]
            return value  # type: ignore[return-value]
        self._closed = True
        try:
            result = self.drain()
        except BaseException as exc:
            self._final = ("err", exc)
            raise
        else:
            self._final = ("ok", result)
            return result
        finally:
            self._backend.stop()
            # Unlink the shard arenas only after the backend stopped:
            # requeues and degradation resubmissions resolve
            # descriptors against them right up to the final drain.
            arenas, self._arenas = self._arenas, []
            for arena in arenas:
                arena.release()
            if self._pool_span is not None:
                self._pool_span.finish(
                    dispatched=self._global_seq, backend=self._backend.name
                )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
