"""Array-backed interval store: the vectorized shadow plane.

:class:`~repro.core.interval_map.IntervalMap` keeps one Python tuple and
one Python value object per segment, so every shadow update and checker
query pays per-object allocation and attribute chasing.  This module
stores the same map as **struct-of-arrays**: flat ``starts`` / ``ends``
int64 columns (``array('q')``, viewed zero-copy by numpy when available)
plus a parallel ``codes`` column of small integers that index into a
*state-code table* (:class:`ValueCodec`) interning the distinct value
objects.  A shadow memory has few distinct persistency states per trace
(one per ``(write epoch, site)`` pair at most), so the code table stays
tiny while the segment columns stay primitive.

On top of the columns sit **batched epoch operations** — the whole point
of the layout:

``assign_many``
    apply a fence-delimited epoch's writes in one sorted sweep and a
    single splice (sequential-``assign`` equivalent, later writes win);
``update_many``
    rewrite all mapped pieces of a sorted run of disjoint ranges in one
    carve pass;
``overlaps_many`` / ``covers_many``
    answer an epoch's checker range queries with one ``searchsorted``
    pass over the columns instead of per-query list building.

Semantics are byte-identical to ``IntervalMap`` — including
:class:`~repro.core.metrics.QueryStats` accounting (``overlaps`` counts
``i1 - i0`` scanned, ``covers`` counts the early-exit walk, mutations
count nothing) and the ``ValueError`` raised on empty ranges — so the
store is differential-tested against the object map as oracle and
selected per checker via ``--shadow {object,array}`` / ``PMTEST_SHADOW``.

Addresses wider than int64 (hypothesis likes them; real traces do not)
transparently box the bound columns back to Python lists; the code
column and all semantics are unaffected, only the numpy fast paths
disable themselves.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.interval_map import QueryStats, Segment, _check_range
from repro.core.npcompat import load_numpy

_np = load_numpy()

#: selectable shadow store implementations, default first
SHADOW_NAMES = ("object", "array")

#: environment variable consulted when no explicit shadow is configured
SHADOW_ENV_VAR = "PMTEST_SHADOW"


def resolve_shadow_name(name: Optional[str] = None) -> str:
    """Resolve a shadow-store name from an explicit value or the environment.

    Mirrors ``resolve_engine_name``: explicit argument wins, then
    ``PMTEST_SHADOW``, then the ``object`` default.  Unknown names raise
    ``ValueError`` so typos fail loudly rather than silently checking
    with the wrong store.
    """
    if name is None:
        name = os.environ.get(SHADOW_ENV_VAR) or SHADOW_NAMES[0]
    name = str(name).strip().lower()
    if name not in SHADOW_NAMES:
        raise ValueError(
            f"unknown shadow store {name!r}; expected one of {SHADOW_NAMES}"
        )
    return name


class ValueCodec:
    """State-code table: interns values as dense small-int codes.

    Equal values (by ``==``/``hash``) always receive the same code, so
    code equality is value equality — ``coalesce`` and the batched
    kernels compare codes without decoding.  Subclasses may override
    :meth:`_on_new` to maintain parallel per-code metadata columns (the
    x86 rules keep a flush-epoch column for vectorized persist checks).
    """

    __slots__ = ("values", "_by_value")

    def __init__(self) -> None:
        #: code -> value (the decode table)
        self.values: List[object] = []
        self._by_value: dict = {}

    def encode(self, value) -> int:
        code = self._by_value.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self._by_value[value] = code
            self._on_new(value)
        return code

    def decode(self, code: int):
        return self.values[code]

    def __len__(self) -> int:
        return len(self.values)

    def _on_new(self, value) -> None:
        """Hook: a value was just assigned the next code."""


class ArrayIntervalMap:
    """Drop-in ``IntervalMap`` replacement over flat int64 columns.

    The public surface (queries, mutation, ``stats``, iteration) matches
    ``IntervalMap`` exactly; values are materialized through the codec
    on the way out.  Values must be hashable (the shadow's
    ``SegmentState`` is a frozen dataclass).
    """

    __slots__ = ("_starts", "_ends", "_codes", "codec", "stats", "_boxed")

    def __init__(
        self,
        segments: Optional[Iterable[Segment]] = None,
        codec: Optional[ValueCodec] = None,
    ) -> None:
        self._starts = array("q")
        self._ends = array("q")
        self._codes = array("q")
        self.codec = codec if codec is not None else ValueCodec()
        #: optional :class:`QueryStats`, same contract as ``IntervalMap``
        self.stats: Optional[QueryStats] = None
        #: True once address bounds overflowed int64 and the bound
        #: columns were boxed back to Python lists
        self._boxed = False
        if segments is not None:
            for start, end, value in segments:
                self.assign(start, end, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._codes)

    def __bool__(self) -> bool:
        return bool(self._codes)

    def __iter__(self) -> Iterator[Segment]:
        decode = self.codec.values.__getitem__
        return (
            (s, e, decode(c))
            for s, e, c in zip(self._starts, self._ends, self._codes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{s}, {e}): {v!r}" for s, e, v in self)
        return f"ArrayIntervalMap({inner})"

    def get(self, point: int):
        """Return the value covering ``point``, or ``None``."""
        i = bisect_right(self._starts, point) - 1
        if i >= 0 and self._starts[i] <= point < self._ends[i]:
            return self.codec.values[self._codes[i]]
        return None

    def overlaps(self, lo: int, hi: int, clip: bool = True) -> List[Segment]:
        """Segments intersecting ``[lo, hi)``; bounds clipped by default."""
        _check_range(lo, hi)
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        stats = self.stats
        if stats is not None:
            stats.queries += 1
            stats.scanned += i1 - i0
        starts, ends, codes = self._starts, self._ends, self._codes
        decode = self.codec.values.__getitem__
        out: List[Segment] = []
        for i in range(i0, i1):
            start, end = starts[i], ends[i]
            if clip:
                if start < lo:
                    start = lo
                if end > hi:
                    end = hi
            out.append((start, end, decode(codes[i])))
        return out

    def gaps(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Maximal subranges of ``[lo, hi)`` not covered."""
        _check_range(lo, hi)
        out: List[Tuple[int, int]] = []
        cursor = lo
        for start, end, _ in self.overlaps(lo, hi):
            if start > cursor:
                out.append((cursor, start))
            cursor = end
        if cursor < hi:
            out.append((cursor, hi))
        return out

    def covers(self, lo: int, hi: int) -> bool:
        """Whether every address in ``[lo, hi)`` is mapped.

        Same early-exit walk — and the same ``stats.scanned``
        accounting — as the object map.
        """
        _check_range(lo, hi)
        starts, ends = self._starts, self._ends
        n = len(starts)
        i = i0 = self._first_overlap(lo)
        cursor = lo
        while i < n and cursor < hi:
            if starts[i] > cursor:
                break  # hole before this segment
            cursor = ends[i]
            i += 1
        stats = self.stats
        if stats is not None:
            stats.queries += 1
            stats.scanned += i - i0
        return cursor >= hi

    def total_span(self) -> int:
        """Total number of addresses mapped."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, lo: int, hi: int, value) -> None:
        """Set ``[lo, hi)`` to ``value``, overwriting any previous mapping."""
        self.assign_code(lo, hi, self.codec.encode(value))

    def assign_code(self, lo: int, hi: int, code: int) -> None:
        """``assign`` with a pre-encoded state code (hot-path variant)."""
        _check_range(lo, hi)
        i0, i1, rs, re_, rc = self._carve(lo, hi)
        # slot the new piece between the carve's prefix and suffix remainders
        ins = 1 if rs and rs[0] < lo else 0
        rs.insert(ins, lo)
        re_.insert(ins, hi)
        rc.insert(ins, code)
        self._splice(i0, i1, rs, re_, rc)

    def erase(self, lo: int, hi: int) -> None:
        """Remove any mapping over ``[lo, hi)``."""
        _check_range(lo, hi)
        i0, i1, rs, re_, rc = self._carve(lo, hi)
        self._splice(i0, i1, rs, re_, rc)

    def update(self, lo: int, hi: int, fn: Callable[[int, int, object], object]) -> None:
        """Replace each mapped subrange of ``[lo, hi)`` with ``fn``'s result.

        Same contract as ``IntervalMap.update``: ``fn`` sees the clipped
        ``(start, end, value)`` of every overlapping piece, gaps stay
        gaps, and nothing counts into ``stats``.
        """
        _check_range(lo, hi)
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        starts, ends, codes = self._starts, self._ends, self._codes
        decode = self.codec.values.__getitem__
        encode = self.codec.encode
        rs: List[int] = []
        re_: List[int] = []
        rc: List[int] = []
        for i in range(i0, i1):
            start, end, code = starts[i], ends[i], codes[i]
            if start < lo:
                rs.append(start)
                re_.append(lo)
                rc.append(code)
                start = lo
            tail = None
            if end > hi:
                tail = end
                end = hi
            rs.append(start)
            re_.append(end)
            rc.append(encode(fn(start, end, decode(code))))
            if tail is not None:
                rs.append(hi)
                re_.append(tail)
                rc.append(code)
        self._splice(i0, i1, rs, re_, rc)

    def update_codes(self, lo: int, hi: int, code_fn: Callable[[int], int]) -> None:
        """Code-level ``update``: map each overlapped piece's code.

        For value functions that ignore the clipped bounds (the flush
        rules' first-flush-wins closure), this skips decode/encode
        entirely; callers typically memoize ``code_fn`` per call.
        """
        _check_range(lo, hi)
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        if i0 == i1:
            return
        starts, ends, codes = self._starts, self._ends, self._codes
        rs: List[int] = []
        re_: List[int] = []
        rc: List[int] = []
        # Epochs repeat a handful of distinct codes across many
        # segments: resolve each through code_fn once, then hit the
        # local dict (cheaper than the callback's own memo lookup).
        memo: dict = {}
        memo_get = memo.get
        for i in range(i0, i1):
            start, end, code = starts[i], ends[i], codes[i]
            if start < lo:
                rs.append(start)
                re_.append(lo)
                rc.append(code)
                start = lo
            tail = None
            if end > hi:
                tail = end
                end = hi
            mapped = memo_get(code)
            if mapped is None:
                mapped = code_fn(code)
                memo[code] = mapped
            rs.append(start)
            re_.append(end)
            rc.append(mapped)
            if tail is not None:
                rs.append(hi)
                re_.append(tail)
                rc.append(code)
        self._splice(i0, i1, rs, re_, rc)

    def update_all(self, fn: Callable[[int, int, object], object]) -> None:
        """Replace every segment value with ``fn``'s result."""
        decode = self.codec.values.__getitem__
        encode = self.codec.encode
        self._codes = array(
            "q",
            (
                encode(fn(s, e, decode(c)))
                for s, e, c in zip(self._starts, self._ends, self._codes)
            ),
        )

    def clear(self) -> None:
        """Remove all mappings (the code table is retained)."""
        if self._boxed:
            self._starts = array("q")
            self._ends = array("q")
            self._boxed = False
        else:
            del self._starts[:]
            del self._ends[:]
        del self._codes[:]

    def coalesce(self) -> None:
        """Merge adjacent segments whose values compare equal.

        Codes intern by value equality, so code equality is value
        equality and no decode is needed.
        """
        starts, ends, codes = self._starts, self._ends, self._codes
        n = len(codes)
        if not n:
            return
        rs: List[int] = [starts[0]]
        re_: List[int] = [ends[0]]
        rc: List[int] = [codes[0]]
        for i in range(1, n):
            start = starts[i]
            if re_[-1] == start and rc[-1] == codes[i]:
                re_[-1] = ends[i]
            else:
                rs.append(start)
                re_.append(ends[i])
                rc.append(codes[i])
        if len(rs) != n:
            self._splice(0, n, rs, re_, rc)

    # ------------------------------------------------------------------
    # Batched epoch operations
    # ------------------------------------------------------------------
    def assign_many(self, items: Sequence[Tuple[int, int, object]]) -> None:
        """Apply a run of assigns in one sweep; later items win overlaps.

        Equivalent to ``for lo, hi, v in items: self.assign(lo, hi, v)``
        — including the final segmentation: each item contributes one
        segment per maximal subrange not overwritten by a later item.
        """
        encode = self.codec.encode
        self.assign_codes_many([(lo, hi, encode(v)) for lo, hi, v in items])

    def assign_codes_many(self, items: Sequence[Tuple[int, int, int]]) -> None:
        """``assign_many`` over pre-encoded ``(lo, hi, code)`` triples."""
        n = len(items)
        if n == 0:
            return
        if n == 1:
            lo, hi, code = items[0]
            self.assign_code(lo, hi, code)
            return
        for lo, hi, _ in items:
            _check_range(lo, hi)
        pieces = _surviving_pieces(items)
        self._merge_pieces(pieces)

    def update_many(
        self,
        ranges: Sequence[Tuple[int, int]],
        fn: Callable[[int, int, object], object],
    ) -> None:
        """``update`` over a sorted run of disjoint ranges, one carve pass.

        ``ranges`` must be ascending and non-overlapping (a fence-
        delimited epoch's flush set after sorting); ``fn`` sees clipped
        pieces in the same order sequential ``update`` calls would.
        """
        prev_hi = None
        for lo, hi in ranges:
            _check_range(lo, hi)
            if prev_hi is not None and lo < prev_hi:
                raise ValueError("update_many ranges must be sorted and disjoint")
            prev_hi = hi
        if not ranges:
            return
        starts, ends, codes = self._starts, self._ends, self._codes
        decode = self.codec.values.__getitem__
        encode = self.codec.encode
        i0 = self._first_overlap(ranges[0][0])
        i1 = bisect_left(self._starts, ranges[-1][1], i0)
        rs: List[int] = []
        re_: List[int] = []
        rc: List[int] = []
        k = i0
        for lo, hi in ranges:
            while k < i1 and ends[k] <= lo:
                rs.append(starts[k])
                re_.append(ends[k])
                rc.append(codes[k])
                k += 1
            while k < i1 and starts[k] < hi:
                start, end, code = starts[k], ends[k], codes[k]
                if start < lo:
                    rs.append(start)
                    re_.append(lo)
                    rc.append(code)
                    start = lo
                if end <= hi:
                    rs.append(start)
                    re_.append(end)
                    rc.append(encode(fn(start, end, decode(code))))
                    k += 1
                else:
                    rs.append(start)
                    re_.append(hi)
                    rc.append(encode(fn(start, hi, decode(code))))
                    # keep the remainder in place for the next range
                    self._set_bound(k, hi)
                    starts, ends, codes = self._starts, self._ends, self._codes
                    break
        while k < i1:
            rs.append(starts[k])
            re_.append(ends[k])
            rc.append(codes[k])
            k += 1
        self._splice(i0, i1, rs, re_, rc)

    def bounds_many(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> Tuple[List[int], List[int]]:
        """Per-range ``(i0, i1)`` segment windows, one searchsorted pass.

        The raw primitive under ``overlaps_many``/``covers_many`` and
        the rules' vectorized persist checks; performs no stats
        accounting (callers decide what counts as a query).
        """
        starts, ends = self._starts, self._ends
        np = _np
        if np is not None and not self._boxed and ranges:
            sv = np.frombuffer(starts, dtype=np.int64) if len(starts) else np.empty(0, np.int64)
            ev = np.frombuffer(ends, dtype=np.int64) if len(ends) else np.empty(0, np.int64)
            los = np.fromiter((r[0] for r in ranges), np.int64, len(ranges))
            his = np.fromiter((r[1] for r in ranges), np.int64, len(ranges))
            idx = np.searchsorted(sv, los, "right") - 1
            clipped = np.maximum(idx, 0)
            hit = (idx >= 0) & (ev[clipped] > los) if len(ev) else np.zeros(len(ranges), bool)
            i0s = np.where(hit, idx, idx + 1)
            i1s = np.searchsorted(sv, his, "left")
            return i0s.tolist(), i1s.tolist()
        i0s: List[int] = []
        i1s: List[int] = []
        for lo, hi in ranges:
            i0 = self._first_overlap(lo)
            i0s.append(i0)
            i1s.append(bisect_left(starts, hi, i0))
        return i0s, i1s

    def overlaps_many(
        self, ranges: Sequence[Tuple[int, int]], clip: bool = True
    ) -> List[List[Segment]]:
        """``overlaps`` for every range in one pass over the columns.

        Stats accounting matches per-call ``overlaps``: one query and
        ``i1 - i0`` scanned per range.
        """
        for lo, hi in ranges:
            _check_range(lo, hi)
        i0s, i1s = self.bounds_many(ranges)
        stats = self.stats
        if stats is not None:
            stats.queries += len(ranges)
            stats.scanned += sum(i1 - i0 for i0, i1 in zip(i0s, i1s))
        starts, ends, codes = self._starts, self._ends, self._codes
        decode = self.codec.values.__getitem__
        out: List[List[Segment]] = []
        for (lo, hi), i0, i1 in zip(ranges, i0s, i1s):
            row: List[Segment] = []
            for i in range(i0, i1):
                start, end = starts[i], ends[i]
                if clip:
                    if start < lo:
                        start = lo
                    if end > hi:
                        end = hi
                row.append((start, end, decode(codes[i])))
            out.append(row)
        return out

    def covers_many(self, ranges: Sequence[Tuple[int, int]]) -> List[bool]:
        """``covers`` for every range in one pass.

        With stats attached this delegates to per-range :meth:`covers`
        so the early-exit ``scanned`` accounting stays byte-identical to
        the object map; the batched path serves the metrics-off hot
        path.
        """
        if self.stats is not None:
            return [self.covers(lo, hi) for lo, hi in ranges]
        for lo, hi in ranges:
            _check_range(lo, hi)
        i0s, i1s = self.bounds_many(ranges)
        starts, ends = self._starts, self._ends
        out: List[bool] = []
        for (lo, hi), i0, i1 in zip(ranges, i0s, i1s):
            if i0 >= i1 or starts[i0] > lo:
                out.append(False)
                continue
            cursor = lo
            ok = True
            for i in range(i0, i1):
                if starts[i] > cursor:
                    ok = False
                    break
                cursor = ends[i]
            out.append(ok and cursor >= hi)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _window(self, lo: int, hi: int) -> Tuple[int, int]:
        """Segment index window ``[i0, i1)`` overlapping ``[lo, hi)``.

        The raw bisection under the rules' column-level fast paths; no
        stats accounting (it answers no query by itself).
        """
        i0 = self._first_overlap(lo)
        return i0, bisect_left(self._starts, hi, i0)

    def _first_overlap(self, lo: int) -> int:
        """Index of the first segment whose end is greater than ``lo``."""
        i = bisect_right(self._starts, lo) - 1
        if i >= 0 and self._ends[i] > lo:
            return i
        return i + 1

    def _carve(self, lo: int, hi: int):
        """Like ``IntervalMap._carve`` but over columns.

        Returns ``(i0, i1, rs, re_, rc)`` where the r-lists hold the
        prefix and suffix remainders ready to receive the new middle.
        """
        i0 = self._first_overlap(lo)
        i1 = bisect_left(self._starts, hi, i0)
        rs: List[int] = []
        re_: List[int] = []
        rc: List[int] = []
        if i0 < i1:
            starts, ends, codes = self._starts, self._ends, self._codes
            if starts[i0] < lo:
                rs.append(starts[i0])
                re_.append(lo)
                rc.append(codes[i0])
            if ends[i1 - 1] > hi:
                rs.append(hi)
                re_.append(ends[i1 - 1])
                rc.append(codes[i1 - 1])
        return i0, i1, rs, re_, rc

    def _merge_pieces(self, pieces: List[Tuple[int, int, int]]) -> None:
        """Single-splice merge of sorted disjoint ``(lo, hi, code)`` pieces."""
        if not pieces:
            return
        starts, ends, codes = self._starts, self._ends, self._codes
        i0 = self._first_overlap(pieces[0][0])
        i1 = bisect_left(starts, pieces[-1][1], i0)
        rs: List[int] = []
        re_: List[int] = []
        rc: List[int] = []
        k = i0
        cur = None  # pending (start, end, code) remainder of an existing segment
        for plo, phi, pcode in pieces:
            # emit existing material strictly before this piece
            while True:
                if cur is None:
                    if k < i1:
                        cur = (starts[k], ends[k], codes[k])
                        k += 1
                    else:
                        break
                cs, ce, cc = cur
                if ce <= plo:
                    rs.append(cs)
                    re_.append(ce)
                    rc.append(cc)
                    cur = None
                elif cs < plo:
                    rs.append(cs)
                    re_.append(plo)
                    rc.append(cc)
                    cur = (plo, ce, cc)
                    break
                else:
                    break
            # drop existing material the piece overwrites
            while True:
                if cur is None:
                    if k < i1 and starts[k] < phi:
                        cur = (starts[k], ends[k], codes[k])
                        k += 1
                    else:
                        break
                cs, ce, cc = cur
                if cs >= phi:
                    break
                if ce <= phi:
                    cur = None
                else:
                    cur = (phi, ce, cc)
                    break
            rs.append(plo)
            re_.append(phi)
            rc.append(pcode)
        if cur is not None:
            rs.append(cur[0])
            re_.append(cur[1])
            rc.append(cur[2])
        while k < i1:
            rs.append(starts[k])
            re_.append(ends[k])
            rc.append(codes[k])
            k += 1
        self._splice(i0, i1, rs, re_, rc)

    def _set_bound(self, i: int, new_start: int) -> None:
        """Clip segment ``i``'s start to ``new_start`` in place."""
        try:
            self._starts[i] = new_start
        except OverflowError:
            self._box()
            self._starts[i] = new_start

    def _splice(
        self, i0: int, i1: int, rs: Sequence[int], re_: Sequence[int], rc: Sequence[int]
    ) -> None:
        """Replace segments ``[i0, i1)`` with the given column run."""
        carr = array("q", rc)
        if not self._boxed:
            try:
                sarr = array("q", rs)
                earr = array("q", re_)
            except OverflowError:
                self._box()
            else:
                self._starts[i0:i1] = sarr
                self._ends[i0:i1] = earr
                self._codes[i0:i1] = carr
                return
        self._starts[i0:i1] = list(rs)
        self._ends[i0:i1] = list(re_)
        self._codes[i0:i1] = carr

    def _box(self) -> None:
        """Fall back to list-backed bound columns (int64 overflow)."""
        if not self._boxed:
            self._starts = list(self._starts)
            self._ends = list(self._ends)
            self._boxed = True


def _surviving_pieces(
    items: Sequence[Tuple[int, int, int]]
) -> List[Tuple[int, int, int]]:
    """Sorted disjoint pieces equivalent to sequential assigns of ``items``.

    A reverse sweep over the run: later items win, so walking backwards
    each item keeps exactly the subranges not yet covered by (later)
    items already swept.  Mirrors the coverage sweep of
    ``X86Rules.apply_write_run`` but emits codes rather than mutating
    the shadow.
    """
    # fast path: ascending, non-overlapping runs survive whole
    disjoint = True
    prev_hi = None
    for lo, hi, _ in items:
        if prev_hi is not None and lo < prev_hi:
            disjoint = False
            break
        prev_hi = hi
    if disjoint:
        return list(items)
    from repro.core.interval_map import IntervalMap

    coverage: IntervalMap = IntervalMap()
    pieces: List[Tuple[int, int, int]] = []
    for lo, hi, code in reversed(items):
        for glo, ghi in coverage.gaps(lo, hi):
            pieces.append((glo, ghi, code))
        coverage.assign(lo, hi, True)
    pieces.sort(key=lambda p: p[0])
    return pieces
