"""The daemon's live telemetry plane: stats, exposition, flight recorder.

Post-mortem observability (``--metrics-json`` at shutdown) answers
"what happened"; operators of a multi-tenant checking service also need
"what is happening".  This module adds three live surfaces on top of
the existing :class:`~repro.core.metrics.MetricsRegistry` plumbing,
none of which touch checking semantics:

``build_stats_payload``
    One JSON-ready snapshot of the server — session/trace totals, the
    admission ladder's counters, the inflight-byte budget, and a
    per-tenant table (sessions, traces, sheds, frame latency
    quantiles).  Served to clients as ``stats`` session frames
    (subscribe with a ``stats_sub`` frame; ``repro top`` renders the
    stream) and embedded in the HTTP exposition below.

``render_prometheus``
    The same snapshot plus the merged registry as Prometheus text
    exposition (version 0.0.4): names are ``pmtest_``-prefixed with
    dots flattened to underscores, per-tenant series carry a
    ``tenant`` label, histograms expose ``_count``/``_sum`` plus
    interpolated ``_p50``/``_p99`` derived from the log2 buckets.

:class:`FlightRecorder`
    A bounded ring of recent structured events (admissions are *not*
    recorded — only the interesting minority: sheds, rejections,
    aborts, recoveries, chaos firings, slow frames), dumped on
    SIGTERM via the serve CLI and on demand via ``repro stats
    --flight``.  Bounded by construction: memory is ``capacity``
    events regardless of uptime.

Everything here follows the metrics discipline: the server only builds
a recorder/telemetry state when its registry exists, so
``PMTEST_METRICS=off`` keeps the whole plane a single ``is None``
branch on the hot path.

The HTTP endpoint (``serve_http``) is a deliberately tiny asyncio
``GET``-only server — ``/metrics`` and ``/healthz``, no dependencies —
meant for a scraper or a load balancer probe, not the open internet.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    TYPE_CHECKING,
)

from repro.core.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daemon.server import CheckingServer

__all__ = [
    "FlightRecorder",
    "build_stats_payload",
    "render_prometheus",
    "serve_http",
]

#: Default flight-recorder capacity (events, not bytes).
DEFAULT_FLIGHT_EVENTS = 256


class FlightRecorder:
    """A bounded ring of recent structured events.

    Each record is a plain dict carrying a monotonically increasing
    ``seq`` (so a dump shows how much history scrolled off), a
    wall-clock ``ts``, the event ``kind``, and the caller's fields.
    The clock is injectable for deterministic tests.  Not thread-safe
    by design: the server records only from its event loop.
    """

    __slots__ = ("_events", "_seq", "_clock", "capacity", "dropped")

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_EVENTS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._clock = clock
        #: events pushed out of the ring so far
        self.dropped = 0

    def record(self, kind: str, **fields: Any) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = {"seq": self._seq, "ts": self._clock(), "kind": kind}
        event.update(fields)
        self._seq += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[dict]:
        """Oldest-first copy of the ring."""
        return list(self._events)

    def to_json(self) -> str:
        return json.dumps(
            {
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self.dropped,
                "events": self.events(),
            },
            indent=2,
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# Stats snapshots
# ----------------------------------------------------------------------
def _histogram_stats(hist) -> Dict[str, int]:
    return {
        "count": hist.count,
        "p50": hist.quantile(0.50),
        "p99": hist.quantile(0.99),
    }


def build_stats_payload(
    server: "CheckingServer", clock: Callable[[], float] = time.time
) -> dict:
    """One JSON-ready snapshot of a server's live state.

    Always available — the totals come from the always-on plain
    counters on the server and its admission controller; the latency
    quantiles additionally appear when the registry records at
    ``full``.  ``queued_traces`` sums the live session pools' backlogs,
    so it moves while checking is behind, not just between drains.
    """
    admission = server.admission
    budget = admission.budget

    def blank() -> dict:
        return {
            "frames_admitted": 0,
            "bytes_admitted": 0,
            "frames_shed": 0,
            "bytes_shed": 0,
            "sessions_rejected": 0,
            "sessions": 0,
            "traces": 0,
            "queued_traces": 0,
        }

    tenants: Dict[str, dict] = {}
    for tenant, stats in sorted(admission.tenant_stats.items()):
        tenants[tenant] = {**blank(), **stats}
    for tenant, traces in sorted(server.tenant_traces.items()):
        tenants.setdefault(tenant, blank())["traces"] = traces
    for session in list(server._sessions.values()):
        entry = tenants.setdefault(session.tenant, blank())
        entry["sessions"] += 1
        try:
            entry["queued_traces"] += session.pool.backlog()
        except Exception:  # a dying pool must not break a snapshot
            pass
    payload = {
        "ts": clock(),
        "sessions": {
            "active": server.active_sessions,
            "served": server.sessions_served,
            "aborted": server.sessions_aborted,
            "rejected": admission.sessions_rejected,
        },
        "traces_accepted": server.traces_accepted,
        "admission": {
            "frames_admitted": admission.frames_admitted,
            "bytes_admitted": admission.bytes_admitted,
            "frames_shed": admission.frames_shed,
            "bytes_shed": admission.bytes_shed,
            "inflight_bytes": budget.used,
            "inflight_limit": budget.limit,
        },
        "tenants": tenants,
    }
    metrics = server.metrics
    if metrics is not None and metrics.full:
        hists = metrics.histograms()
        frame_hist = hists.get("daemon.frame_ns")
        if frame_hist is not None and frame_hist.count:
            payload["frame_ns"] = _histogram_stats(frame_hist)
        for tenant in tenants:
            hist = hists.get(f"daemon.tenant.{tenant}.frame_ns")
            if hist is not None and hist.count:
                tenants[tenant]["frame_ns"] = _histogram_stats(hist)
    return payload


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _metric_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    flat = "".join(out)
    return f"pmtest_{flat}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n"
    )


def render_prometheus(
    payload: dict, registry: Optional[MetricsRegistry] = None
) -> str:
    """Prometheus 0.0.4 text exposition of a stats payload + registry.

    Tenant-labelled series come from the payload's per-tenant table
    (``pmtest_daemon_tenant_*{tenant="..."}``); everything in the
    registry is exported under its flattened name (histograms as
    ``_count``/``_sum``/``_p50``/``_p99``).  Dots become underscores,
    so ``daemon.frames_shed`` scrapes as ``pmtest_daemon_frames_shed``.
    """
    lines: List[str] = []

    def emit(name: str, value, labels: Optional[Dict[str, str]] = None):
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            lines.append(f"{name}{{{rendered}}} {value}")
        else:
            lines.append(f"{name} {value}")

    sessions = payload.get("sessions", {})
    for key, value in sorted(sessions.items()):
        emit(_metric_name(f"daemon.sessions_{key}"), value)
    emit(_metric_name("daemon.traces_accepted"),
         payload.get("traces_accepted", 0))
    for key, value in sorted(payload.get("admission", {}).items()):
        emit(_metric_name(f"daemon.{key}"), value)
    frame = payload.get("frame_ns")
    if frame and registry is None:
        # With a registry the daemon.frame_ns histogram below renders
        # the same series (plus _sum); don't emit duplicate names.
        for key, value in sorted(frame.items()):
            emit(_metric_name(f"daemon.frame_ns_{key}"), value)
    for tenant, stats in sorted(payload.get("tenants", {}).items()):
        label = {"tenant": tenant}
        for key, value in sorted(stats.items()):
            if key == "frame_ns":
                for qkey, qvalue in sorted(value.items()):
                    emit(_metric_name(f"daemon.tenant_frame_ns_{qkey}"),
                         qvalue, label)
            else:
                emit(_metric_name(f"daemon.tenant_{key}"), value, label)
    if registry is not None:
        for name, value in registry.counters().items():
            emit(_metric_name(name), value)
        for name, value in registry.gauges().items():
            emit(_metric_name(name), value)
        for name, hist in registry.histograms().items():
            base = _metric_name(name)
            emit(f"{base}_count", hist.count)
            emit(f"{base}_sum", hist.total)
            if hist.count:
                emit(f"{base}_p50", hist.quantile(0.50))
                emit(f"{base}_p99", hist.quantile(0.99))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The /metrics + /healthz HTTP endpoint
# ----------------------------------------------------------------------
_RESPONSE = (
    "HTTP/1.1 {status}\r\n"
    "Content-Type: {ctype}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)


async def _http_session(
    server: "CheckingServer",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request = await asyncio.wait_for(reader.readline(), 5.0)
        parts = request.decode("latin-1", "replace").split()
        # Drain the header block; nothing in it matters for GETs.
        while True:
            line = await asyncio.wait_for(reader.readline(), 5.0)
            if line in (b"", b"\r\n", b"\n"):
                break
        if len(parts) < 2 or parts[0] != "GET":
            status, ctype, body = (
                "405 Method Not Allowed", "text/plain", "GET only\n"
            )
        elif parts[1] in ("/healthz", "/healthz/"):
            status, ctype, body = "200 OK", "text/plain", "ok\n"
        elif parts[1] in ("/metrics", "/metrics/"):
            payload = build_stats_payload(server)
            snapshot = server.metrics_snapshot()
            body = render_prometheus(payload, snapshot)
            status = "200 OK"
            ctype = "text/plain; version=0.0.4"
        else:
            status, ctype, body = "404 Not Found", "text/plain", "not found\n"
        data = body.encode("utf-8")
        writer.write(
            _RESPONSE.format(
                status=status, ctype=ctype, length=len(data)
            ).encode("latin-1") + data
        )
        await writer.drain()
    except (asyncio.TimeoutError, ConnectionError, OSError):
        pass  # a broken scraper is its own problem
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def serve_http(
    server: "CheckingServer", host: str, port: int
) -> asyncio.AbstractServer:
    """Bind the telemetry HTTP listener; returns the asyncio server.

    The caller owns the returned listener's lifecycle (the checking
    server closes it during shutdown).
    """

    async def handler(reader, writer):
        await _http_session(server, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
