"""Tests for the pool and the undo-log transaction machinery."""

import pytest

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool, POOL_MAGIC
from repro.pmdk.tx import (
    TransactionError,
    iter_log_entries,
    recover_image,
)


def make_pool(session=None, faults=(), size=1 << 20):
    machine = PMMachine(size)
    runtime = PMRuntime(machine=machine, session=session)
    return PMPool(runtime, log_capacity=8 * 1024, tx_faults=faults)


class TestPool:
    def test_format_writes_magic(self):
        pool = make_pool()
        assert pool.runtime.load_u64(pool.layout.base) == POOL_MAGIC

    def test_open_existing(self):
        pool = make_pool()
        pool.write_root(0, 0x1234)
        reopened = PMPool(
            pool.runtime, log_capacity=8 * 1024, create=False
        )
        assert reopened.read_root(0) == 0x1234

    def test_open_unformatted_rejected(self):
        machine = PMMachine(1 << 20)
        runtime = PMRuntime(machine=machine)
        with pytest.raises(ValueError):
            PMPool(runtime, create=False)

    def test_root_slots(self):
        pool = make_pool()
        pool.write_root(3, 42)
        assert pool.read_root(3) == 42
        assert pool.read_root(0) == 0

    def test_root_slot_bounds(self):
        pool = make_pool()
        with pytest.raises(IndexError):
            pool.root_slot_addr(pool.layout.root_size // 8)

    def test_alloc_zeroes_by_default(self):
        pool = make_pool()
        addr = pool.alloc(64)
        assert pool.runtime.load(addr, 64) == b"\0" * 64

    def test_too_small_pool_rejected(self):
        machine = PMMachine(4096)
        with pytest.raises(ValueError):
            PMPool(PMRuntime(machine=machine), log_capacity=64 * 1024)

    def test_pool_excludes_log_region_from_session(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        pool = make_pool(session=session)
        # A raw write into the log region is invisible to checking.
        pool.runtime.store_u64(pool.layout.log_base, 7)
        session.is_persist(pool.layout.log_base, 8)
        result = session.exit()
        assert result.clean


class TestTransactions:
    def test_commit_persists_update(self):
        pool = make_pool()
        addr = pool.alloc(8)
        pool.runtime.store_u64(addr, 1)
        pool.runtime.persist(addr, 8)
        with pool.tx.transaction() as tx:
            tx.add(addr, 8)
            pool.runtime.store_u64(addr, 2)
        assert pool.runtime.machine.durable.read_u64(addr) == 2

    def test_abort_on_exception_rolls_back(self):
        pool = make_pool()
        addr = pool.alloc(8)
        pool.runtime.store_u64(addr, 1)
        pool.runtime.persist(addr, 8)
        with pytest.raises(RuntimeError):
            with pool.tx.transaction() as tx:
                tx.add(addr, 8)
                pool.runtime.store_u64(addr, 99)
                raise RuntimeError("boom")
        assert pool.runtime.load_u64(addr) == 1
        assert not pool.tx.active

    def test_abort_frees_tx_allocations(self):
        pool = make_pool()
        before = pool.arena.allocated_bytes
        with pytest.raises(RuntimeError):
            with pool.tx.transaction():
                pool.alloc(128)
                raise RuntimeError("boom")
        assert pool.arena.allocated_bytes == before

    def test_nested_transactions_flatten(self):
        pool = make_pool()
        addr = pool.alloc(8)
        pool.runtime.persist(addr, 8)
        tx = pool.tx
        tx.begin()
        tx.add(addr, 8)
        pool.runtime.store_u64(addr, 5)
        tx.begin()  # nested
        tx.add(addr + 0, 8)  # same range: add_once not used, new entry
        tx.commit()  # inner end: nothing durable yet
        assert pool.runtime.machine.durable.read_u64(addr) == 0
        tx.commit()  # outermost end: durable now
        assert pool.runtime.machine.durable.read_u64(addr) == 5

    def test_add_outside_tx_rejected(self):
        pool = make_pool()
        with pytest.raises(TransactionError):
            pool.tx.add(pool.layout.heap_base, 8)

    def test_commit_without_begin_rejected(self):
        pool = make_pool()
        with pytest.raises(TransactionError):
            pool.tx.commit()

    def test_log_overflow_rejected(self):
        pool = make_pool()
        addr = pool.alloc(4096)
        with pool.tx.transaction() as tx:
            with pytest.raises(TransactionError):
                for _ in range(10):
                    tx.add(addr, 4096)

    def test_add_once_skips_covered_range(self):
        pool = make_pool()
        addr = pool.alloc(16)
        with pool.tx.transaction() as tx:
            tx.add_once(addr, 16)
            entries_before = len(tx._entries)
            tx.add_once(addr, 8)  # fully covered
            assert len(tx._entries) == entries_before
            tx.add_once(addr + 8, 16)  # half covered: one gap entry
            assert len(tx._entries) == entries_before + 1

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            make_pool(faults=("no-such-fault",))


class TestRecovery:
    def _mid_tx_machine(self):
        pool = make_pool()
        addr = pool.alloc(8)
        pool.runtime.store_u64(addr, 1)
        pool.runtime.persist(addr, 8)
        pool.tx.begin()
        pool.tx.add(addr, 8)
        pool.runtime.store_u64(addr, 2)
        return pool, addr

    def test_every_mid_tx_crash_recovers_old_value(self):
        pool, addr = self._mid_tx_machine()
        enum = CrashEnumerator(pool.runtime.machine)
        for image in enum.iter_images(limit=4096):
            recover_image(image, pool.layout)
            assert image.read_u64(addr) == 1

    def test_every_post_commit_crash_keeps_new_value(self):
        pool, addr = self._mid_tx_machine()
        pool.tx.commit()
        enum = CrashEnumerator(pool.runtime.machine)
        for image in enum.iter_images(limit=4096):
            recover_image(image, pool.layout)
            assert image.read_u64(addr) == 2

    def test_faulty_log_flush_breaks_recovery_somewhere(self):
        """With log-no-flush injected, at least one crash state recovers
        inconsistently -- the fault is real, not just a PMTest artifact.

        The object spans multiple cache lines: for a single-line object
        the flush of the valid flag would drag the rest of the entry's
        line to PM anyway (line granularity), masking the bug.
        """
        pool = make_pool(faults=("log-no-flush", "log-no-fence"))
        old = b"\x11" * 128
        addr = pool.alloc(128)
        pool.runtime.store(addr, old)
        pool.runtime.persist(addr, 128)
        pool.tx.begin()
        pool.tx.add(addr, 128)
        pool.runtime.store(addr, b"\x22" * 128)
        pool.runtime.clwb(addr, 128)
        pool.runtime.sfence()  # the new value is durable, the log maybe not
        enum = CrashEnumerator(pool.runtime.machine)
        recovered = set()
        for image in enum.iter_images(limit=1 << 14):
            recover_image(image, pool.layout)
            recovered.add(image.read(addr, 128))
        # Consistency demands every recovery yield the old value; the
        # unflushed log makes some state roll back to garbage.
        assert any(data != old for data in recovered)

    def test_sound_log_always_recovers_multiline_object(self):
        """Control for the test above: without faults, every crash state
        of the same multi-line update recovers the old value."""
        pool = make_pool()
        old = b"\x11" * 128
        addr = pool.alloc(128)
        pool.runtime.store(addr, old)
        pool.runtime.persist(addr, 128)
        pool.tx.begin()
        pool.tx.add(addr, 128)
        pool.runtime.store(addr, b"\x22" * 128)
        pool.runtime.clwb(addr, 128)
        pool.runtime.sfence()
        enum = CrashEnumerator(pool.runtime.machine)
        for image in enum.iter_images(limit=1 << 14):
            recover_image(image, pool.layout)
            assert image.read(addr, 128) == old

    def test_iter_log_entries_sees_valid_prefix(self):
        pool, addr = self._mid_tx_machine()
        image = pool.runtime.machine.volatile.snapshot()
        entries = list(iter_log_entries(image, pool.layout))
        assert len(entries) == 1
        _, target, size, old = entries[0]
        assert target == addr and size == 8
        assert int.from_bytes(old, "little") == 1

    def test_recovery_idempotent(self):
        pool, addr = self._mid_tx_machine()
        image = pool.runtime.machine.volatile.snapshot()
        recover_image(image, pool.layout)
        first = bytes(image.data)
        recover_image(image, pool.layout)
        assert bytes(image.data) == first


class TestTxChecking:
    def test_clean_transaction_passes_checkers(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        pool = make_pool(session=session)
        addr = pool.alloc(8)  # alloc persists its zero-fill
        session.send_trace()
        session.tx_check_start()
        with pool.tx.transaction() as tx:
            tx.add(addr, 8)
            pool.runtime.store_u64(addr, 3)
        session.tx_check_end()
        assert session.exit().clean

    def test_commit_no_flush_fault_detected(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        pool = make_pool(session=session, faults=("commit-no-flush",))
        addr = pool.alloc(8)
        session.send_trace()
        session.tx_check_start()
        with pool.tx.transaction() as tx:
            tx.add(addr, 8)
            pool.runtime.store_u64(addr, 3)
        session.tx_check_end()
        result = session.exit()
        assert result.count(ReportCode.TX_NOT_PERSISTED) >= 1

    def test_commit_no_fence_fault_detected(self):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        pool = make_pool(session=session, faults=("commit-no-fence",))
        addr = pool.alloc(8)
        session.send_trace()
        session.tx_check_start()
        with pool.tx.transaction() as tx:
            tx.add(addr, 8)
            pool.runtime.store_u64(addr, 3)
        session.tx_check_end()
        result = session.exit()
        assert result.count(ReportCode.TX_NOT_PERSISTED) >= 1
