"""Table 5: the synthetic-bug corpus — 42 bugs, all detected.

Reproduces the paper's validation matrix: for every bug class the
number of cases and the checkers used, with PMTest detecting all of
them ("PMTest reported all the synthetic bugs we introduced").
"""

import pytest

from repro.bugs import SYNTHETIC_BUGS, run_bug_case
from repro.bugs.registry import EXPECTED_COUNTS, bugs_by_category


def test_table5_corpus(benchmark, capsys):
    outcomes = {}

    def run_corpus():
        outcomes.clear()
        for case in SYNTHETIC_BUGS:
            outcomes[case.bug_id] = run_bug_case(case, scale=20)

    benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    grouped = bugs_by_category()
    with capsys.disabled():
        print("\n--- Table 5 reproduction: synthetic bugs ---")
        print(f"{'Bug type':16s} {'#Cases':>7s} {'#Detected':>10s}")
        for category, expected_count in EXPECTED_COUNTS.items():
            cases = grouped[category]
            detected = sum(
                1 for case in cases if outcomes[case.bug_id].detected
            )
            print(f"{category:16s} {len(cases):7d} {detected:10d}")
        total = len(SYNTHETIC_BUGS)
        total_detected = sum(1 for o in outcomes.values() if o.detected)
        print(f"{'total':16s} {total:7d} {total_detected:10d}")

    missed = [o for o in outcomes.values() if not o.detected]
    assert not missed, [str(o) for o in missed]
