"""Overload behaviour and chaos differentials for the daemon.

The acceptance story: under sustained submission beyond the admission
budget the daemon sheds/queues per policy, keeps admitted-but-unchecked
bytes bounded, and never returns a wrong verdict — and a chaos-killed
session leaves the server healthy while surviving sessions' verdicts
stay byte-identical to library mode across the backend x transport
matrix.
"""

import time

import pytest

from repro.core.faults import plan_from_seed
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.recovery import RecoveryKind
from repro.daemon import (
    AdmissionPolicy,
    CheckingClient,
    DaemonError,
    start_in_thread,
)

from tests.daemon.conftest import library_verdict, make_traces, verdict_key


class TestOverload:
    def test_overload_sheds_and_stays_correct(self, uds_path):
        """Submission far beyond the tenant's admission rate: frames
        shed with retry-after, the inflight high-water stays bounded,
        and the final verdict is byte-identical to library mode."""
        traces = make_traces(40)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        registry = MetricsRegistry(MetricsLevel.FULL)
        limit = 2048
        policy = AdmissionPolicy(
            max_inflight_bytes=limit,
            # the client can produce frames orders of magnitude faster
            # than this sustained rate: guaranteed overload
            tenant_rate_bytes=4096,
            tenant_burst_bytes=256,
            queue_timeout=0.02,
            retry_after_ms=5,
            max_sheds=1000,
            checkpoint_bytes=512,
        )
        with start_in_thread(
            uds=uds_path, workers=0, policy=policy, metrics=registry
        ) as handle:
            client = CheckingClient(
                f"unix://{uds_path}", batch_size=4, deadline=120
            )
            for trace in traces:
                client.submit(trace)
            result = client.close()
            admission = handle.server.admission
            assert verdict_key(result) == expected
            # overload was real and handled by shedding, not buffering
            assert client.sheds_seen > 0
            assert admission.frames_shed == client.sheds_seen
            assert admission.frames_admitted == 10  # 40 traces / batch 4
            assert handle.server.traces_accepted == 40
            shed_events = [
                e for e in admission.events if e.kind is RecoveryKind.SHED
            ]
            assert len(shed_events) == admission.frames_shed
            snapshot = handle.server.metrics_snapshot()
        # the RSS guardrail held: admitted-but-unchecked bytes never
        # exceeded the configured budget (frames here are < limit, so
        # the debt carve-out for oversized frames cannot kick in)
        high_water = snapshot.gauges().get("daemon.inflight_bytes", 0)
        assert 0 < high_water <= limit
        assert snapshot.counter_value("daemon.frames_shed") == len(shed_events)

    def test_two_tenants_one_noisy(self, uds_path):
        """A rate-limited noisy tenant sheds while a quiet tenant on the
        same daemon is untouched; both verdicts stay correct."""
        noisy_traces = make_traces(16, offset=0)
        quiet_traces = make_traces(4, offset=200)
        expected_noisy = verdict_key(
            library_verdict(noisy_traces, num_workers=0)
        )
        expected_quiet = verdict_key(
            library_verdict(quiet_traces, num_workers=0)
        )
        policy = AdmissionPolicy(
            tenant_rate_bytes=4096,
            tenant_burst_bytes=512,
            retry_after_ms=5,
            max_sheds=1000,
        )
        with start_in_thread(
            uds=uds_path, workers=0, policy=policy
        ) as handle:
            noisy = CheckingClient(
                f"unix://{uds_path}", tenant="noisy", batch_size=2,
                deadline=120,
            )
            quiet = CheckingClient(
                f"unix://{uds_path}", tenant="quiet", batch_size=2,
                deadline=120,
            )
            for trace in noisy_traces:
                noisy.submit(trace)
                noisy.flush()
            for trace in quiet_traces:
                quiet.submit(trace)
                quiet.flush()
            assert verdict_key(noisy.close()) == expected_noisy
            assert verdict_key(quiet.close()) == expected_quiet
            assert noisy.sheds_seen > 0
            assert quiet.sheds_seen == 0

    def test_forced_shed_chaos_is_transparent(self, uds_path):
        """A seeded daemon.shed fault forces sheds; the client retries
        and the verdict is unchanged."""
        traces = make_traces(10)
        expected = verdict_key(library_verdict(traces, num_workers=0))
        faults = plan_from_seed(11, points=["daemon.shed"])
        with start_in_thread(
            uds=uds_path, workers=0, faults=faults
        ) as handle:
            client = CheckingClient(
                f"unix://{uds_path}", batch_size=2, deadline=60
            )
            for trace in traces:
                client.submit(trace)
            result = client.close()
            forced = [
                e
                for e in handle.server.admission.events
                if e.kind is RecoveryKind.SHED and "chaos" in str(e)
            ]
        assert verdict_key(result) == expected
        assert client.sheds_seen == len(forced)


# One spawned worker per pool keeps the process rows fast on small hosts.
MATRIX = [
    pytest.param({"workers": 0}, id="inline"),
    pytest.param({"workers": 2, "backend": "thread"}, id="thread"),
    pytest.param(
        {"workers": 1, "backend": "process", "transport": "queue"},
        id="process-queue",
    ),
    pytest.param(
        {"workers": 1, "backend": "process", "transport": "shm"},
        id="process-shm",
    ),
]


class TestChaosSessionKill:
    """Satellite: a chaos-seeded mid-stream session kill must leave the
    server drainable and not perturb other sessions' verdicts."""

    @pytest.mark.parametrize("config", MATRIX)
    def test_killed_session_leaves_survivors_identical(
        self, uds_path, config
    ):
        # the seeded plan crashes one session at its 2nd-4th frame
        faults = plan_from_seed(3, points=["daemon.session_decode"])
        survivor_traces = make_traces(8, offset=50)
        pool_kwargs = {
            "num_workers": config.get("workers", 0),
            "backend": config.get("backend"),
            "transport": config.get("transport"),
        }
        expected = verdict_key(
            library_verdict(survivor_traces, **pool_kwargs)
        )
        with start_in_thread(
            uds=uds_path, faults=faults, **config
        ) as handle:
            victim = CheckingClient(
                f"unix://{uds_path}", tenant="victim", batch_size=1,
                deadline=60,
            )
            with pytest.raises(DaemonError):
                for trace in make_traces(8, offset=0):
                    victim.submit(trace)
                victim.close()
            victim.abort()
            deadline = time.monotonic() + 10.0
            while (
                handle.server.active_sessions
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.server.sessions_aborted == 1
            aborted = [
                e
                for e in handle.server.events
                if e.kind is RecoveryKind.SESSION_ABORTED
            ]
            assert len(aborted) == 1
            assert "chaos" in str(aborted[0])
            # the server is healthy: a fresh session checks the same
            # workload byte-identically to library mode
            survivor = CheckingClient(
                f"unix://{uds_path}", tenant="survivor", batch_size=3,
                deadline=60,
            )
            for trace in survivor_traces:
                survivor.submit(trace)
            result = survivor.close()
        assert verdict_key(result) == expected

    def test_killed_session_releases_inflight_budget(self, uds_path):
        """Bytes admitted by the killed session are returned to the
        budget, so later sessions are not starved."""
        faults = plan_from_seed(3, points=["daemon.session_decode"])
        policy = AdmissionPolicy(
            max_inflight_bytes=16 * 1024, checkpoint_bytes=1024 * 1024
        )
        with start_in_thread(
            uds=uds_path, workers=0, faults=faults, policy=policy
        ) as handle:
            victim = CheckingClient(
                f"unix://{uds_path}", batch_size=1, deadline=60
            )
            with pytest.raises(DaemonError):
                for trace in make_traces(8):
                    victim.submit(trace)
                victim.close()
            victim.abort()
            deadline = time.monotonic() + 10.0
            while (
                handle.server.active_sessions
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.server.admission.budget.used == 0
