"""Stream framing for PMTB messages over sockets.

A PMTB message (:mod:`repro.core.traceio`) is self-describing but not
self-delimiting, so the daemon wraps each one in a 4-byte big-endian
length prefix::

    frame := u32 length | PMTB message bytes

The length covers the message only (not the prefix).  Frames larger
than the negotiated ceiling are a protocol error — the reader refuses
to allocate for them, which is the first line of defence against both
corrupt peers and memory-amplification abuse.

Both a synchronous socket API (the client) and an asyncio streams API
(the server) are provided; they are wire-compatible by construction
because both call the same :func:`frame_bytes`.

Telemetry rides inside the framed messages, not the framing: the
``hello``/``drain``/``verdict`` messages carry optional trailing span
contexts (and the verdict a registry snapshot) so a client's trace
timeline parents the server's, and the ``stats_sub``/``stats`` and
``flight_req``/``flight`` kinds stream live daemon stats and the
flight-recorder ring over the same session socket.  Old peers simply
never send the new kinds and ignore trailing fields, so framing and
compatibility are untouched.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional

FRAME_HEADER = struct.Struct(">I")

#: Default per-frame size ceiling (8 MiB).  Large enough for any sane
#: trace batch, small enough that a garbage length cannot OOM the peer.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024


class ProtocolError(Exception):
    """The byte stream violated the framing contract."""


def frame_bytes(payload: bytes) -> bytes:
    """One wire frame for ``payload`` (header + message, ready to send)."""
    return FRAME_HEADER.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# Synchronous sockets (client side)
# ----------------------------------------------------------------------
def write_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(frame_bytes(payload))


def _recv_exact(
    sock: socket.socket, n: int, what: str, allow_eof: bool = False
) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid {what} "
                f"({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[bytes]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, FRAME_HEADER.size, "frame header",
                         allow_eof=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte ceiling"
        )
    return _recv_exact(sock, length, "frame body")


# ----------------------------------------------------------------------
# Asyncio streams (server side)
# ----------------------------------------------------------------------
async def aread_frame(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[bytes]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid frame header "
            f"({len(exc.partial)}/{FRAME_HEADER.size} bytes read)"
        ) from None
    (length,) = FRAME_HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte ceiling"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid frame body "
            f"({len(exc.partial)}/{length} bytes read)"
        ) from None
