"""Tests for the offline trace-checking CLI."""

import json

import pytest

from repro.cli import main
from repro.core.api import PMTestSession
from repro.core.traceio import TraceRecorder, dump_traces


def record_buggy_trace(path):
    recorder = TraceRecorder()
    session = PMTestSession(workers=0, sink=recorder)
    session.thread_init()
    session.start()
    session.write(0x10, 8)
    session.clwb(0x10, 8)
    session.sfence()
    session.write(0x50, 8)  # never flushed
    session.is_persist(0x10, 8)
    session.is_persist(0x50, 8)
    session.exit()
    dump_traces(recorder.traces, path)


def record_clean_hops_trace(path):
    recorder = TraceRecorder()
    session = PMTestSession(workers=0, sink=recorder)
    session.thread_init()
    session.start()
    session.write(0x10, 8)
    session.ofence()
    session.write(0x50, 8)
    session.dfence()
    session.is_ordered_before(0x10, 8, 0x50, 8)
    session.exit()
    dump_traces(recorder.traces, path)


class TestCheckCommand:
    def test_failing_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "1 FAIL" in out
        assert "not-persisted" in out

    def test_quiet_suppresses_reports(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        main(["check", str(path), "--quiet"])
        out = capsys.readouterr().out
        assert "not-persisted" not in out
        assert "FAIL" in out

    def test_clean_trace_exits_0(self, tmp_path):
        path = tmp_path / "hops.pmtrace"
        record_clean_hops_trace(path)
        assert main(["check", str(path), "--model", "hops"]) == 0

    def test_model_selection_matters(self, tmp_path):
        # The same x86 trace under eADR: the unflushed write IS durable
        # after its fence... but there is no fence after it, so it still
        # fails; the flushed one is fine and additionally warned about.
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--model", "eadr"]) == 1

    def test_workers_mode(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--workers", "2"]) == 1

    def test_max_reports_truncates(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        main(["check", str(path), "--max-reports", "0"])
        out = capsys.readouterr().out
        assert "more" in out

    def test_missing_file_exits_2(self, capsys):
        assert main(["check", "/nonexistent.pmtrace"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_bad_format_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.pmtrace"
        path.write_text("not a trace\n")
        assert main(["check", str(path)]) == 2


class TestResilienceFlags:
    def test_check_timeout_and_retries_accepted(self, tmp_path):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main([
            "check", str(path), "--workers", "2", "--backend", "thread",
            "--check-timeout", "30", "--max-retries", "3",
        ]) == 1

    def test_no_fallback_accepted(self, tmp_path):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--no-fallback"]) == 1

    def test_negative_max_retries_exits_2(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_chaos_seed_does_not_change_the_verdict(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main([
            "check", str(path), "--workers", "2", "--backend", "thread",
            "--chaos-seed", "3", "--check-timeout", "30",
        ]) == 1
        out = capsys.readouterr().out
        assert "1 FAIL" in out


class TestStatsCommand:
    def test_stats_output(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "traces:  1" in out
        assert "WRITE" in out
        assert "SFENCE" in out

    def test_stats_missing_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent.pmtrace"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_metrics_json_and_stats_breakdown(self, tmp_path, capsys):
        trace = tmp_path / "run.pmtrace"
        metrics = tmp_path / "metrics.json"
        record_buggy_trace(trace)
        assert main(
            ["check", str(trace), "--metrics-json", str(metrics), "--quiet"]
        ) == 1
        payload = json.loads(metrics.read_text())
        assert payload["format"] == "pmtest-metrics"
        assert payload["level"] == "full"  # forced even with metrics off
        assert payload["counters"]["engine.traces"] == 1
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        for stage in ("trace ingest", "shadow update",
                      "checker validate", "drain"):
            assert stage in out
        assert "metrics level: full" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path):
        trace = tmp_path / "run.pmtrace"
        out = tmp_path / "spans.json"
        record_buggy_trace(trace)
        main(["check", str(trace), "--trace-out", str(out), "--quiet"])
        events = json.loads(out.read_text())
        names = [e["name"] for e in events]
        assert "submit" in names
        assert "drain" in names

    def test_metrics_json_with_workers(self, tmp_path):
        trace = tmp_path / "run.pmtrace"
        metrics = tmp_path / "metrics.json"
        record_buggy_trace(trace)
        assert main([
            "check", str(trace), "--workers", "2", "--backend", "thread",
            "--metrics-json", str(metrics), "--quiet",
        ]) == 1
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["engine.traces"] == 1

    def test_metrics_json_unwritable_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "run.pmtrace"
        record_buggy_trace(trace)
        bad = tmp_path / "no" / "such" / "dir" / "m.json"
        assert main(
            ["check", str(trace), "--metrics-json", str(bad), "--quiet"]
        ) == 2
        assert "cannot write" in capsys.readouterr().err


class TestServeAndSubmitCommands:
    """The daemon subcommands: serve a UDS socket, submit a dump."""

    @pytest.fixture
    def serve_proc(self, tmp_path):
        """A `repro serve` subprocess on a UDS, killed at teardown."""
        import os
        import subprocess
        import sys
        import time

        import repro

        uds = os.path.join(str(tmp_path), "d.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--uds", uds,
             "--workers", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + 20.0
        while not os.path.exists(uds):
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate(timeout=5)
                raise RuntimeError(f"serve failed to start: {out} {err}")
            time.sleep(0.05)
        try:
            yield proc, uds
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    def test_submit_matches_check_and_sigterm_drains(
        self, tmp_path, capsys, serve_proc
    ):
        import signal

        proc, uds = serve_proc
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main(["check", str(path), "--quiet"]) == 1
        check_out = capsys.readouterr().out
        assert main([
            "submit", str(path), "--connect", f"unix://{uds}",
            "--deadline", "60",
        ]) == 1
        submit_out = capsys.readouterr().out
        # same verdict through the daemon as in-process
        assert submit_out.split(": ", 1)[1].splitlines()[0] == \
            check_out.split(": ", 1)[1].splitlines()[0]
        assert submit_out.startswith("daemon: ")
        assert "not-persisted" in submit_out
        # SIGTERM: graceful drain, summary line, exit 0
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "drained: 1 session(s)" in out

    def test_submit_to_missing_daemon_exits_2(self, tmp_path, capsys):
        path = tmp_path / "run.pmtrace"
        record_buggy_trace(path)
        assert main([
            "submit", str(path),
            "--connect", str(tmp_path / "nowhere.sock"),
            "--deadline", "2",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_requires_a_listener(self, capsys):
        assert main(["serve"]) == 2
        assert "--uds and/or --host" in capsys.readouterr().err

    def test_serve_rejects_unknown_chaos_point(self, capsys):
        assert main([
            "serve", "--uds", "/tmp/x.sock",
            "--chaos-seed", "3", "--chaos-points", "bogus.point",
        ]) == 2
        assert "unknown fault point" in capsys.readouterr().err

    def test_serve_chaos_points_require_seed(self, capsys):
        assert main([
            "serve", "--uds", "/tmp/x.sock", "--chaos-points", "daemon.shed",
        ]) == 2
        assert "--chaos-seed" in capsys.readouterr().err
