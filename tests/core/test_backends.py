"""Tests for the pluggable checking backends (inline/thread/process).

The contract under test: every backend checks every submitted trace,
aggregates results in **submission order**, and therefore produces
bit-identical :class:`TestResult`s for the same trace stream.  The
heavyweight equivalence test replays traces recorded from the entire
Table 5/6 bug corpus through all three backends.
"""

import pytest

from repro.bugs import HISTORICAL_BUGS, SYNTHETIC_BUGS, run_bug_case
from repro.core.backends import (
    BACKEND_NAMES,
    CheckingBackend,
    CheckingFailed,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from repro.core.events import Event, Op, Trace
from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule
from repro.core.reports import ReportCode
from repro.core.traceio import TraceRecorder, encode_result
from repro.core.workers import WorkerPool


def bad_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, 0, 8))
    trace.append(Event(Op.CHECK_PERSIST, 0, 8))
    return trace


def good_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, 0, 8))
    trace.append(Event(Op.CLWB, 0, 8))
    trace.append(Event(Op.SFENCE))
    trace.append(Event(Op.CHECK_PERSIST, 0, 8))
    return trace


def malformed_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.TX_END))  # TX_END without TX_BEGIN raises
    return trace


@pytest.fixture(params=BACKEND_NAMES)
def backend_pool(request):
    pool = WorkerPool(num_workers=2, backend=request.param, batch_size=3)
    yield pool
    pool.close()


class TestBackendContract:
    def test_checks_every_trace(self, backend_pool):
        for i in range(10):
            backend_pool.submit(bad_trace(i))
        result = backend_pool.drain()
        assert result.traces_checked == 10
        assert result.count(ReportCode.NOT_PERSISTED) == 10

    def test_reports_in_submission_order(self, backend_pool):
        for i in range(17):  # not a multiple of batch_size or workers
            backend_pool.submit(bad_trace(i))
        result = backend_pool.drain()
        assert [r.trace_id for r in result.reports] == list(range(17))

    def test_drain_is_cumulative_snapshot(self, backend_pool):
        backend_pool.submit(bad_trace(0))
        first = backend_pool.drain()
        backend_pool.submit(bad_trace(1))
        second = backend_pool.drain()
        assert first.traces_checked == 1
        assert second.traces_checked == 2

    def test_dispatched_counts_submissions(self, backend_pool):
        for i in range(5):
            backend_pool.submit(good_trace(i))
        assert backend_pool.dispatched == 5

    def test_protocol_conformance(self, backend_pool):
        assert isinstance(backend_pool._backend, CheckingBackend)


class TestBackendSelection:
    def test_default_zero_workers_is_inline(self):
        pool = WorkerPool(num_workers=0)
        assert pool.backend_name == "inline"
        assert pool.synchronous
        pool.close()

    def test_default_with_workers_is_thread(self, monkeypatch):
        monkeypatch.delenv("PMTEST_BACKEND", raising=False)
        pool = WorkerPool(num_workers=2)
        assert pool.backend_name == "thread"
        assert not pool.synchronous
        pool.close()

    def test_explicit_backends(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        thread = make_backend("thread", num_workers=2)
        assert isinstance(thread, ThreadBackend)
        thread.close()
        process = make_backend("process", num_workers=1)
        assert isinstance(process, ProcessBackend)
        process.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("gpu")

    def test_process_clamps_zero_workers(self):
        pool = WorkerPool(num_workers=0, backend="process")
        assert pool.backend_name == "process"
        assert pool.num_workers == 1
        pool.close()

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(num_workers=1, batch_size=0)


class TestProcessBackend:
    def test_partial_batch_flushed_on_drain(self):
        with WorkerPool(num_workers=2, backend="process", batch_size=64) as pool:
            for i in range(5):  # far below one batch
                pool.submit(bad_trace(i))
            result = pool.drain()
        assert result.traces_checked == 5

    def test_worker_error_surfaces_at_drain(self):
        pool = WorkerPool(num_workers=1, backend="process", batch_size=2)
        pool.submit(good_trace(0))
        pool.submit(malformed_trace(1))
        with pytest.raises(CheckingFailed, match="submit #1"):
            pool.drain()
        with pytest.raises(CheckingFailed):  # close still stops workers
            pool.close()

    def test_worker_counts_cover_all_batches(self):
        with WorkerPool(num_workers=2, backend="process", batch_size=1) as pool:
            for i in range(8):
                pool.submit(good_trace(i))
            pool.drain()
            assert sum(pool.worker_trace_counts()) == 8


class TestThreadBackendErrors:
    def test_worker_error_surfaces_at_drain(self):
        pool = WorkerPool(num_workers=1, backend="thread")
        pool.submit(malformed_trace(0))
        with pytest.raises(CheckingFailed, match="submit #0"):
            pool.drain()
        with pytest.raises(CheckingFailed):
            pool.close()
        # Satellite regression: the close outcome is cached, so further
        # closes replay the error instead of re-draining stopped workers.
        with pytest.raises(CheckingFailed):
            pool.close()


# ----------------------------------------------------------------------
# Fault matrix: injected infrastructure faults must not change verdicts
# ----------------------------------------------------------------------
def _inline_reference(traces):
    with WorkerPool(num_workers=0) as pool:
        for trace in traces:
            pool.submit(trace)
        return encode_result(pool.drain())


class TestFaultMatrix:
    """Worker killed mid-batch, slow worker under a watchdog, and the
    fallback chain engaging — each produces a TestResult bit-identical
    to the inline reference."""

    def _traces(self, n=10):
        return [bad_trace(i) if i % 2 else good_trace(i) for i in range(n)]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_killed_mid_batch(self, backend):
        traces = self._traces()
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.WORKER_BATCH,
                    FaultKind.CRASH,
                    at=0,
                    worker=0 if backend == "thread" else None,
                )
            ]
        )
        pool = WorkerPool(
            num_workers=2 if backend == "thread" else 1,
            backend=backend,
            batch_size=2,
            check_timeout=10.0,
            faults=plan,
        )
        try:
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert encode_result(result) == _inline_reference(traces)
        assert any("respawned" in d for d in result.diagnostics)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_slow_worker_does_not_trip_watchdog(self, backend):
        traces = self._traces()
        plan = FaultPlan(
            rules=[
                FaultRule(
                    FaultPoint.WORKER_BATCH,
                    FaultKind.SLOW,
                    at=0,
                    count=2,
                    delay=0.02,
                )
            ]
        )
        pool = WorkerPool(
            num_workers=2,
            backend=backend,
            batch_size=2,
            check_timeout=10.0,
            faults=plan,
        )
        try:
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert encode_result(result) == _inline_reference(traces)
        # Slowness within the watchdog budget is not a recovery event.
        assert not any("watchdog" in d for d in result.diagnostics)

    def test_fallback_chain_engaged(self):
        traces = self._traces()
        plan = FaultPlan(rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL)])
        with WorkerPool(num_workers=2, backend="process", faults=plan) as pool:
            assert pool.backend_name == "thread"
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
        assert encode_result(result) == _inline_reference(traces)
        assert any("unavailable at spawn" in d for d in result.diagnostics)


# ----------------------------------------------------------------------
# Cross-backend equivalence over the whole bug corpus (Tables 5 and 6)
# ----------------------------------------------------------------------
def _record_corpus_traces():
    traces = []
    for case in SYNTHETIC_BUGS + HISTORICAL_BUGS:
        recorder = TraceRecorder()
        run_bug_case(case, scale=8, sink=recorder)
        traces.extend(recorder.traces)
    return traces


def test_backends_bit_identical_on_bug_corpus():
    """inline, thread and process agree bit-for-bit on Tables 5/6."""
    traces = _record_corpus_traces()
    assert len(traces) > 100  # the corpus is not trivially empty
    encoded = {}
    for backend in BACKEND_NAMES:
        workers = 0 if backend == "inline" else 2
        with WorkerPool(
            num_workers=workers, backend=backend, batch_size=5
        ) as pool:
            for trace in traces:
                pool.submit(trace)
            encoded[backend] = encode_result(pool.drain())
    assert encoded["inline"] == encoded["thread"]
    assert encoded["inline"] == encoded["process"]
    # And the corpus actually exercises the checkers.
    reports, traces_checked, _, checkers = encoded["inline"]
    assert traces_checked == len(traces)
    assert reports and checkers
