#!/usr/bin/env python3
"""Validate PMTest against exhaustive crash enumeration (Yat-style).

PMTest *infers* persist orderings from intervals instead of enumerating
them — this example closes the loop on the simulated machine, which the
paper's authors could not do cheaply on real hardware:

1. run the low-level atomic hash map, clean and with an injected
   ordering bug, under PMTest;
2. independently enumerate every PM image a crash could leave behind
   and check the structure's consistency invariant in each;
3. confirm the two methods agree: PMTest passes <=> every crash state
   is consistent — and see how many states exhaustive checking needed
   versus PMTest's single pass.

Run:  python examples/crash_ground_truth.py
"""

import random

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.structures import AtomicHashMap
from repro.structures.hashmap_atomic import validate_image

N_INSERTS = 6
STATE_BUDGET = 1 << 14


def run(faults) -> None:
    # --- Method 1: PMTest's interval inference -----------------------
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    machine = PMMachine(1 << 20)
    runtime = PMRuntime(machine=machine, session=session)
    pool = PMPool(runtime, log_capacity=4096)
    structure = AtomicHashMap(pool, value_size=16, faults=faults,
                              nbuckets=4)
    session.send_trace()
    root_addr = pool.root_slot_addr(0)

    events = 0
    for key in range(N_INSERTS):
        structure.insert(key)
        events += session.pending_events
        session.send_trace()
    pmtest_verdict = session.exit().passed

    # --- Method 2: exhaustive crash-state checking -------------------
    # Crash right before the last insert's final fence: rebuild the
    # same history and stop inside the insert's window.
    machine2 = PMMachine(1 << 20)
    runtime2 = PMRuntime(machine=machine2)
    pool2 = PMPool(runtime2, log_capacity=4096)
    structure2 = AtomicHashMap(pool2, value_size=16, faults=faults,
                               nbuckets=4)
    for key in range(N_INSERTS):
        structure2.insert(key)
    enumerator = CrashEnumerator(machine2)
    count = enumerator.count()
    images = (
        enumerator.iter_images()
        if count <= STATE_BUDGET
        else enumerator.sample(random.Random(0), 256)
    )
    inconsistent = sum(
        0 if validate_image(img, img.read_u64(root_addr)) else 1
        for img in images
    )
    truth_verdict = inconsistent == 0

    label = ", ".join(faults) if faults else "clean protocol"
    print(f"--- {label}")
    print(f"    PMTest:          {'PASS' if pmtest_verdict else 'FAIL'} "
          f"(one pass over ~{events} trace events)")
    print(f"    crash truth:     {'PASS' if truth_verdict else 'FAIL'} "
          f"({count} reachable crash states, "
          f"{inconsistent} inconsistent)")
    agreement = pmtest_verdict == truth_verdict
    print(f"    methods agree:   {agreement}")
    print()
    assert agreement, "PMTest and ground truth disagree!"


if __name__ == "__main__":
    print(__doc__)
    run(())
    run(("no-entry-persist",))
