"""Figure 12: Memcached scalability vs program threads and PMTest workers.

Paper result: (a) with a single PMTest worker, slowdown grows with the
number of Memcached threads (more traces per unit time); (b) with four
Memcached threads, adding workers reduces the slowdown; (c) growing both
together keeps slowdown roughly flat, rising slightly from inter-thread
communication.

Caveat recorded in DESIGN.md Section 6: CPython's GIL prevents true
parallel checking, so the *worker* axis reproduces the dispatch
behaviour but not the full parallel speedup; the thread axis (more
client load per wall-second of tracked execution) reproduces cleanly.
"""

import pytest

from _harness import pedantic, prepare_memcached_threads, record, slowdown

THREADS = [1, 2, 4]
WORKERS = [1, 2, 4]


@pytest.mark.parametrize("threads", THREADS)
def test_fig12_baseline(benchmark, bench_rounds, threads):
    """Uninstrumented Memcached at each thread count (denominators)."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(threads, 0, with_pmtest=False),
    )
    record("fig12", (threads, 0, "none"), benchmark)


@pytest.mark.parametrize("threads", THREADS)
def test_fig12a_thread_sweep(benchmark, bench_rounds, threads):
    """(a) single PMTest worker, 1-4 Memcached threads."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(threads, 1),
    )
    record("fig12", (threads, 1, "pmtest"), benchmark)


@pytest.mark.parametrize("workers", [2, 4])
def test_fig12b_worker_sweep(benchmark, bench_rounds, workers):
    """(b) four Memcached threads, 2-4 PMTest workers (1 is in (a))."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(4, workers),
    )
    record("fig12", (4, workers, "pmtest"), benchmark)


@pytest.mark.parametrize("both", [2])
def test_fig12c_joint_sweep(benchmark, bench_rounds, both):
    """(c) threads and workers grown together (1,1 / 2,2 / 4,4; the
    endpoints already exist in (a) and (b))."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_memcached_threads(both, both),
    )
    record("fig12", (both, both, "pmtest"), benchmark)


def test_fig12_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    one_thread = slowdown("fig12", (1, 1, "pmtest"), (1, 0, "none"))
    four_threads = slowdown("fig12", (4, 1, "pmtest"), (4, 0, "none"))
    if one_thread is None or four_threads is None:
        pytest.skip("fig12 benchmarks did not run")
    # (a) more tracked program threads -> at least as much slowdown.
    assert four_threads > one_thread * 0.8, (one_thread, four_threads)
    # Everything stays a bounded overhead, not a blow-up.
    for threads in THREADS:
        ratio = slowdown("fig12", (threads, 1, "pmtest"),
                         (threads, 0, "none"))
        if ratio is not None:
            assert ratio < 30, ratio
