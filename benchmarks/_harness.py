"""Shared builders for the benchmark suite.

Every figure/table benchmark runs a workload in one of several *tool
configurations* over identical inputs:

``none``
    Uninstrumented baseline (the denominator of every slowdown).
``pmtest``
    PMTest attached: operations tracked, traces checked (synchronously,
    so timings are deterministic), transaction checkers where the paper
    uses them.
``pmtest-framework``
    PMTest tracking and engine, but no checkers placed — the
    "PMTest Framework" bar of Figure 10b.
``pmemcheck``
    The per-store baseline tool attached to the same runtime.

Workload construction (machine allocation, pool formatting) happens in
untimed ``prepare_*`` functions; only the ``execute`` closure they
return is measured.  Benchmarks are sized well below the paper's op
counts (the substrate is a Python simulator, not a C binary on
NVDIMMs); EXPERIMENTS.md records the scaling argument.  The quantities
compared — slowdown ratios — are dimensionless.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.pmemcheck import PmemcheckTool
from repro.core.api import PMTestSession
from repro.core.columns import ColumnarTrace
from repro.core.engine import CheckingEngine
from repro.core.engine_columnar import ColumnarCheckingEngine, make_engine
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.rules import X86Rules
from repro.core.traceio import (
    decode_message,
    decode_traces_binary,
    decode_traces_binary_columnar,
    encode_task_message,
    encode_trace,
    encode_traces_binary,
)
from repro.core.verdict_cache import VerdictCache
from repro.core.workers import DEFAULT_BATCH_SIZE, WorkerPool
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmfs.fs import PMFS
from repro.structures import ALL_STRUCTURES
from repro.workloads import (
    MemcachedServer,
    RedisServer,
    drive_fs,
    drive_kv,
    filebench_ops,
    memslap_ops,
    oltp_ops,
    redis_lru_ops,
    run_client_threads,
    ycsb_ops,
)

TOOLS = ("none", "pmtest", "pmemcheck")


def env_int(name: str, default: int) -> int:
    """Benchmark sizing knob: ``PMTEST_BENCH_SMOKE=1`` shrinks every
    workload to CI-smoke size; a specific ``name`` overrides further."""
    if name in os.environ:
        return int(os.environ[name])
    if os.environ.get("PMTEST_BENCH_SMOKE"):
        return max(default // 10, 2)
    return default

#: module-level result store: (figure, config) -> mean seconds
RESULTS: Dict[Tuple[str, Tuple], float] = {}

#: metrics registries captured per benchmark config (JSON form); only
#: populated when the run records metrics (PMTEST_METRICS=basic|full)
METRICS: Dict[Tuple[str, Tuple], dict] = {}

#: wire-codec measurement: codec name -> bytes per trace on the fig12
#: checking workload (populated by the transport ablation)
WIRE_BYTES: Dict[str, float] = {}

#: verdict-cache measurement: hit rate and coalesced-write count on the
#: repeated-trace workload (populated by the fig10c ablation)
VERDICT_CACHE: Dict[str, float] = {}

#: per-engine decode-vs-replay time split over the fig12 checking
#: workload's task batches (populated by the engine ablation); keyed by
#: engine name, each value carries totals plus per-batch timings
DECODE_REPLAY: Dict[str, dict] = {}

#: interleaved min-of-rounds engine comparison on the fig10a-shaped
#: micro workload: engine name -> best decode+check seconds
ENGINE_BEST: Dict[str, float] = {}

#: interleaved min-of-rounds shadow-plane comparison on the
#: interval-heavy micro workload: shadow name -> best check seconds
SHADOW_BEST: Dict[str, float] = {}

#: daemon load-generator measurement (fig12i): sustained traces/sec,
#: per-frame latency quantiles, and shed counts under 2x overload
DAEMON_LOAD: Dict[str, float] = {}

#: zero-copy ablation measurements (fig12j): shard-dispatch wire bytes
#: per configuration, proving arena descriptors are O(1) per shard
ZEROCOPY: Dict[str, float] = {}

Execute = Callable[[], None]


def record(figure: str, config: Tuple, benchmark) -> None:
    """Stash a benchmark's mean runtime for the figure report."""
    RESULTS[(figure, config)] = benchmark.stats.stats.mean


def record_metrics(figure: str, config: Tuple, source) -> None:
    """Stash ``source``'s metrics snapshot (a session/pool exposing
    ``metrics_snapshot``) for the JSON dump; no-op when metrics are off."""
    snapshot_fn = getattr(source, "metrics_snapshot", None)
    snapshot = snapshot_fn() if snapshot_fn is not None else None
    if snapshot is not None:
        METRICS[(figure, config)] = snapshot.to_dict()


def slowdown(figure: str, config: Tuple,
             baseline_config: Tuple) -> Optional[float]:
    """Tool-config runtime divided by the matching baseline runtime."""
    tool_time = RESULTS.get((figure, config))
    base_time = RESULTS.get((figure, baseline_config))
    if tool_time is None or base_time is None or base_time == 0:
        return None
    return tool_time / base_time


def pedantic(benchmark, rounds: int, make_execute: Callable[[], Execute]):
    """Run ``make_execute()`` (untimed setup) before each timed round."""

    def setup():
        return (make_execute(),), {}

    benchmark.pedantic(
        lambda execute: execute(), setup=setup, rounds=rounds, iterations=1
    )


# ----------------------------------------------------------------------
# Tool plumbing
# ----------------------------------------------------------------------
def make_runtime(tool: str, mem_size: int):
    """Returns ``(runtime, session, finisher)`` for a tool config."""
    machine = PMMachine(mem_size)
    if tool == "none":
        return PMRuntime(machine=machine), None, lambda: None
    if tool in ("pmtest", "pmtest-framework"):
        session = PMTestSession(workers=0)
        session.thread_init()
        session.start()
        runtime = PMRuntime(machine=machine, session=session)
        return runtime, session, session.exit
    if tool == "pmemcheck":
        checker = PmemcheckTool(track_findings=False)
        runtime = PMRuntime(machine=machine, observers=[checker])
        return runtime, None, checker.finish
    raise ValueError(f"unknown tool {tool!r}")


# ----------------------------------------------------------------------
# Figure 10: microbenchmarks
# ----------------------------------------------------------------------
def prepare_micro(
    structure: str,
    value_size: int,
    tool: str,
    n_ops: int = 100,
    mem_size: int = 16 << 20,
    capture_sites: bool = False,
    figure: Optional[str] = None,
    config: Optional[Tuple] = None,
) -> Execute:
    """Build one microbenchmark configuration; returns the timed body
    (``n_ops`` insertions, one transaction each, plus result drain).

    With ``figure``/``config`` given, the session's metrics registry is
    captured into :data:`METRICS` after the (untimed) drain, so a run
    under ``PMTEST_METRICS=full`` ships per-stage breakdowns alongside
    the timings in the benchmark JSON."""
    runtime, session, finish = make_runtime(tool, mem_size)
    runtime.capture_sites = capture_sites
    pool = PMPool(runtime, log_capacity=256 * 1024)
    instance = ALL_STRUCTURES[structure](pool, value_size=value_size)
    transactional = structure != "hashmap_atomic"
    wrap = tool == "pmtest" and transactional
    if session is not None:
        session.send_trace()

    def execute() -> None:
        for i in range(n_ops):
            if wrap:
                session.tx_check_start()
            instance.insert(i)
            if wrap:
                session.tx_check_end()
            if session is not None:
                session.send_trace()
        finish()
        if figure is not None and session is not None:
            record_metrics(figure, config, session)

    return execute


# ----------------------------------------------------------------------
# Figure 11: real workloads
# ----------------------------------------------------------------------
REAL_WORKLOADS = (
    "memcached+memslap",
    "memcached+ycsb",
    "redis+lru",
    "pmfs+oltp",
    "pmfs+filebench",
)


def prepare_real(workload: str, tool: str, scale: int = 300,
                 mem_size: int = 16 << 20) -> Execute:
    """Build one real-workload configuration (paper Table 4, scaled)."""
    runtime, session, finish = make_runtime(tool, mem_size)
    if workload.startswith("memcached"):
        pool = PMPool(runtime, log_capacity=256 * 1024)
        server = MemcachedServer(pool)
        ops = list(
            memslap_ops(scale, key_space=scale // 4)
            if workload.endswith("memslap")
            else ycsb_ops(scale, key_space=scale // 4)
        )

        def execute() -> None:
            drive_kv(server, ops, session=session, trace_every=10)
            finish()

    elif workload == "redis+lru":
        pool = PMPool(runtime, log_capacity=256 * 1024)
        server = RedisServer(pool, maxkeys=scale // 3)
        ops = list(redis_lru_ops(scale // 2))

        def execute() -> None:
            drive_kv(server, ops, session=session,
                     tx_check=tool == "pmtest", trace_every=10)
            finish()

    elif workload == "pmfs+oltp":
        fs = PMFS(runtime, size=4 << 20, journal_capacity=64 * 1024)
        ops = list(oltp_ops(scale // 3))

        def execute() -> None:
            drive_fs(fs, ops, session=session, trace_every=10)
            finish()

    elif workload == "pmfs+filebench":
        fs = PMFS(runtime, size=4 << 20, journal_capacity=64 * 1024)
        ops = list(filebench_ops(scale))

        def execute() -> None:
            drive_fs(fs, ops, session=session, trace_every=10)
            finish()

    else:
        raise ValueError(f"unknown workload {workload!r}")
    return execute


# ----------------------------------------------------------------------
# Figure 12: scalability
# ----------------------------------------------------------------------
def prepare_memcached_threads(
    n_threads: int,
    n_workers: int,
    ops_per_client: int = 120,
    with_pmtest: bool = True,
    mem_size: int = 16 << 20,
    backend: Optional[str] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Execute:
    """Memcached with N server threads and M PMTest workers."""
    ops_per_client = env_int("PMTEST_BENCH_OPS", ops_per_client)
    machine = PMMachine(mem_size)
    session = None
    if with_pmtest:
        session = PMTestSession(
            workers=n_workers, backend=backend, batch_size=batch_size
        )
        session.thread_init()
        session.start()
    runtime = PMRuntime(machine=machine, session=session)
    pool = PMPool(runtime, log_capacity=256 * 1024)
    server = MemcachedServer(pool)
    if session is not None:
        session.send_trace()
    op_lists = [
        list(memslap_ops(ops_per_client, key_space=64, seed=i))
        for i in range(n_threads)
    ]

    def execute() -> None:
        def worker(index: int) -> int:
            return drive_kv(server, op_lists[index], session=session,
                            trace_every=5)

        run_client_threads(worker, n_threads, session=session)
        if session is not None:
            session.exit()

    return execute


# ----------------------------------------------------------------------
# Backend scaling: pure checking throughput
# ----------------------------------------------------------------------
def make_checking_traces(
    n_traces: int = 150, tx_per_trace: int = 20, span: int = 256
) -> List[Trace]:
    """Synthetic traces shaped like instrumented transactions.

    Each trace is an independent checking unit (write/flush/fence/
    checker over rotating cachelines), so total checking work scales
    linearly with ``n_traces`` and the engine — not trace construction —
    dominates.
    """
    traces = []
    for t in range(n_traces):
        trace = Trace(t)
        for i in range(tx_per_trace):
            base = ((t + i) % 16) * span
            trace.append(Event(Op.WRITE, base, span))
            trace.append(Event(Op.CLWB, base, span))
            trace.append(Event(Op.SFENCE))
            trace.append(Event(Op.CHECK_PERSIST, base, span))
        traces.append(trace)
    return traces


def prepare_backend_throughput(
    backend: str,
    n_workers: int,
    n_traces: int = 150,
    batch_size: int = DEFAULT_BATCH_SIZE,
    transport: Optional[str] = None,
    codec: Optional[str] = None,
    engine: Optional[str] = None,
    shard_min_events: Optional[int] = None,
    tx_per_trace: int = 20,
) -> Execute:
    """Timed body: push pre-built traces through a fresh pool and drain.

    This isolates the checking runtime (dispatch + engine + result
    merge) from workload execution, which is what actually distinguishes
    the thread and process backends: end-to-end workload timings blend
    in tracked execution that is identical across backends.  The
    ``transport``/``codec`` knobs select the process backend's IPC
    channel and wire encoding for the transport ablation; ``engine``/
    ``shard_min_events`` select the replay engine and the epoch-shard
    threshold for the columnar/sharding sweeps (``tx_per_trace`` sizes
    individual traces — sharding only pays on large ones).
    """
    n_traces = env_int("PMTEST_BENCH_TRACES", n_traces)
    traces = make_checking_traces(n_traces, tx_per_trace=tx_per_trace)
    pool = WorkerPool(
        num_workers=n_workers,
        backend=backend,
        batch_size=batch_size,
        transport=transport,
        codec=codec,
        engine=engine,
        shard_min_events=shard_min_events,
    )

    def execute() -> None:
        for trace in traces:
            pool.submit(trace)
        result = pool.drain()
        assert result.traces_checked == len(traces)
        pool.close()

    return execute


# ----------------------------------------------------------------------
# Engine ablation: columnar vs object decode + replay
# ----------------------------------------------------------------------
def prepare_engine_replay(
    engine: str, n_traces: int = 150, tx_per_trace: int = 20
) -> Execute:
    """Timed body: decode one binary traces message and check every
    trace with the selected engine — the single-worker replay path with
    dispatch and pool machinery stripped away, which is what the
    ``--engine`` knob actually changes."""
    n_traces = env_int("PMTEST_BENCH_TRACES", n_traces)
    data = encode_traces_binary(
        make_checking_traces(n_traces, tx_per_trace=tx_per_trace)
    )
    columnar = engine == "columnar"

    def execute() -> None:
        checker = make_engine(engine, X86Rules())
        check = checker.check_trace
        traces = (
            decode_traces_binary_columnar(data)
            if columnar
            else decode_traces_binary(data)
        )
        for trace in traces:
            check(trace)

    return execute


def measure_decode_replay_split(
    n_traces: int = 150, batch_size: int = DEFAULT_BATCH_SIZE
) -> Dict[str, dict]:
    """Per-batch decode-vs-replay time split for both engines.

    Task batches are built exactly as the process backend ships them
    (``encode_task_message`` over ``batch_size`` traces), then each
    batch is decoded and replayed separately per engine, timing the two
    phases independently: the object engine decodes to per-event
    :class:`Event` objects, the columnar engine decodes straight into
    struct-of-arrays columns.  Results land in :data:`DECODE_REPLAY`
    (totals plus the per-batch nanosecond rows) for the terminal
    summary and the benchmark JSON.
    """
    from time import perf_counter_ns

    n_traces = env_int("PMTEST_BENCH_TRACES", n_traces)
    traces = make_checking_traces(n_traces)
    wires = [(seq, encode_trace(trace)) for seq, trace in enumerate(traces)]
    messages = [
        encode_task_message(wires[start:start + batch_size])
        for start in range(0, len(wires), batch_size)
    ]
    for engine_name in ("object", "columnar"):
        columnar = engine_name == "columnar"
        engine = make_engine(engine_name, X86Rules())
        check = engine.check_trace
        per_batch = []
        for message in messages:
            t0 = perf_counter_ns()
            _, pairs = decode_message(message, columnar=columnar)
            t1 = perf_counter_ns()
            for _, trace in pairs:
                check(trace)
            t2 = perf_counter_ns()
            per_batch.append(
                {"decode_ns": t1 - t0, "replay_ns": t2 - t1,
                 "traces": len(pairs)}
            )
        DECODE_REPLAY[engine_name] = {
            "batches": len(per_batch),
            "decode_seconds": sum(b["decode_ns"] for b in per_batch) / 1e9,
            "replay_seconds": sum(b["replay_ns"] for b in per_batch) / 1e9,
            "per_batch": per_batch,
        }
    return DECODE_REPLAY


def measure_engine_speedup(
    n_traces: int = 60, tx_per_trace: int = 40, rounds: int = 5
) -> Dict[str, float]:
    """Interleaved min-of-rounds decode+check comparison of the engines.

    The fig10a-shaped micro workload (write/clwb/sfence/isPersist over
    rotating cachelines) is encoded to one binary traces message, then
    each engine alternately decodes and checks the whole corpus; the
    best round per engine lands in :data:`ENGINE_BEST`.  Interleaving
    plus min-of-rounds makes the ratio robust to CI-host noise.  No
    verdict cache: this measures honest replay.
    """
    from time import perf_counter

    traces = make_checking_traces(n_traces, tx_per_trace=tx_per_trace)
    data = encode_traces_binary(traces)

    def run_object() -> None:
        engine = CheckingEngine(X86Rules())
        check = engine.check_trace
        for trace in decode_traces_binary(data):
            check(trace)

    def run_columnar() -> None:
        engine = make_engine("columnar", X86Rules())
        check = engine.check_trace
        for cols in decode_traces_binary_columnar(data):
            check(cols)

    best = {"object": float("inf"), "columnar": float("inf")}
    for _ in range(rounds):
        start = perf_counter()
        run_object()
        best["object"] = min(best["object"], perf_counter() - start)
        start = perf_counter()
        run_columnar()
        best["columnar"] = min(best["columnar"], perf_counter() - start)
    ENGINE_BEST.update(best)
    return best


# ----------------------------------------------------------------------
# Shadow-plane ablation: array interval store vs object interval map
# ----------------------------------------------------------------------
_EPOCH_SITE = SourceSite("heap.c", 17, "bulk_store")


def make_interval_heavy_cols(
    n_traces: int = 6,
    epochs: int = 16,
    writes: int = 128,
    checks: int = 32,
    bases: int = 16,
) -> List[ColumnarTrace]:
    """Pre-decoded columnar traces with epochs the array shadow targets.

    Each epoch is a long same-site write run (``writes`` stores at 8-byte
    stride), one wide CLWB spanning every segment the run created, an
    SFENCE, then ``checks`` strided isPersist checkers over the epoch —
    the shape where batched ``assign_codes_many``, the code-level flush
    remap and the vectorized persist pre-test all fire on every epoch.
    Bases rotate so earlier epochs stay live in the shadow and interval
    queries scan real segment populations.
    """
    out = []
    for t in range(n_traces):
        trace = Trace(t)
        seq = 0
        for e in range(epochs):
            base = 0x10000 + ((t + e) % bases) * 0x8000
            for k in range(writes):
                trace.append(
                    Event(Op.WRITE, base + k * 8, 8, site=_EPOCH_SITE,
                          seq=seq))
                seq += 1
            trace.append(Event(Op.CLWB, base, writes * 8, seq=seq))
            seq += 1
            trace.append(Event(Op.SFENCE, seq=seq))
            seq += 1
            span = writes * 8 // checks
            for k in range(checks):
                trace.append(
                    Event(Op.CHECK_PERSIST, base + k * span, span, seq=seq))
                seq += 1
        out.append(ColumnarTrace.from_trace(trace))
    return out


def prepare_shadow_validate(shadow: str, n_traces: int = 6) -> Execute:
    """Timed body: replay the interval-heavy corpus on one columnar
    engine, varying only ``--shadow``.  The columns are pre-decoded and
    epoch coalescing is off so the timed region is exactly the
    shadow-update + checker-validate plane the knob changes — decode and
    coalescing are shadow-independent fixed costs."""
    n_traces = env_int("PMTEST_BENCH_TRACES", n_traces)
    cols = make_interval_heavy_cols(n_traces=n_traces)

    def execute() -> None:
        engine = ColumnarCheckingEngine(
            X86Rules(), coalesce=False, shadow=shadow
        )
        check = engine.check_trace
        for trace in cols:
            check(trace)

    return execute


def measure_shadow_speedup(rounds: int = 6) -> Dict[str, float]:
    """Interleaved min-of-rounds comparison of the two shadow planes.

    Both shadows replay the identical pre-decoded interval-heavy corpus
    (fixed size, independent of the smoke-scaling env knobs); the best
    round per shadow lands in :data:`SHADOW_BEST`.  Interleaving plus
    min-of-rounds makes the ratio robust to CI-host noise."""
    from time import perf_counter

    cols = make_interval_heavy_cols()
    best = {"object": float("inf"), "array": float("inf")}
    for _ in range(rounds):
        for shadow in best:
            engine = ColumnarCheckingEngine(
                X86Rules(), coalesce=False, shadow=shadow
            )
            check = engine.check_trace
            start = perf_counter()
            for trace in cols:
                check(trace)
            best[shadow] = min(best[shadow], perf_counter() - start)
    SHADOW_BEST.update(best)
    return best


# ----------------------------------------------------------------------
# Verdict-cache ablation: repeated-trace checking throughput
# ----------------------------------------------------------------------
_INSERT_SITE = SourceSite("bench_workload.c", 42, "tx_insert")


def make_repeated_tx_traces(
    n_traces: int = 400, tx_per_trace: int = 20
) -> List[Trace]:
    """Structurally identical transactional traces at distinct bases.

    The repeated-trace workload the verdict cache targets: every trace
    is the same PMDK-style insert skeleton (tx-checked undo-logged
    writes, then a non-transactional header epilogue) relocated to a
    fresh allocation, so all traces share one canonical fingerprint and
    every trace after the first is a cache hit.  The epilogue writes
    the header small-then-whole, giving epoch coalescing one dead write
    per trace to eliminate.
    """
    traces = []
    for t in range(n_traces):
        base = 0x100000 * (t + 1)
        trace = Trace(t)
        trace.append(Event(Op.TX_CHECK_START, site=_INSERT_SITE))
        trace.append(Event(Op.TX_BEGIN, site=_INSERT_SITE))
        for i in range(tx_per_trace):
            node = base + i * 0x100
            trace.append(Event(Op.TX_ADD, node, 64, site=_INSERT_SITE))
            trace.append(Event(Op.WRITE, node, 8, site=_INSERT_SITE))
            trace.append(Event(Op.WRITE, node + 8, 56, site=_INSERT_SITE))
            trace.append(Event(Op.CLWB, node, 64, site=_INSERT_SITE))
            trace.append(Event(Op.SFENCE, site=_INSERT_SITE))
        trace.append(Event(Op.TX_END, site=_INSERT_SITE))
        trace.append(Event(Op.TX_CHECK_END, site=_INSERT_SITE))
        header = base + tx_per_trace * 0x100
        trace.append(Event(Op.WRITE, header, 8, site=_INSERT_SITE))
        trace.append(Event(Op.WRITE, header, 64, site=_INSERT_SITE))
        trace.append(Event(Op.CLWB, header, 64, site=_INSERT_SITE))
        trace.append(Event(Op.SFENCE, site=_INSERT_SITE))
        trace.append(Event(Op.CHECK_PERSIST, header, 64, site=_INSERT_SITE))
        traces.append(trace)
    return traces


def prepare_verdict_cache(cache_size: int) -> Execute:
    """Timed body: check the repeated-trace workload on one engine.

    A single inline engine (no worker pool) so exactly one cache serves
    every trace and the hit rate is deterministic: the first occurrence
    misses, every repeat hits.  The cache's own counters land in
    :data:`VERDICT_CACHE` for the terminal summary and benchmark JSON.
    """
    n_traces = env_int("PMTEST_BENCH_TRACES", 400)
    traces = make_repeated_tx_traces(n_traces)
    cache = VerdictCache(cache_size) if cache_size else None
    engine = CheckingEngine(X86Rules(), cache=cache)

    def execute() -> None:
        check = engine.check_trace
        for trace in traces:
            check(trace)
        if cache is not None:
            VERDICT_CACHE["hit_rate"] = cache.hit_rate()
            VERDICT_CACHE["writes_merged"] = float(engine.writes_merged)

    return execute


def measure_wire_bytes(
    n_traces: int = 150, batch_size: int = DEFAULT_BATCH_SIZE
) -> Dict[str, float]:
    """Bytes per trace each codec ships for the fig12 checking workload.

    Batches are built exactly as the process backend builds them —
    ``(seq, tuple-wire)`` pairs, ``batch_size`` traces per message — and
    encoded both ways: the queue transport pickles the batch (that *is*
    the multiprocessing.Queue wire), the binary codec frames it with
    :func:`encode_task_message`.  Results land in :data:`WIRE_BYTES` for
    the terminal summary and the benchmark JSON.
    """
    n_traces = env_int("PMTEST_BENCH_TRACES", n_traces)
    traces = make_checking_traces(n_traces)
    wires = [(seq, encode_trace(trace)) for seq, trace in enumerate(traces)]
    totals = {"pickle": 0, "binary": 0}
    for start in range(0, len(wires), batch_size):
        batch = wires[start:start + batch_size]
        totals["pickle"] += len(pickle.dumps(batch, pickle.HIGHEST_PROTOCOL))
        totals["binary"] += len(encode_task_message(batch))
    per_trace = {name: total / len(wires) for name, total in totals.items()}
    WIRE_BYTES.update(per_trace)
    return per_trace
