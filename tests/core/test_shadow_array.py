"""Differential suite: the array shadow never changes a verdict.

The contract under test (DESIGN.md §14): ``--shadow array`` is a pure
performance knob.  For any trace — well-formed or structurally invalid
— an engine running the array-backed interval store produces the same
wire-encoded :class:`TestResult`, the same counter fields (including
``engine.interval_queries``/``engine.interval_scanned``), and the same
exceptions as the object store, across both engines, every backend,
transport, verdict-cache configuration, epoch sharding, and chaos
fault plans.  The replay fast paths this pins down:

* batched sort-and-sweep write runs through ``assign_codes_many``,
* the code-level silent/fused flush (``update_codes`` + flush memo),
* the batched ``isPersist`` pre-test (fall-through on failure),
* shard prefix replay and deterministic shard merge.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine_columnar import ENGINE_NAMES, make_engine
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule
from repro.core.interval_array import SHADOW_ENV_VAR, SHADOW_NAMES
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.rules import X86Rules
from repro.core.traceio import encode_result
from repro.core.workers import WorkerPool

# ----------------------------------------------------------------------
# Trace generation (same shape space as the engine differential)
# ----------------------------------------------------------------------

_SITES = [
    None,
    SourceSite("alloc.c", 41, "alloc"),
    SourceSite("log.c", 7, "append"),
]

_WRITES = [Op.WRITE, Op.WRITE_NT]
_FLUSHES = [Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH]


@st.composite
def _events(draw, allow_invalid: bool = True):
    """Random events over a small, colliding address window, so write
    runs, duplicate flushes, wide flushes over many segments and
    failing persists all actually occur."""
    n = draw(st.integers(min_value=1, max_value=28))
    min_size = 0 if allow_invalid else 1
    events = []
    tx_depth = 0
    tx_check = False
    for seq in range(n):
        kind = draw(st.integers(min_value=0, max_value=9))
        site = draw(st.sampled_from(_SITES))
        addr = 0x1000 + draw(st.integers(min_value=0, max_value=96))
        size = draw(st.integers(min_value=min_size, max_value=24))
        if kind <= 2:
            op = draw(st.sampled_from(_WRITES))
            events.append(Event(op, addr, size, site=site, seq=seq))
        elif kind == 3:
            op = draw(st.sampled_from(_FLUSHES))
            events.append(Event(op, addr, size, site=site, seq=seq))
        elif kind == 4:
            events.append(Event(Op.SFENCE, site=site, seq=seq))
        elif kind == 5:
            events.append(Event(Op.CHECK_PERSIST, addr, size, site=site,
                                seq=seq))
        elif kind == 6:
            addr2 = 0x1000 + draw(st.integers(min_value=0, max_value=96))
            size2 = draw(st.integers(min_value=min_size, max_value=24))
            events.append(Event(Op.CHECK_ORDER, addr, size, addr2, size2,
                                site=site, seq=seq))
        elif kind == 7:
            if tx_depth and draw(st.booleans()):
                events.append(Event(Op.TX_END, site=site, seq=seq))
                tx_depth -= 1
            else:
                events.append(Event(Op.TX_BEGIN, site=site, seq=seq))
                tx_depth += 1
        elif kind == 8:
            op = draw(st.sampled_from([Op.TX_ADD, Op.EXCLUDE, Op.INCLUDE]))
            events.append(Event(op, addr, max(size, 1), site=site, seq=seq))
        else:
            if tx_check:
                events.append(Event(Op.TX_CHECK_END, site=site, seq=seq))
                tx_check = False
            else:
                events.append(Event(Op.TX_CHECK_START, site=site, seq=seq))
                tx_check = True
    seq = n
    if tx_check:
        events.append(Event(Op.TX_CHECK_END, seq=seq))
        seq += 1
    while tx_depth:
        events.append(Event(Op.TX_END, seq=seq))
        seq += 1
        tx_depth -= 1
    return events


def _trace(events, trace_id=7):
    trace = Trace(trace_id)
    for event in events:
        trace.append(event)
    return trace


def _outcome(engine, trace):
    try:
        result = engine.check_trace(trace)
    except Exception as exc:  # noqa: BLE001 - compared across shadows
        return type(exc).__name__, str(exc)
    return (
        encode_result(result),
        result.traces_checked,
        result.events_checked,
        result.checkers_evaluated,
    )


# ----------------------------------------------------------------------
# Properties: engine-level equivalence
# ----------------------------------------------------------------------


class TestShadowDifferential:
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    @given(_events())
    @settings(max_examples=150, deadline=None)
    def test_verdicts_and_counters_identical(self, engine_name, events):
        outs = [
            _outcome(
                make_engine(engine_name, X86Rules(), shadow=shadow),
                _trace(events),
            )
            for shadow in SHADOW_NAMES
        ]
        assert outs[0] == outs[1]

    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    @given(_events(allow_invalid=False))
    @settings(max_examples=60, deadline=None)
    def test_full_metrics_counters_identical(self, engine_name, events):
        """Interval-query depth accounting survives the swap: every
        non-clock counter — op counts, stage counts,
        ``engine.interval_queries``/``engine.interval_scanned`` — must
        agree; only nanosecond totals may differ."""
        snaps = []
        for shadow in SHADOW_NAMES:
            registry = MetricsRegistry(MetricsLevel.FULL)
            engine = make_engine(engine_name, X86Rules(), registry,
                                 shadow=shadow)
            engine.check_trace(_trace(events))
            snaps.append({
                name: value
                for name, value in registry.counters().items()
                if not name.endswith(".ns")
            })
        assert snaps[0] == snaps[1]
        assert "engine.interval_queries" in snaps[0]


# ----------------------------------------------------------------------
# Pool-level matrix: engine x backend x transport x cache (+ chaos)
# ----------------------------------------------------------------------


def _corpus():
    """Mixed corpus with interval-heavy epochs: batched write runs,
    wide flushes spanning several segments, passing and failing
    persists, transactions and checker scopes."""
    traces = []
    for i in range(6):
        trace = Trace(i)
        seq = 0
        base = (i % 3) * 0x40 + 0x1000

        def emit(op, *args, site=None):
            nonlocal seq
            trace.append(Event(op, *args, site=site, seq=seq))
            seq += 1

        emit(Op.TX_CHECK_START)
        emit(Op.TX_BEGIN)
        emit(Op.TX_ADD, base, 0x40)
        for k in range(12):  # an epoch-sized write run
            emit(Op.WRITE, base + k * 4, 4,
                 site=SourceSite("kv.c", k, "put"))
        emit(Op.CLWB, base, 0x30)  # wide flush over many segments
        if i % 2 == 0:
            emit(Op.SFENCE)
        for k in range(0, 12, 3):
            emit(Op.CHECK_PERSIST, base + k * 4, 4)
        emit(Op.TX_END)
        emit(Op.TX_CHECK_END)
        traces.append(trace)
    return traces


_POOL_CONFIGS = [
    pytest.param({"num_workers": 0}, id="inline"),
    pytest.param({"num_workers": 2, "backend": "thread"}, id="thread"),
    pytest.param(
        {"num_workers": 2, "backend": "process", "transport": "queue",
         "codec": "pickle"},
        id="process-queue-pickle",
    ),
    pytest.param(
        {"num_workers": 2, "backend": "process", "transport": "shm",
         "codec": "binary"},
        id="process-shm-binary",
    ),
]


class TestPoolMatrixDifferential:
    @pytest.mark.parametrize("config", _POOL_CONFIGS)
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    @pytest.mark.parametrize("cache", [False, True],
                             ids=["cache-off", "cache-on"])
    def test_verdicts_and_merged_counters_identical(
        self, config, engine_name, cache
    ):
        traces = _corpus()
        wires = []
        counters = []
        for shadow in SHADOW_NAMES:
            registry = MetricsRegistry(MetricsLevel.BASIC)
            with WorkerPool(metrics=registry, verdict_cache=cache,
                            engine=engine_name, shadow=shadow,
                            **config) as pool:
                for trace in traces:
                    pool.submit(trace)
                result = pool.drain()
                snap = pool.metrics_snapshot()
            wires.append(encode_result(result))
            counters.append({
                name: value
                for name, value in snap.counters().items()
                if name.startswith("engine.")
            })
        assert wires[0] == wires[1]
        assert counters[0] == counters[1]

    def test_chaos_row_identical(self):
        """Worker crashes and requeues must stay invisible: the array
        shadow run under a crash plan equals the clean object run."""
        plan = FaultPlan([
            FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH,
                      worker=0, at=1),
        ])
        traces = _corpus()
        with WorkerPool(num_workers=0, engine="columnar",
                        shadow="object") as ref:
            for trace in traces:
                ref.submit(trace)
            want = encode_result(ref.drain())
        with WorkerPool(num_workers=2, backend="thread", engine="columnar",
                        shadow="array", faults=plan) as pool:
            for trace in _corpus():
                pool.submit(trace)
            got = encode_result(pool.drain())
        assert got == want

    @pytest.mark.parametrize("workers", [2, 4])
    def test_epoch_sharded_merge_identical(self, workers):
        """Shard prefix replay + deterministic merge under the array
        shadow == unsharded object-shadow replay, byte for byte."""
        big = Trace(1)
        seq = 0
        for e in range(40):
            base = 0x1000 + (e % 8) * 0x40
            for k in range(8):
                big.append(Event(Op.WRITE, base + k * 4, 4, seq=seq))
                seq += 1
            big.append(Event(Op.CLWB, base, 0x20, seq=seq)); seq += 1
            if e % 4 != 0:
                big.append(Event(Op.SFENCE, seq=seq)); seq += 1
            big.append(Event(Op.CHECK_PERSIST, base, 0x20, seq=seq)); seq += 1

        def run(shadow, **kw):
            pool = WorkerPool(engine="columnar", shadow=shadow, **kw)
            try:
                pool.submit(Trace(1, events=list(big.events)))
                return encode_result(pool.drain())
            finally:
                pool._backend.stop()

        want = run("object", num_workers=0)
        got = run("array", num_workers=workers, backend="thread",
                  shard_min_events=1)
        assert got == want


# ----------------------------------------------------------------------
# Knob plumbing
# ----------------------------------------------------------------------


class TestShadowPlumbing:
    def test_pool_reports_resolved_shadow(self, monkeypatch):
        monkeypatch.setenv(SHADOW_ENV_VAR, "array")
        with WorkerPool(num_workers=0) as pool:
            assert pool.shadow_name == "array"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SHADOW_ENV_VAR, "array")
        with WorkerPool(num_workers=0, shadow="object") as pool:
            assert pool.shadow_name == "object"

    def test_unknown_shadow_rejected(self):
        with pytest.raises(ValueError, match="unknown shadow"):
            WorkerPool(num_workers=0, shadow="simd")

    def test_cli_exposes_shadow_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check", "--help"])
        assert "--shadow" in capsys.readouterr().out
