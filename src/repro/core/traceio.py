"""Trace serialization: record once, check offline, anywhere.

The paper's PMTest checks traces online, in the same process.  This
module adds the natural deployment mode for a trace-based tool: dump
captured traces to a file (JSON lines — one event per line, one blank
line between traces) and re-check them later, with different rules, or
on another machine.  It also enables corpus-style regression testing:
keep the trace that exposed a bug and assert the checker verdict
forever after.

Format (stable, versioned)::

    {"format": "pmtest-trace", "version": 1}          # header line
    {"trace": 0, "thread": "main"}                    # trace header
    {"op": "WRITE", "addr": 16, "size": 64, ...}      # events
    ...
    {"trace": 1, "thread": "main"}                    # next trace
    ...

Sites are preserved when present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Union

from repro.core.events import Event, Op, SourceSite, Trace

FORMAT_NAME = "pmtest-trace"
FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """The file is not a valid PMTest trace dump."""


def dump_traces(traces: Iterable[Trace], destination: Union[str, Path, TextIO]) -> int:
    """Write traces to a file or file-like object; returns trace count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_traces(traces, handle)
    destination.write(
        json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION}) + "\n"
    )
    count = 0
    for trace in traces:
        destination.write(
            json.dumps({"trace": trace.trace_id, "thread": trace.thread_name})
            + "\n"
        )
        for event in trace.events:
            destination.write(json.dumps(_event_to_dict(event)) + "\n")
        count += 1
    return count


def load_traces(source: Union[str, Path, TextIO]) -> List[Trace]:
    """Read every trace from a dump produced by :func:`dump_traces`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_traces(handle)
    lines = iter(source)
    header = _parse_line(next(lines, ""))
    if header.get("format") != FORMAT_NAME:
        raise TraceFormatError("missing pmtest-trace header line")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    traces: List[Trace] = []
    current: Optional[Trace] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = _parse_line(line)
        if "trace" in record:
            current = Trace(record["trace"],
                            thread_name=record.get("thread", "main"))
            traces.append(current)
        elif "op" in record:
            if current is None:
                raise TraceFormatError("event before any trace header")
            current.append(_event_from_dict(record))
        else:
            raise TraceFormatError(f"unrecognized record: {record!r}")
    return traces


# ----------------------------------------------------------------------
def _event_to_dict(event: Event) -> dict:
    record = {"op": event.op.name}
    if event.size:
        record["addr"] = event.addr
        record["size"] = event.size
    if event.size2:
        record["addr2"] = event.addr2
        record["size2"] = event.size2
    if event.site is not None:
        record["site"] = [event.site.file, event.site.line,
                          event.site.function]
    return record


def _event_from_dict(record: dict) -> Event:
    try:
        op = Op[record["op"]]
    except KeyError as exc:
        raise TraceFormatError(f"unknown op {record.get('op')!r}") from exc
    site = None
    if "site" in record:
        file, line, function = record["site"]
        site = SourceSite(file, line, function)
    return Event(
        op,
        record.get("addr", 0),
        record.get("size", 0),
        record.get("addr2", 0),
        record.get("size2", 0),
        site,
    )


def _parse_line(line: str) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad JSON line: {line[:60]!r}") from exc
    if not isinstance(record, dict):
        raise TraceFormatError("trace lines must be JSON objects")
    return record


class TraceRecorder:
    """A trace sink that archives instead of checking.

    Point a :class:`~repro.core.api.PMTestSession` at it (the ``sink``
    parameter) to capture traces for later offline checking::

        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        ... run the program ...
        dump_traces(recorder.traces, "run.pmtrace")

    ``drain``/``close`` return an empty result — recording performs no
    checking by design.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []

    @property
    def dispatched(self) -> int:
        return len(self.traces)

    def submit(self, trace: Trace) -> None:
        self.traces.append(trace)

    def drain(self):
        from repro.core.reports import TestResult

        return TestResult()

    def close(self):
        return self.drain()
