"""Bounded kernel-FIFO channel for kernel-module integration.

PMFS-style kernel modules cannot run the checking engine in kernel space,
so PMTest passes traces to the user-space engine through a kernel FIFO
(``/proc/PMTest``) of 1024 entries, and parks the kernel module on an
interruptible wait queue when the FIFO fills, waking it once the FIFO is
less than half full (paper Section 4.5).

This module simulates that channel: a bounded deque with hysteresis-based
backpressure.  The producer (the simulated kernel module) blocks in
:meth:`KernelFifo.put` when full and is only released once the consumer
has drained the FIFO below half capacity — exactly the paper's wake-up
condition, which avoids thrashing at the full mark.

Hardening: both :meth:`KernelFifo.put` and :meth:`KernelFifo.get` accept
deadlines (a parked producer is a classic livelock source if the
consumer dies), :meth:`KernelFifo.close` promptly wakes parked producers
and consumers with :class:`FifoClosed`, and the producer path consults
the session's chaos plan at the ``kfifo.put`` fault point so producer
starvation is testable deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from time import perf_counter_ns
from typing import Deque, Generic, Optional, TypeVar

from repro.core.faults import FaultPlan, FaultPoint
from repro.core.metrics import MetricsRegistry

T = TypeVar("T")

#: The paper's FIFO depth for /proc/PMTest.
DEFAULT_CAPACITY = 1024


class FifoClosed(Exception):
    """The channel was closed while an operation was blocked on it."""


class KernelFifo(Generic[T]):
    """Bounded FIFO with half-full wake-up hysteresis."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = capacity
        self._faults = faults
        # All recording happens under self._lock, so a registry shared
        # with other FIFO users is safe; the off path is one branch.
        self._metrics = metrics
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._below_half = threading.Condition(self._lock)
        self._closed = False
        #: number of times a producer had to park (observability for tests
        #: and for the kernel-integration benchmark)
        self.producer_waits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue; block on the wait queue while the FIFO is full.

        A parked producer resumes only once the FIFO has drained below
        half capacity (the paper's interruptible wait queue behaviour).
        Raises :class:`FifoClosed` promptly if the channel is closed —
        including while parked — and :class:`TimeoutError` when a
        ``timeout`` deadline expires before space frees up.
        """
        if self._faults is not None:
            # Producer starvation / stall injection happens before the
            # lock: a starved kernel producer is slow, not deadlocked.
            self._faults.sleep_if_told(FaultPoint.KFIFO_PUT)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            metrics = self._metrics
            if len(self._items) >= self.capacity:
                self.producer_waits += 1
                wait_start = 0
                if metrics is not None:
                    metrics.counter("kfifo.producer_waits").inc(1)
                    if metrics.full:
                        wait_start = perf_counter_ns()
                while not self._closed and len(self._items) >= self.capacity // 2:
                    if deadline is None:
                        self._below_half.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._below_half.wait(
                            timeout=remaining
                        ):
                            raise TimeoutError(
                                "kernel FIFO put timed out while parked"
                            )
                if wait_start:
                    metrics.histogram("kfifo.put_wait_ns").record(
                        perf_counter_ns() - wait_start
                    )
            if self._closed:
                raise FifoClosed("put on closed kernel FIFO")
            self._items.append(item)
            if metrics is not None:
                metrics.counter("kfifo.puts").inc(1)
                if metrics.full:
                    metrics.histogram("kfifo.occupancy").record(
                        len(self._items)
                    )
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue; block while empty.  Raises :class:`FifoClosed` when the
        channel is closed and drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._items:
                if self._closed:
                    raise FifoClosed("kernel FIFO closed and empty")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(
                        timeout=remaining
                    ):
                        raise TimeoutError("kernel FIFO get timed out")
            item = self._items.popleft()
            if self._metrics is not None:
                self._metrics.counter("kfifo.gets").inc(1)
            if len(self._items) < self.capacity // 2:
                self._below_half.notify_all()
            return item

    def close(self) -> None:
        """Close the channel, waking all blocked producers and consumers.

        Parked producers raise :class:`FifoClosed` from ``put`` rather
        than staying blocked; consumers drain remaining items first and
        then raise from ``get``.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._below_half.notify_all()
