"""A crit-bit (PATRICIA) tree: the "C-Tree" microbenchmark.

Modelled on PMDK's ``ctree_map`` example: internal nodes hold the index
of the highest bit on which their subtrees' keys differ; leaves hold the
key and value.  Internal/leaf pointers are distinguished by tagging bit 0
(all allocations are 8-byte aligned).

The only in-place mutation an insert performs is splicing one pointer
slot (the root field or one child slot) — which makes the missing-log
fault site wonderfully sharp:

``no-log-splice``
    The spliced pointer slot is modified without a ``TX_ADD`` snapshot.
``no-log-count``
    The element count is modified without a snapshot.
``no-log-value``
    An in-place value update skips its snapshot.
``dup-log-splice``
    The spliced slot is snapshotted twice (duplicate log, performance).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.pmdk.objects import ArrayField, PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.structures.base import PersistentMap, ValueBuffer

_TAG = 1  # low pointer bit marks an internal node


class CTreeRoot(PStruct):
    root = PtrField()
    count = U64Field()


class CTreeLeaf(PStruct):
    key = U64Field()
    value = PtrField()


class CTreeInternal(PStruct):
    diff = U64Field()  # bit index on which the children differ
    children = ArrayField(2)


def _is_internal(ptr: int) -> bool:
    return bool(ptr & _TAG)


def _untag(ptr: int) -> int:
    return ptr & ~_TAG


def _bit(key: int, index: int) -> int:
    return (key >> index) & 1


def _crit_bit(a: int, b: int) -> int:
    """Index of the most significant differing bit of two distinct keys."""
    return (a ^ b).bit_length() - 1


class CTree(PersistentMap):
    """Transactional crit-bit tree."""

    NAME = "ctree"

    KNOWN_FAULTS = frozenset(
        {"no-log-splice", "no-log-count", "no-log-value", "dup-log-splice"}
    )

    def __init__(self, pool: PMPool, root_slot: int = 0, value_size: int = 64,
                 faults=()) -> None:
        super().__init__(pool, root_slot, value_size, faults)
        addr = pool.read_root(root_slot)
        if addr:
            self.tree = CTreeRoot(pool, addr)
        else:
            with pool.tx.transaction():
                self.tree = CTreeRoot.alloc(pool)
            pool.write_root(root_slot, self.tree.addr)

    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: int) -> CTreeLeaf:
        cursor = self.tree.root
        while _is_internal(cursor):
            node = CTreeInternal(self.pool, _untag(cursor))
            cursor = node.children[_bit(key, node.diff)]
        return CTreeLeaf(self.pool, cursor)

    # ------------------------------------------------------------------
    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        payload = payload if payload is not None else self.default_payload(key)
        tx = self.pool.tx
        with tx.transaction():
            buf = ValueBuffer.create(self.pool, payload)
            if self.tree.root == 0:
                leaf = CTreeLeaf.alloc(self.pool)
                leaf.key = key
                leaf.value = buf.addr
                self._splice(self.tree.field_range("root")[0], leaf.addr)
                self._bump_count(+1)
                return
            closest = self._descend_to_leaf(key)
            if closest.key == key:
                if not self._fault("no-log-value"):
                    tx.add_field(closest, "value")
                closest.value = buf.addr
                return
            diff = _crit_bit(closest.key, key)
            leaf = CTreeLeaf.alloc(self.pool)
            leaf.key = key
            leaf.value = buf.addr
            internal = CTreeInternal(self.pool, self.pool.alloc(CTreeInternal.SIZE))
            internal.diff = diff
            # Walk to the splice point: the first slot whose subtree's
            # crit bit is below the new one.
            slot = self.tree.field_range("root")[0]
            cursor = self.tree.root
            while _is_internal(cursor):
                node = CTreeInternal(self.pool, _untag(cursor))
                if node.diff < diff:
                    break
                accessor = node.children
                slot = accessor.addr(_bit(key, node.diff))
                cursor = accessor[_bit(key, node.diff)]
            internal.children[_bit(key, diff)] = leaf.addr
            internal.children[1 - _bit(key, diff)] = cursor
            self._splice(slot, internal.addr | _TAG)
            self._bump_count(+1)

    def lookup(self, key: int) -> Optional[bytes]:
        if self.tree.root == 0:
            return None
        leaf = self._descend_to_leaf(key)
        if leaf.key != key:
            return None
        return ValueBuffer(self.pool, leaf.value).read()

    def remove(self, key: int) -> bool:
        if self.tree.root == 0:
            return False
        tx = self.pool.tx
        with tx.transaction():
            grandparent_slot = self.tree.field_range("root")[0]
            parent: Optional[CTreeInternal] = None
            parent_child_index = 0
            cursor = self.tree.root
            while _is_internal(cursor):
                node = CTreeInternal(self.pool, _untag(cursor))
                if parent is not None:
                    grandparent_slot = parent.children.addr(parent_child_index)
                parent = node
                parent_child_index = _bit(key, node.diff)
                cursor = node.children[parent_child_index]
            leaf = CTreeLeaf(self.pool, cursor)
            if leaf.key != key:
                return False
            if parent is None:
                self._splice(self.tree.field_range("root")[0], 0)
            else:
                sibling = parent.children[1 - parent_child_index]
                self._splice(grandparent_slot, sibling)
                self.pool.free(parent.addr)
            self.pool.free(leaf.addr)
            self._bump_count(-1)
            return True

    def items(self) -> Iterator[Tuple[int, bytes]]:
        stack: List[int] = [self.tree.root] if self.tree.root else []
        while stack:
            cursor = stack.pop()
            if _is_internal(cursor):
                node = CTreeInternal(self.pool, _untag(cursor))
                stack.append(node.children[0])
                stack.append(node.children[1])
            else:
                leaf = CTreeLeaf(self.pool, cursor)
                yield leaf.key, ValueBuffer(self.pool, leaf.value).read()

    # ------------------------------------------------------------------
    def _splice(self, slot: int, new_value: int) -> None:
        """The single in-place pointer update of every structural change."""
        if not self._fault("no-log-splice"):
            self.pool.tx.add(slot, 8)
        if self._fault("dup-log-splice"):
            self.pool.tx.add(slot, 8)  # redundant second snapshot
        self.pool.runtime.store_u64(slot, new_value)

    def _bump_count(self, delta: int) -> None:
        if not self._fault("no-log-count"):
            self.pool.tx.add_field(self.tree, "count")
        self.tree.count = self.tree.count + delta


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Crash-image consistency: reachable leaves match the count, diffs
    strictly decrease along every path, and leaf keys honour path bits."""
    if root_addr_value == 0:
        return True
    count = image.read_u64(root_addr_value + 8)
    root = image.read_u64(root_addr_value)
    if root == 0:
        return count == 0
    leaves = 0
    stack: List[Tuple[int, int]] = [(root, 64)]
    seen = set()
    while stack:
        cursor, max_diff = stack.pop()
        if cursor in seen:
            return False
        seen.add(cursor)
        if _is_internal(cursor):
            addr = _untag(cursor)
            if addr + 24 > len(image):
                return False
            diff = image.read_u64(addr)
            if diff >= max_diff:
                return False
            left = image.read_u64(addr + 8)
            right = image.read_u64(addr + 16)
            if left == 0 or right == 0:
                return False
            stack.append((left, diff))
            stack.append((right, diff))
        else:
            if cursor + 16 > len(image) or image.read_u64(cursor + 8) == 0:
                return False
            leaves += 1
    return leaves == count
