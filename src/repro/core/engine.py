"""The checking engine: replays one trace and validates its checkers.

The engine walks a trace in program order (paper Section 4.4).  PM
operations update the shadow memory through the active persistency-model
rules; checker records are validated against the shadow's persist
intervals.  Orthogonally to the model rules, the engine implements the
transaction machinery of Section 5.1: the log tree for ``TX_ADD``
backups, the modified-object set for transaction-completeness checking,
and the testing-scope exclusion list (``PMTest_EXCLUDE``).

Each trace is checked against a fresh shadow memory — traces are
independent units, split by the program at ``PMTest_SEND_TRACE`` points
(typically transaction boundaries).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.events import Event, FENCE_OPS, FLUSH_OPS, Op, SourceSite, Trace
from repro.core.interval_map import IntervalMap
from repro.core.logtree import LogTree
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import PersistencyRules, X86Rules


class MalformedTrace(Exception):
    """The trace violates structural invariants (e.g. unbalanced TX_END).

    This indicates broken instrumentation of the program under test, not a
    crash-consistency bug, so it raises instead of reporting.
    """


class CheckingEngine:
    """Validates traces under a persistency model's checking rules."""

    def __init__(self, rules: Optional[PersistencyRules] = None) -> None:
        self.rules = rules if rules is not None else X86Rules()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check_trace(self, trace: Trace) -> TestResult:
        """Replay one trace; return all FAIL/WARN reports."""
        return _TraceChecker(self.rules, trace).run()

    def check_traces(self, traces: Iterable[Trace]) -> TestResult:
        """Replay several independent traces and merge their results."""
        total = TestResult()
        for trace in traces:
            total.merge(self.check_trace(trace))
        return total


class _TraceChecker:
    """State for checking a single trace (one shadow memory)."""

    def __init__(self, rules: PersistencyRules, trace: Trace) -> None:
        self.rules = rules
        self.trace = trace
        self.shadow = rules.make_shadow()
        self.result = TestResult(traces_checked=1)
        # Transaction machinery (Section 5.1)
        self.tx_depth = 0
        self.log_tree = LogTree()
        self.tx_check_active = False
        self.tx_check_site: Optional[SourceSite] = None
        #: ranges modified inside the current TX_CHECKER scope -> write site
        self.modified: IntervalMap[Optional[SourceSite]] = IntervalMap()
        #: ranges excluded from the testing scope (PMTest_EXCLUDE)
        self.excluded: IntervalMap[bool] = IntervalMap()

    # ------------------------------------------------------------------
    def run(self) -> TestResult:
        for event in self.trace.events:
            self._dispatch(event)
            self.result.events_checked += 1
        self._finish()
        for i, report in enumerate(self.result.reports):
            if report.trace_id == -1:
                self.result.reports[i] = _with_trace_id(report, self.trace.trace_id)
        return self.result

    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        op = event.op
        if op is Op.WRITE or op is Op.WRITE_NT:
            self._on_write(event)
        elif op in FLUSH_OPS:
            self._apply_in_scope(event)
        elif op in FENCE_OPS:
            self.result.reports.extend(self.rules.apply_op(self.shadow, event))
        elif op is Op.TX_BEGIN:
            self._on_tx_begin()
        elif op is Op.TX_END:
            self._on_tx_end(event)
        elif op is Op.TX_ADD:
            self._on_tx_add(event)
        elif op is Op.EXCLUDE:
            self.excluded.assign(event.addr, event.end, True)
            if self.tx_check_active:
                self.modified.erase(event.addr, event.end)
        elif op is Op.INCLUDE:
            self.excluded.erase(event.addr, event.end)
        elif op is Op.CHECK_PERSIST:
            self.result.checkers_evaluated += 1
            self.result.reports.extend(self.rules.check_persist(self.shadow, event))
        elif op is Op.CHECK_ORDER:
            self.result.checkers_evaluated += 1
            self.result.reports.extend(self.rules.check_order(self.shadow, event))
        elif op is Op.TX_CHECK_START:
            self.tx_check_active = True
            self.tx_check_site = event.site
            self.modified.clear()
        elif op is Op.TX_CHECK_END:
            self._on_tx_check_end(event.site, event.seq)
        else:  # pragma: no cover - vocabulary is closed
            raise MalformedTrace(f"unknown trace op {op!r}")

    # ------------------------------------------------------------------
    # PM operations
    # ------------------------------------------------------------------
    def _on_write(self, event: Event) -> None:
        for lo, hi in self._active(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))
            if not self.tx_check_active:
                continue
            self.modified.assign(lo, hi, event.site)
            if self.tx_depth > 0:
                for bad_lo, bad_hi in self.log_tree.uncovered(lo, hi):
                    self.result.reports.append(
                        Report(
                            level=Level.FAIL,
                            code=ReportCode.MISSING_LOG,
                            message=(
                                f"transaction modifies [{bad_lo:#x}, "
                                f"{bad_hi:#x}) without a prior TX_ADD "
                                "backup; it cannot be rolled back"
                            ),
                            site=event.site,
                            seq=event.seq,
                        )
                    )

    def _apply_in_scope(self, event: Event) -> None:
        for lo, hi in self._active(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _on_tx_begin(self) -> None:
        self.tx_depth += 1
        if self.tx_depth == 1:
            self.log_tree.reset()

    def _on_tx_end(self, event: Event) -> None:
        if self.tx_depth == 0:
            raise MalformedTrace(f"TX_END without TX_BEGIN at {event.site}")
        self.tx_depth -= 1

    def _on_tx_add(self, event: Event) -> None:
        duplicates = self.log_tree.add(event.addr, event.end, event.site)
        if not self.tx_check_active:
            return
        for lo, hi, first_site in duplicates:
            where = f" (first logged at {first_site})" if first_site else ""
            self.result.reports.append(
                Report(
                    level=Level.WARN,
                    code=ReportCode.DUP_LOG,
                    message=(
                        f"[{lo:#x}, {hi:#x}) is logged more than once in "
                        f"the same transaction{where}"
                    ),
                    site=event.site,
                    seq=event.seq,
                )
            )

    def _on_tx_check_end(self, site: Optional[SourceSite], seq: int) -> None:
        self.result.checkers_evaluated += 1
        self.tx_check_active = False
        if self.tx_depth > 0:
            self.result.reports.append(
                Report(
                    level=Level.FAIL,
                    code=ReportCode.INCOMPLETE_TX,
                    message=(
                        "transaction is still open at the end of the "
                        "checked scope; it was not properly terminated"
                    ),
                    site=site,
                    seq=seq,
                )
            )
        # The injected isPersist over every modified (non-excluded) object
        # (paper Section 5.1.1, "Check Incomplete Transactions").
        for lo, hi, write_site in list(self.modified):
            for sub_lo, sub_hi, interval, state in self.rules.persist_intervals(
                self.shadow, lo, hi
            ):
                if not interval.ends_by(self.shadow.timestamp):
                    self.result.reports.append(
                        Report(
                            level=Level.FAIL,
                            code=ReportCode.TX_NOT_PERSISTED,
                            message=(
                                f"transaction update to [{sub_lo:#x}, "
                                f"{sub_hi:#x}) {interval} is not "
                                "guaranteed durable when the transaction "
                                "scope ends"
                            ),
                            site=site,
                            related_site=state.write_site or write_site,
                            seq=seq,
                        )
                    )
        self.modified.clear()

    def _finish(self) -> None:
        """End-of-trace handling: an open checker scope is closed implicitly."""
        if self.tx_check_active:
            self._on_tx_check_end(self.tx_check_site, len(self.trace.events))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _active(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Subranges of ``[lo, hi)`` inside the testing scope."""
        if not self.excluded:
            return [(lo, hi)]
        return self.excluded.gaps(lo, hi)

    @staticmethod
    def _subrange_event(event: Event, lo: int, hi: int) -> Event:
        if lo == event.addr and hi == event.end:
            return event
        return Event(event.op, lo, hi - lo, site=event.site, seq=event.seq)


def _with_trace_id(report: Report, trace_id: int) -> Report:
    return Report(
        level=report.level,
        code=report.code,
        message=report.message,
        site=report.site,
        related_site=report.related_site,
        trace_id=trace_id,
        seq=report.seq,
    )
