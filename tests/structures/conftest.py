"""Shared helpers for structure tests."""

from __future__ import annotations

import pytest

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool


def make_pool(session=None, size=16 << 20):
    machine = PMMachine(size)
    runtime = PMRuntime(machine=machine, session=session)
    return PMPool(runtime, log_capacity=512 * 1024)


def make_session():
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    return session


@pytest.fixture
def pool():
    return make_pool()
