"""PMTest core: the checking framework that is the paper's contribution.

This package implements the PMTest testing framework from

    Liu, Wei, Zhao, Kolli, Khan.
    "PMTest: A Fast and Flexible Testing Framework for Persistent Memory
    Programs", ASPLOS 2019.

The pieces map onto the paper as follows:

``events``
    The trace vocabulary: PM operations (``write``, ``clwb``, ``sfence``,
    HOPS fences, ...) and checker records, each carrying source-site
    metadata (paper Section 4.3).
``interval_map`` / ``intervals``
    The ordered interval structure backing the shadow memory (the paper's
    "interval tree", Section 4.4).
``shadow``
    Shadow memory holding per-address-range persist/flush intervals and
    the global epoch timestamp.
``rules``
    Pluggable checking rules per persistency model: x86 (Section 4.4) and
    HOPS (Section 5.2).
``engine``
    The sequential checking engine that replays one trace against the
    rules and validates checkers.
``workers``
    The master/worker runtime that decouples program execution from
    checking (Section 4.4, "Execution of The Checking Engine").
``faults``
    Deterministic chaos injection for the checking pipeline: seed-driven
    fault plans (worker crash/hang/slow, queue stalls, wire corruption,
    FIFO starvation) and the ``Resilience`` recovery policy consulted by
    the supervised backends (see DESIGN.md section 6b).
``kfifo``
    The bounded kernel-FIFO channel used by kernel-module integration
    (Section 4.5).
``metrics`` / ``tracing`` / ``recovery``
    Observability: mergeable counters/gauges/histograms with an
    environment switch (``PMTEST_METRICS``), chrome://tracing span
    output, and typed recovery-event records (DESIGN.md section 7).
``tracker`` / ``api``
    Per-thread trace construction and the user-facing facade implementing
    the full function table of the paper (Table 2).
``checkers``
    High-level transaction checkers and performance checkers
    (Sections 5.1.1 and 5.1.2).
"""

from repro.core.api import PMTestSession
from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, SourceSite
from repro.core.metrics import (
    MetricsLevel,
    MetricsRegistry,
    make_registry,
    stage_breakdown,
)
from repro.core.recovery import RecoveryEvent, RecoveryKind
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import HOPSRules, PersistencyRules, X86Rules
from repro.core.tracing import Tracer, TracingError

__all__ = [
    "CheckingEngine",
    "Event",
    "HOPSRules",
    "Level",
    "MetricsLevel",
    "MetricsRegistry",
    "Op",
    "PMTestSession",
    "PersistencyRules",
    "RecoveryEvent",
    "RecoveryKind",
    "Report",
    "ReportCode",
    "SourceSite",
    "TestResult",
    "Tracer",
    "TracingError",
    "X86Rules",
    "make_registry",
    "stage_breakdown",
]
