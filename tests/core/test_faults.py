"""Tests for the deterministic chaos-injection subsystem."""

import pickle

import pytest

from repro.core.faults import (
    DEFAULT_RESILIENCE,
    FaultKind,
    FaultPlan,
    FaultPoint,
    FaultRule,
    RECOVERABLE_KINDS,
    Resilience,
    plan_from_seed,
)


class TestFaultRule:
    def test_matches_window(self):
        rule = FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=2, count=3)
        assert not rule.matches(FaultPoint.WORKER_BATCH, 1, None)
        assert rule.matches(FaultPoint.WORKER_BATCH, 2, None)
        assert rule.matches(FaultPoint.WORKER_BATCH, 4, None)
        assert not rule.matches(FaultPoint.WORKER_BATCH, 5, None)

    def test_matches_point(self):
        rule = FaultRule(FaultPoint.QUEUE_PUT, FaultKind.STALL)
        assert rule.matches(FaultPoint.QUEUE_PUT, 0, None)
        assert not rule.matches(FaultPoint.KFIFO_PUT, 0, None)

    def test_worker_filter(self):
        rule = FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, worker=1)
        assert rule.matches(FaultPoint.WORKER_BATCH, 0, 1)
        assert not rule.matches(FaultPoint.WORKER_BATCH, 0, 0)
        assert not rule.matches(FaultPoint.WORKER_BATCH, 0, None)

    def test_worker_none_matches_any(self):
        rule = FaultRule(FaultPoint.WORKER_BATCH, FaultKind.SLOW)
        assert rule.matches(FaultPoint.WORKER_BATCH, 0, 0)
        assert rule.matches(FaultPoint.WORKER_BATCH, 0, 7)
        assert rule.matches(FaultPoint.WORKER_BATCH, 0, None)


class TestFaultPlan:
    def test_fire_counts_hits_per_point_and_worker(self):
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=1)]
        )
        # Hit 0 does not match; hit 1 does.  Counters are per worker.
        assert plan.fire(FaultPoint.WORKER_BATCH, worker=0) is None
        assert plan.fire(FaultPoint.WORKER_BATCH, worker=1) is None
        rule = plan.fire(FaultPoint.WORKER_BATCH, worker=0)
        assert rule is not None and rule.kind is FaultKind.CRASH
        rule = plan.fire(FaultPoint.WORKER_BATCH, worker=1)
        assert rule is not None and rule.kind is FaultKind.CRASH

    def test_fire_unrelated_point_is_silent(self):
        plan = FaultPlan(rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL)])
        assert plan.fire(FaultPoint.QUEUE_PUT) is None

    def test_reset_forgets_hits(self):
        plan = FaultPlan(rules=[FaultRule(FaultPoint.SPAWN, FaultKind.FAIL)])
        assert plan.fire(FaultPoint.SPAWN) is not None
        assert plan.fire(FaultPoint.SPAWN) is None  # window passed
        plan.reset()
        assert plan.fire(FaultPoint.SPAWN) is not None

    def test_sleep_if_told_only_sleeps_for_delay_kinds(self):
        plan = FaultPlan(
            rules=[
                FaultRule(FaultPoint.KFIFO_PUT, FaultKind.STALL, delay=0.0),
                FaultRule(FaultPoint.QUEUE_PUT, FaultKind.FAIL, at=0),
            ]
        )
        # Neither raises nor hangs: STALL sleeps its (zero) delay, and a
        # non-delay kind is ignored by the convenience helper.
        plan.sleep_if_told(FaultPoint.KFIFO_PUT)
        plan.sleep_if_told(FaultPoint.QUEUE_PUT)

    def test_plan_is_picklable_with_hits(self):
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=1)]
        )
        plan.fire(FaultPoint.WORKER_BATCH, worker=0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rules == plan.rules
        # The clone carries the counters, so it continues the schedule.
        rule = clone.fire(FaultPoint.WORKER_BATCH, worker=0)
        assert rule is not None


class TestSeedDerivedPlans:
    def test_none_seed_is_no_plan(self):
        assert plan_from_seed(None) is None

    def test_same_seed_same_schedule(self):
        assert plan_from_seed(42).rules == plan_from_seed(42).rules

    def test_seed_recorded_on_plan(self):
        assert plan_from_seed(7).seed == 7

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 12345])
    def test_seed_plans_are_recoverable_only(self, seed):
        plan = plan_from_seed(seed)
        assert plan.rules
        for rule in plan.rules:
            assert rule.kind in RECOVERABLE_KINDS
            assert rule.point in FaultPoint.ALL

    def test_seed_plan_includes_worker_crash(self):
        # The chaos CI profile always exercises the respawn path.
        kinds = {rule.kind for rule in plan_from_seed(3).rules}
        assert FaultKind.CRASH in kinds

    def test_unknown_point_names_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            plan_from_seed(3, points=["worker.batch", "nope.nothing"])
        message = str(excinfo.value)
        assert "nope.nothing" in message
        # the error teaches the valid vocabulary
        for point in FaultPoint.ALL:
            assert point in message

    def test_unknown_points_rejected_even_without_seed(self):
        with pytest.raises(ValueError):
            plan_from_seed(None, points=["bogus"])

    def test_explicit_all_points_accepted(self):
        plan = plan_from_seed(9, points=list(FaultPoint.ALL))
        assert {rule.point for rule in plan.rules} == set(FaultPoint.ALL)

    def test_point_selection_restricts_plan(self):
        plan = plan_from_seed(9, points=["daemon.shed"])
        assert plan.rules
        assert {rule.point for rule in plan.rules} == {"daemon.shed"}

    def test_point_schedule_independent_of_other_points(self):
        # A point's rules depend only on (seed, point), not on which
        # other points ride along in the same plan.
        alone = plan_from_seed(5, points=["daemon.session_decode"]).rules
        together = [
            rule
            for rule in plan_from_seed(5, points=list(FaultPoint.ALL)).rules
            if rule.point == "daemon.session_decode"
        ]
        assert alone == together

    def test_daemon_points_in_registry(self):
        assert "daemon.accept" in FaultPoint.ALL
        assert "daemon.session_decode" in FaultPoint.ALL
        assert "daemon.shed" in FaultPoint.ALL

    def test_default_points_unchanged_by_allowlist_feature(self):
        # points=None must keep the exact legacy schedule: chaos CI
        # seeds are pinned to it.
        assert plan_from_seed(3, points=None).rules == plan_from_seed(3).rules
        legacy_points = {rule.point for rule in plan_from_seed(3).rules}
        assert "daemon.accept" not in legacy_points


class TestResilience:
    def test_default_policy(self):
        assert DEFAULT_RESILIENCE.check_timeout is None
        assert DEFAULT_RESILIENCE.max_retries == 2
        assert DEFAULT_RESILIENCE.fallback
        assert DEFAULT_RESILIENCE.supervised

    def test_unsupervised_when_everything_off(self):
        policy = Resilience(check_timeout=None, max_retries=0, fallback=False)
        assert not policy.supervised

    def test_watchdog_alone_is_supervised(self):
        policy = Resilience(check_timeout=1.0, max_retries=0, fallback=False)
        assert policy.supervised
