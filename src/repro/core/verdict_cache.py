"""Cross-trace verdict cache: fingerprint -> relocatable result template.

Structurally identical traces (same canonical form, see
:mod:`repro.core.canon`) provably produce the same verdict up to the
address relocation, so the engine can answer the second and every later
occurrence from a cache instead of replaying.  Entries are keyed by the
canonical fingerprint — pure content addressing — which is what makes
the cache trivially coherent under the recovery machinery: a trace
requeued to a different worker, or resubmitted to a degraded fallback
backend, either misses (fresh replay, correct by construction) or hits
an entry built from a trace with the *same* canonical form (correct by
the relocation argument).  There is no invalidation and there are no
stale entries, because entries never outlive the (rules, canonical
form) pair that defines them: each engine owns a private cache created
with it.

Templates store reports in **canonical** message form.  A template is
only stored after a round-trip validation: the fresh result is mapped
into canonical space and back, and must reproduce itself byte for byte
— anything non-relocatable (a hex literal outside the trace's address
segments) is declared uncacheable rather than cached wrong.  On a hit
the template is mapped through the *hitting* trace's relocation table,
so cached verdicts are byte-identical to a fresh replay.

Knobs
-----
``PMTEST_VERDICT_CACHE``
    ``off``/``0``/``false``/``no`` disables the cache; an integer sets
    the per-engine capacity; ``on``/``true``/``yes`` (or unset) keeps
    the default capacity.  The CLI mirrors this as
    ``--verdict-cache/--no-verdict-cache`` and ``--verdict-cache-size``.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.canon import _HEX_RE, Relocation
from repro.core.reports import Report, TestResult

#: Per-engine entry capacity when the cache is on and unsized.
DEFAULT_CACHE_SIZE = 1024

ENV_VAR = "PMTEST_VERDICT_CACHE"

_OFF_VALUES = frozenset({"off", "0", "false", "no"})
_ON_VALUES = frozenset({"on", "true", "yes", ""})


def resolve_cache_size(
    enabled: Optional[bool] = None, size: Optional[int] = None
) -> int:
    """Resolve the cache knobs to an effective capacity (0 = disabled).

    ``enabled`` is the explicit on/off request (``None``: consult
    ``PMTEST_VERDICT_CACHE``, default on); ``size`` overrides the
    capacity when the cache is on.
    """
    if size is not None and size < 0:
        raise ValueError("verdict cache size must be >= 0")
    if enabled is False:
        return 0
    if enabled is None:
        env = os.environ.get(ENV_VAR)
        if env is not None:
            value = env.strip().lower()
            if value in _OFF_VALUES:
                return 0
            if value not in _ON_VALUES:
                try:
                    env_size = int(value)
                except ValueError:
                    raise ValueError(
                        f"bad {ENV_VAR} value {env!r}: expected on/off "
                        "or an integer capacity"
                    ) from None
                if env_size <= 0:
                    return 0
                return size if size is not None else env_size
    if size is not None:
        return size
    return DEFAULT_CACHE_SIZE


class VerdictTemplate:
    """A relocatable per-trace result: reports in canonical form.

    ``queries``/``scanned``/``shadow_segments`` replay the interval-map
    accounting a fresh full-metrics replay would have produced — those
    counts are a function of the canonical form (segment ordering and
    overlap), so they relocate for free.  They are ``None`` when the
    template was built without full metrics.

    ``compiled`` is the hit-path rendering plan: one
    ``(level, code, site, related_site, seq, pieces, values)`` entry
    per canonical report, where ``pieces`` are the message fragments
    around its hex literals and ``values`` the literals as canonical
    ints.  Rehydration joins the fragments around each relocated
    literal instead of re-running the regex rewrite on every hit.
    """

    __slots__ = (
        "reports",
        "compiled",
        "checkers_evaluated",
        "queries",
        "scanned",
        "shadow_segments",
    )

    def __init__(
        self,
        reports: Tuple[Report, ...],
        checkers_evaluated: int,
        queries: Optional[int] = None,
        scanned: Optional[int] = None,
        shadow_segments: Optional[int] = None,
    ) -> None:
        self.reports = reports
        self.compiled = tuple(
            (
                report.level,
                report.code,
                report.site,
                report.related_site,
                report.seq,
                tuple(_HEX_RE.split(report.message)),
                tuple(int(m, 16) for m in _HEX_RE.findall(report.message)),
            )
            for report in reports
        )
        self.checkers_evaluated = checkers_evaluated
        self.queries = queries
        self.scanned = scanned
        self.shadow_segments = shadow_segments


def build_template(
    result: TestResult,
    relocation: Relocation,
    trace_id: int,
    queries: Optional[int] = None,
    scanned: Optional[int] = None,
    shadow_segments: Optional[int] = None,
) -> Optional[VerdictTemplate]:
    """Turn a fresh single-trace result into a relocatable template.

    Returns ``None`` — uncacheable — when any report message carries a
    hex literal outside the relocation table, or when the round trip
    through canonical space fails to reproduce the fresh reports byte
    for byte.  The fresh result is never modified.
    """
    canon_reports: List[Report] = []
    for report in result.reports:
        message = relocation.rewrite_to_canon(report.message)
        if message is None:
            return None
        canon_reports.append(
            Report(
                level=report.level,
                code=report.code,
                message=message,
                site=report.site,
                related_site=report.related_site,
                trace_id=-1,
                seq=report.seq,
            )
        )
    template = VerdictTemplate(
        tuple(canon_reports),
        result.checkers_evaluated,
        queries=queries,
        scanned=scanned,
        shadow_segments=shadow_segments,
    )
    # Round-trip validation: a template we cannot rehydrate into the
    # exact fresh result must not be cached.
    check = rehydrate(template, relocation, trace_id, result.events_checked)
    if check is None or check.reports != result.reports:
        return None
    return template


def rehydrate(
    template: VerdictTemplate,
    relocation: Relocation,
    trace_id: int,
    events_checked: int,
) -> Optional[TestResult]:
    """Materialize a cached verdict for a concrete trace.

    Maps every canonical report message through the hitting trace's
    relocation table and stamps the trace id.  Returns ``None`` when a
    canonical literal is not covered by this trace's table (the
    fingerprint should make that impossible; the ``None`` forces a
    fresh replay rather than a wrong answer).

    Messages are rendered from the template's precompiled fragments —
    the relocation math for each literal is inlined here because this
    is the cache hit path, where regex rewriting and per-literal method
    calls were the dominant cost.
    """
    segments = relocation.segments
    canon_los = relocation._canon_los
    # Reports within one trace keep citing the same few addresses, so a
    # per-call memo of formatted literals skips most of the relocation
    # and formatting work.  Single-segment traces (the common shape for
    # repeated allocator-style workloads) skip the bisect entirely.
    memo: dict = {}
    single = len(segments) == 1
    if single:
        lo0, hi0, canon0 = segments[0]
        limit0 = canon0 + (hi0 - lo0)
        delta0 = lo0 - canon0
    reports: List[Report] = []
    append = reports.append
    for level, code, site, related_site, seq, pieces, values in (
        template.compiled
    ):
        if values:
            parts = [pieces[0]]
            k = 1
            for value in values:
                text = memo.get(value)
                if text is None:
                    if single:
                        if value < canon0 or value > limit0:
                            return None
                        orig = value + delta0
                    else:
                        i = bisect_right(canon_los, value) - 1
                        if i < 0:
                            return None
                        lo, hi, canon = segments[i]
                        if value > canon + (hi - lo):  # closed range
                            return None
                        orig = lo + (value - canon)
                    text = memo[value] = format(orig, "#x")
                parts.append(text)
                parts.append(pieces[k])
                k += 1
            message = "".join(parts)
        else:
            message = pieces[0]
        append(Report(level, code, message, site, related_site, trace_id, seq))
    return TestResult(
        reports=reports,
        traces_checked=1,
        events_checked=events_checked,
        checkers_evaluated=template.checkers_evaluated,
    )


class VerdictCache:
    """Bounded LRU of fingerprint -> :class:`VerdictTemplate`.

    Single-owner by design: each engine (one per worker thread/process)
    creates its own cache, so no locking is needed and the hit/miss/
    eviction counters can be plain ints.  The owning engine mirrors
    them into its :class:`~repro.core.metrics.MetricsRegistry`, which
    merges per-worker counts over the existing wire.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "uncacheable",
                 "_entries")

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError("verdict cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: results that failed template building or round-trip validation
        self.uncacheable = 0
        self._entries: "OrderedDict[bytes, VerdictTemplate]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fingerprint: bytes) -> Optional[VerdictTemplate]:
        """Return the template for ``fingerprint`` (counts hit/miss)."""
        template = self._entries.get(fingerprint)
        if template is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return template

    def store(self, fingerprint: bytes, template: VerdictTemplate) -> int:
        """Insert an entry; returns how many entries were evicted."""
        entries = self._entries
        entries[fingerprint] = template
        entries.move_to_end(fingerprint)
        evicted = 0
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
