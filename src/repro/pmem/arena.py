"""A first-fit allocator over a PM address range.

Libraries in this repository (the PMDK-like pool, the Mnemosyne region,
the PMFS block space) each manage a slice of the simulated PM.  This
arena provides the shared allocation machinery: first-fit with free-list
coalescing and configurable alignment.

The allocator's own metadata is volatile, mirroring allocators whose heap
structure is rebuilt on recovery; what must survive a crash (object
contents, roots, logs) is written through PM stores by the libraries
themselves, so allocator metadata durability is out of scope here —
PMDK's real fault-tolerant allocator is orthogonal to what PMTest checks.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Tuple


class OutOfPMError(MemoryError):
    """The arena cannot satisfy an allocation."""


class Arena:
    """First-fit allocator over ``[base, base + size)``."""

    def __init__(self, base: int, size: int, align: int = 8) -> None:
        if size <= 0:
            raise ValueError("arena size must be positive")
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        self.base = base
        self.size = size
        self.align = align
        #: free extents ``(start, length)``, sorted by start
        self._free: List[Tuple[int, int]] = [(base, size)]
        #: live allocations: start -> length
        self._live: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    # ------------------------------------------------------------------
    def alloc(self, size: int, align: int = 0) -> int:
        """Allocate ``size`` bytes; returns the start address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        align = align or self.align
        size = _round_up(size, self.align)
        for i, (start, length) in enumerate(self._free):
            aligned = _round_up(start, align)
            padding = aligned - start
            if length < padding + size:
                continue
            remainder = length - padding - size
            pieces: List[Tuple[int, int]] = []
            if padding:
                pieces.append((start, padding))
            if remainder:
                pieces.append((aligned + size, remainder))
            self._free[i : i + 1] = pieces
            self._live[aligned] = size
            return aligned
        raise OutOfPMError(
            f"cannot allocate {size} bytes (free: {self.free_bytes}, "
            f"largest request must fit one extent)"
        )

    def free(self, addr: int) -> None:
        """Release an allocation made by :meth:`alloc`."""
        try:
            size = self._live.pop(addr)
        except KeyError:
            raise ValueError(f"free of unallocated address {addr:#x}") from None
        insort(self._free, (addr, size))
        self._coalesce()

    def size_of(self, addr: int) -> int:
        """Size of a live allocation."""
        return self._live[addr]

    def reset(self) -> None:
        """Drop all allocations (pool re-creation)."""
        self._free = [(self.base, self.size)]
        self._live.clear()

    # ------------------------------------------------------------------
    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((start, length))
        self._free = merged


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
