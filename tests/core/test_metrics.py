"""Tests for the metrics registry: buckets, merging, wire/JSON forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    ENV_VAR,
    NUM_BUCKETS,
    Histogram,
    MetricsLevel,
    MetricsRegistry,
    bucket_bound,
    bucket_index,
    level_from_env,
    make_registry,
    stage_breakdown,
)
from repro.core.traceio import (
    TraceDecodeError,
    decode_registry,
    encode_registry,
)


class TestBuckets:
    def test_zero_lands_in_bucket_zero(self):
        assert bucket_index(0) == 0

    def test_negative_clamps_to_bucket_zero(self):
        assert bucket_index(-5) == 0

    def test_small_values(self):
        # bucket i holds values with bit_length() == i: [2**(i-1), 2**i)
        assert bucket_index(1) == 1
        assert bucket_index(2) == 2
        assert bucket_index(3) == 2
        assert bucket_index(4) == 3
        assert bucket_index(1023) == 10
        assert bucket_index(1024) == 11

    def test_overflow_bucket(self):
        huge = 1 << 200
        assert bucket_index(huge) == NUM_BUCKETS - 1
        assert bucket_index(2**62) == 63
        assert bucket_index(2**63) == NUM_BUCKETS - 1

    def test_bucket_bounds_are_exclusive_upper(self):
        for i in range(1, 10):
            below = bucket_bound(i) - 1
            assert bucket_index(below) == i
            assert bucket_index(bucket_bound(i)) == i + 1

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_every_value_has_a_bucket(self, value):
        assert 0 <= bucket_index(value) < NUM_BUCKETS


class TestHistogram:
    def test_record_zero_nanosecond_span(self):
        h = Histogram()
        h.record(0)
        assert h.count == 1
        assert h.total == 0
        assert h.counts[0] == 1
        assert h.vmin == 0 and h.vmax == 0

    def test_negative_clamped_not_raised(self):
        h = Histogram()
        h.record(-7)  # clock skew must not blow up a hot path
        assert h.counts[0] == 1
        assert h.total == 0
        assert h.vmin == 0

    def test_overflow_recorded_in_last_bucket(self):
        h = Histogram()
        h.record(1 << 100)
        assert h.counts[NUM_BUCKETS - 1] == 1
        assert h.total == 1 << 100

    def test_mean(self):
        h = Histogram()
        assert h.mean == 0.0
        h.record(10)
        h.record(30)
        assert h.mean == 20.0

    def test_merge_sums_buckets_and_extremes(self):
        a, b = Histogram(), Histogram()
        a.record(5)
        b.record(1000)
        b.record(2)
        a.merge(b)
        assert a.count == 3
        assert a.total == 1007
        assert a.vmin == 2 and a.vmax == 1000
        assert sum(a.counts) == 3

    def test_merge_with_empty_is_identity(self):
        a = Histogram()
        a.record(42)
        before = (list(a.counts), a.count, a.total, a.vmin, a.vmax)
        a.merge(Histogram())
        assert (list(a.counts), a.count, a.total, a.vmin, a.vmax) == before


class TestQuantile:
    def test_empty_histogram_is_zero(self):
        h = Histogram()
        assert h.quantile(0.0) == 0
        assert h.quantile(0.5) == 0
        assert h.quantile(1.0) == 0

    def test_out_of_range_q_raises(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bucket_zero_reads_as_zero(self):
        h = Histogram()
        h.record(0)
        h.record(-3)
        assert h.quantile(0.5) == 0
        assert h.quantile(0.99) == 0

    def test_single_value_clamps_to_observation(self):
        h = Histogram()
        h.record(100)  # bucket [64, 128): naive upper edge would be 128
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 100

    def test_bucket_one_lower_edge_is_one(self):
        h = Histogram()
        h.record(1)
        assert h.quantile(0.5) == 1

    def test_interpolates_within_a_bucket(self):
        h = Histogram()
        # 100 samples spread across bucket 11 = [1024, 2048).
        for v in range(1024, 2024, 10):
            h.record(v)
        p50 = h.quantile(0.50)
        p99 = h.quantile(0.99)
        # Interpolation should land mid-bucket, not at the far edge.
        assert 1024 <= p50 < 1800
        assert p50 < p99 <= 2023

    def test_monotonic_and_bounded_by_extremes(self):
        h = Histogram()
        for v in (3, 17, 40, 900, 5000, 65000):
            h.record(v)
        qs = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert qs == sorted(qs)
        assert all(h.vmin <= value <= h.vmax for value in qs)

    def test_quantiles_across_buckets(self):
        h = Histogram()
        for _ in range(90):
            h.record(100)
        for _ in range(10):
            h.record(100_000)
        assert h.quantile(0.5) <= 128  # inside the small bucket
        assert h.quantile(0.99) > 50_000  # lands in the tail bucket


class TestLevels:
    def test_off_registry_must_not_exist(self):
        with pytest.raises(ValueError):
            MetricsRegistry(MetricsLevel.OFF)

    def test_make_registry_off_is_none(self):
        assert make_registry(MetricsLevel.OFF) is None

    def test_make_registry_full(self):
        reg = make_registry(MetricsLevel.FULL)
        assert reg is not None and reg.full

    def test_level_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert level_from_env() is MetricsLevel.OFF
        monkeypatch.setenv(ENV_VAR, "basic")
        assert level_from_env() is MetricsLevel.BASIC
        monkeypatch.setenv(ENV_VAR, "  FULL  ")
        assert level_from_env() is MetricsLevel.FULL
        monkeypatch.setenv(ENV_VAR, "")
        assert level_from_env(MetricsLevel.BASIC) is MetricsLevel.BASIC

    def test_level_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "verbose")
        with pytest.raises(ValueError, match=ENV_VAR):
            level_from_env()


def _registries(draw_level=True):
    """Hypothesis strategy for small populated registries."""
    names = st.sampled_from(
        ["a.count", "a.ns", "queue.depth", "x", "stage.drain.ns"]
    )
    level = (
        st.sampled_from([MetricsLevel.BASIC, MetricsLevel.FULL])
        if draw_level
        else st.just(MetricsLevel.BASIC)
    )

    @st.composite
    def build(draw):
        reg = MetricsRegistry(draw(level))
        for name in draw(st.lists(names, max_size=4)):
            reg.counter(name).inc(draw(st.integers(0, 1000)))
        for name in draw(st.lists(names, max_size=3)):
            reg.gauge(name).observe(draw(st.integers(0, 1000)))
        for name in draw(st.lists(names, max_size=3)):
            h = reg.histogram(name)
            for v in draw(st.lists(st.integers(-5, 2**66), max_size=5)):
                h.record(v)
        return reg

    return build()


class TestRegistryMerge:
    @settings(max_examples=60, deadline=None)
    @given(_registries(), _registries())
    def test_merge_is_commutative(self, a, b):
        left = a.snapshot().merge(b.snapshot())
        right = b.snapshot().merge(a.snapshot())
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=30, deadline=None)
    @given(_registries(), _registries(), _registries())
    def test_merge_is_associative(self, a, b, c):
        one = a.snapshot().merge(b.snapshot()).merge(c.snapshot())
        two = a.snapshot().merge(b.snapshot().merge(c.snapshot()))
        assert one.to_dict() == two.to_dict()

    def test_merge_upgrades_level_to_full(self):
        basic = MetricsRegistry(MetricsLevel.BASIC)
        full = MetricsRegistry(MetricsLevel.FULL)
        assert basic.merge(full).level is MetricsLevel.FULL

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        assert reg.merge(None) is reg
        assert reg.counter_value("n") == 3

    def test_snapshot_does_not_alias(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        reg.histogram("h").record(4)
        snap = reg.snapshot()
        reg.counter("n").inc(1)
        reg.histogram("h").record(4)
        assert snap.counter_value("n") == 1
        assert snap.histograms()["h"].count == 1

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        reg.gauge("g").observe(2)
        reg.histogram("h").record(3)
        reg.clear()
        assert not reg


class TestSerialization:
    @settings(max_examples=50, deadline=None)
    @given(_registries())
    def test_wire_roundtrip(self, reg):
        decoded = decode_registry(encode_registry(reg))
        assert decoded.to_dict() == reg.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(_registries())
    def test_json_roundtrip(self, reg):
        restored = MetricsRegistry.from_dict(reg.to_dict())
        assert restored.to_dict() == reg.to_dict()

    def test_decode_rejects_garbage(self):
        for wire in (
            None,
            42,
            (),
            ("off", (), (), ()),  # OFF must not cross the wire
            ("nope", (), (), ()),
            ("basic", ((42, 1),), (), ()),  # non-string name
            ("basic", (("n", "x"),), (), ()),  # non-int value
        ):
            with pytest.raises(TraceDecodeError):
                decode_registry(wire)

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"format": "something-else"})
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict(
                {"format": "pmtest-metrics", "version": 99}
            )


class TestStageBreakdown:
    def test_rows_in_pipeline_order(self):
        reg = MetricsRegistry(MetricsLevel.FULL)
        reg.counter("stage.shadow_update.ns").inc(500)
        reg.counter("stage.shadow_update.count").inc(4)
        reg.counter("stage.drain.count").inc(1)
        rows = stage_breakdown(reg)
        assert [label for label, _, _ in rows] == [
            "trace ingest",
            "shadow update",
            "checker validate",
            "drain",
        ]
        assert rows[1] == ("shadow update", 500, 4)
        assert rows[3] == ("drain", 0, 1)
