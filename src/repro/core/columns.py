"""Struct-of-arrays trace storage for the columnar replay engine.

The object engine materializes one :class:`~repro.core.events.Event`
per trace record — convenient, but on million-event traces the replay
hot path pays for one dataclass allocation, one enum attribute read and
one dict dispatch per record.  :class:`ColumnarTrace` stores the same
records as parallel columns:

``ops``
    one opcode byte per event (``Op.value``, always 1..255);
``flags``
    the wire-format presence bits (:data:`repro.core.traceio._EV_RANGE1`
    and friends) — free to keep from decode, recomputable otherwise;
``addrs``/``sizes``/``addr2s``/``size2s``
    64-bit signed columns (``array('q')``, falling back to a plain list
    when a value does not fit — property-based tests feed arbitrary
    ints);
``site_idx``
    per-event index into the interned ``site_table`` (``-1``: no site);
``seqs``
    explicit per-event sequence numbers, or ``None`` when every event's
    ``seq`` equals its index (the overwhelmingly common case — freshly
    recorded traces are always in identity order).

No per-event Python object exists anywhere in this layout; the columnar
decoder in :mod:`repro.core.traceio` fills these columns straight from
PMTB bytes.

Epoch sharding rides on the same type: a *shard* is the prefix of a
trace up to a fence-delimited epoch boundary, with ``check_from``
marking where real checking starts.  The checker silently replays
``[0, check_from)`` to reconstruct shadow state and fully evaluates
``[check_from, len)``, so concatenating per-shard reports in shard
order is byte-identical to one sequential replay (see
``DESIGN.md`` §10).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import List, Optional, Sequence, Union

from repro.core.events import (
    Event,
    FENCE_OPS,
    FLUSH_OPS,
    Op,
    SourceSite,
    Trace,
)

__all__ = ["ColumnarTrace", "OPS_BY_VALUE"]

#: ``op byte -> Op`` dispatch table (index 0 unused; enum values are 1-based).
OPS_BY_VALUE: List[Optional[Op]] = [None] * (max(op.value for op in Op) + 1)
for _op in Op:
    OPS_BY_VALUE[_op.value] = _op
del _op

OP_WRITE = Op.WRITE.value
OP_WRITE_NT = Op.WRITE_NT.value
OP_SFENCE = Op.SFENCE.value
OP_CHECK_PERSIST = Op.CHECK_PERSIST.value
OP_TX_BEGIN = Op.TX_BEGIN.value
OP_TX_END = Op.TX_END.value
OP_TX_ADD = Op.TX_ADD.value
OP_EXCLUDE = Op.EXCLUDE.value
OP_INCLUDE = Op.INCLUDE.value
OP_TX_CHECK_START = Op.TX_CHECK_START.value
OP_TX_CHECK_END = Op.TX_CHECK_END.value

#: Closed byte ranges the run-finding loops compare against.  The
#: assertions pin the enum layout those comparisons assume; they fire at
#: import time if :class:`Op` is ever reordered.
WRITE_MAX = max(OP_WRITE, OP_WRITE_NT)
FLUSH_MIN = min(op.value for op in FLUSH_OPS)
FLUSH_MAX = max(op.value for op in FLUSH_OPS)
FENCE_MIN = min(op.value for op in FENCE_OPS)
FENCE_MAX = max(op.value for op in FENCE_OPS)
assert {OP_WRITE, OP_WRITE_NT} == set(range(1, WRITE_MAX + 1))
assert {op.value for op in FLUSH_OPS} == set(range(FLUSH_MIN, FLUSH_MAX + 1))
assert {op.value for op in FENCE_OPS} == set(range(FENCE_MIN, FENCE_MAX + 1))
assert WRITE_MAX + 1 == FLUSH_MIN and FLUSH_MAX + 1 == FENCE_MIN

_EV_RANGE1 = 0x01
_EV_RANGE2 = 0x02
_EV_SITE = 0x04
_EV_SEQ = 0x08

# vectorized kernels use numpy when present; never required.  Routed
# through npcompat so PMTEST_NO_NUMPY=1 forces the scalar fallbacks.
from repro.core.npcompat import load_numpy

_np = load_numpy()

#: 256-entry ``bytes.translate`` table marking the opcodes that can
#: change the :meth:`ColumnarTrace.shard_cuts` state machine: fences
#: (cut candidates) and the transaction/checker-scope brackets.  Every
#: other opcode maps to ``\x00`` so one C-speed translate + nonzero
#: scan finds the handful of positions the Python loop must visit.
_CUT_OPS = bytes(
    1
    if (
        FENCE_MIN <= b <= FENCE_MAX
        or b in (OP_TX_BEGIN, OP_TX_END, OP_TX_CHECK_START, OP_TX_CHECK_END)
    )
    else 0
    for b in range(256)
)

IntColumn = Union["array", List[int]]


def _pack(values: Sequence[int]) -> IntColumn:
    """64-bit column, falling back to a list for out-of-range ints."""
    try:
        return array("q", values)
    except OverflowError:
        return list(values)


class ColumnarTrace:
    """One trace (or one epoch shard of a trace) in columnar form."""

    __slots__ = (
        "trace_id",
        "thread_name",
        "ops",
        "flags",
        "addrs",
        "sizes",
        "addr2s",
        "size2s",
        "site_idx",
        "site_table",
        "seqs",
        "check_from",
        "is_shard",
    )

    def __init__(
        self,
        trace_id: int,
        thread_name: str,
        ops: bytearray,
        flags: bytearray,
        addrs: Sequence[int],
        sizes: Sequence[int],
        addr2s: Sequence[int],
        size2s: Sequence[int],
        site_idx: List[int],
        site_table: List[SourceSite],
        seqs: Optional[Sequence[int]] = None,
        check_from: int = 0,
        is_shard: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.thread_name = thread_name
        self.ops = ops
        self.flags = flags
        self.addrs = _pack(addrs) if isinstance(addrs, list) else addrs
        self.sizes = _pack(sizes) if isinstance(sizes, list) else sizes
        self.addr2s = _pack(addr2s) if isinstance(addr2s, list) else addr2s
        self.size2s = _pack(size2s) if isinstance(size2s, list) else size2s
        self.site_idx = site_idx
        self.site_table = site_table
        self.seqs = seqs
        self.check_from = check_from
        self.is_shard = is_shard

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shard = (
            f", check_from={self.check_from}" if self.is_shard else ""
        )
        return (
            f"ColumnarTrace(id={self.trace_id}, events={len(self.ops)}"
            f"{shard})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnarize an object-form trace (sites interned by identity,
        then by content — tracers reuse one site object per call site)."""
        events = trace.events
        n = len(events)
        ops = bytearray(n)
        flags = bytearray(n)
        addrs = [0] * n
        sizes = [0] * n
        addr2s = [0] * n
        size2s = [0] * n
        site_idx = [-1] * n
        site_table: List[SourceSite] = []
        by_id: dict = {}
        by_content: dict = {}
        seqs: Optional[List[int]] = None
        for i, event in enumerate(events):
            ops[i] = event.op.value
            f = 0
            addr = event.addr
            size = event.size
            if addr or size:
                f |= _EV_RANGE1
                addrs[i] = addr
                sizes[i] = size
            addr = event.addr2
            size = event.size2
            if addr or size:
                f |= _EV_RANGE2
                addr2s[i] = addr
                size2s[i] = size
            site = event.site
            if site is not None:
                f |= _EV_SITE
                ref = by_id.get(id(site))
                if ref is None:
                    ref = by_content.get(site)
                    if ref is None:
                        ref = by_content[site] = len(site_table)
                        site_table.append(site)
                    by_id[id(site)] = ref
                site_idx[i] = ref
            seq = event.seq
            if seq != i:
                f |= _EV_SEQ
                if seqs is None:
                    seqs = list(range(i))
                seqs.append(seq)
            elif seqs is not None:
                seqs.append(seq)
            flags[i] = f
        return cls(
            trace.trace_id,
            trace.thread_name,
            ops,
            flags,
            addrs,
            sizes,
            addr2s,
            size2s,
            site_idx,
            site_table,
            _pack(seqs) if seqs is not None else None,
        )

    def to_trace(self) -> Trace:
        """Materialize back into object form (fallback interop path)."""
        trace = Trace(self.trace_id, thread_name=self.thread_name)
        events = trace.events
        table = self.site_table
        for i in range(len(self.ops)):
            events.append(
                Event(
                    OPS_BY_VALUE[self.ops[i]],
                    self.addrs[i],
                    self.sizes[i],
                    self.addr2s[i],
                    self.size2s[i],
                    table[self.site_idx[i]] if self.site_idx[i] >= 0 else None,
                    self.seqs[i] if self.seqs is not None else i,
                )
            )
        return trace

    # ------------------------------------------------------------------
    # Per-event access (scratch-based: no allocation)
    # ------------------------------------------------------------------
    def site_at(self, i: int) -> Optional[SourceSite]:
        ref = self.site_idx[i]
        return self.site_table[ref] if ref >= 0 else None

    def seq_at(self, i: int) -> int:
        return self.seqs[i] if self.seqs is not None else i

    def fill(self, i: int, scratch: Event) -> Event:
        """Fill a reusable scratch :class:`Event` with record ``i``."""
        scratch.op = OPS_BY_VALUE[self.ops[i]]
        scratch.addr = self.addrs[i]
        scratch.size = self.sizes[i]
        scratch.addr2 = self.addr2s[i]
        scratch.size2 = self.size2s[i]
        ref = self.site_idx[i]
        scratch.site = self.site_table[ref] if ref >= 0 else None
        scratch.seq = self.seqs[i] if self.seqs is not None else i
        return scratch

    def event_tuples(self) -> List[tuple]:
        """Events as the 7-tuple wire form of ``traceio.encode_event``."""
        out = []
        table = self.site_table
        seqs = self.seqs
        for i in range(len(self.ops)):
            ref = self.site_idx[i]
            site = table[ref] if ref >= 0 else None
            out.append(
                (
                    self.ops[i],
                    self.addrs[i],
                    self.sizes[i],
                    self.addr2s[i],
                    self.size2s[i],
                    (site.file, site.line, site.function)
                    if site is not None
                    else None,
                    seqs[i] if seqs is not None else i,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Row selection (coalescing, sharding)
    # ------------------------------------------------------------------
    def take(self, indices: List[int]) -> "ColumnarTrace":
        """A new trace holding rows ``indices`` with their original seqs
        (the coalescer drops dead writes but must preserve numbering)."""
        seqs = self.seqs
        return ColumnarTrace(
            self.trace_id,
            self.thread_name,
            bytearray(self.ops[i] for i in indices),
            bytearray(self.flags[i] for i in indices),
            [self.addrs[i] for i in indices],
            [self.sizes[i] for i in indices],
            [self.addr2s[i] for i in indices],
            [self.size2s[i] for i in indices],
            [self.site_idx[i] for i in indices],
            self.site_table,
            _pack([seqs[i] if seqs is not None else i for i in indices]),
            self.check_from,
            self.is_shard,
        )

    def prefix(self, end: int, check_from: int) -> "ColumnarTrace":
        """The shard ``[check_from, end)``: prefix columns plus the mark
        where silent state reconstruction stops and checking starts."""
        seqs = self.seqs
        return ColumnarTrace(
            self.trace_id,
            self.thread_name,
            bytearray(self.ops[:end]),
            bytearray(self.flags[:end]),
            self.addrs[:end],
            self.sizes[:end],
            self.addr2s[:end],
            self.size2s[:end],
            self.site_idx[:end],
            self.site_table,
            seqs[:end] if seqs is not None else None,
            check_from,
            True,
        )

    # ------------------------------------------------------------------
    # Epoch sharding
    # ------------------------------------------------------------------
    def shard_cuts(self) -> List[int]:
        """Indices where the trace may be split across workers.

        A cut point sits immediately after an ordering fence, outside
        any transaction and outside any open ``TX_CHECKER`` scope —
        exactly the positions where per-shard report streams concatenate
        into the sequential stream (no report can span the cut, and the
        end-of-shard implicit checker close can never fire early).

        Vectorized: one ``bytes.translate`` marks the fence/bracket
        opcodes (:data:`_CUT_OPS`) and the ordering sweep's state
        machine then visits only those positions — found with
        ``numpy.flatnonzero`` when numpy is present and with C-speed
        ``bytes.find`` hops otherwise.  Output is byte-identical to
        walking every event (the state only changes on marked bytes).
        """
        ops = self.ops
        n = len(ops)
        if n == 0:
            return []
        marked = bytes(ops).translate(_CUT_OPS)
        cuts: List[int] = []
        depth = 0
        check = False
        fence_min = FENCE_MIN
        fence_max = FENCE_MAX
        append = cuts.append
        if _np is not None:
            positions = _np.flatnonzero(
                _np.frombuffer(marked, dtype=_np.uint8)
            ).tolist()
        else:
            positions = []
            pos = marked.find(b"\x01")
            while pos != -1:
                positions.append(pos)
                pos = marked.find(b"\x01", pos + 1)
        for i in positions:
            b = ops[i]
            if fence_min <= b <= fence_max:
                if depth == 0 and not check and i + 1 < n:
                    append(i + 1)
            elif b == OP_TX_BEGIN:
                depth += 1
            elif b == OP_TX_END:
                if depth:
                    depth -= 1
            elif b == OP_TX_CHECK_START:
                check = True
            else:  # OP_TX_CHECK_END: the only other marked opcode
                check = False
        return cuts

    def split(self, num_shards: int) -> List["ColumnarTrace"]:
        """Split into up to ``num_shards`` epoch shards (possibly fewer
        when the trace has too few eligible cut points; ``[self]`` when
        no split is possible or worthwhile)."""
        n = len(self.ops)
        if num_shards <= 1 or n == 0 or self.is_shard or self.check_from:
            return [self]
        cuts = self.shard_cuts()
        if not cuts:
            return [self]
        chosen: List[int] = []
        prev = 0
        for k in range(1, num_shards):
            ideal = k * n // num_shards
            pos = bisect_left(cuts, ideal)
            best = None
            for cand in cuts[max(0, pos - 1):pos + 1]:
                if cand <= prev:
                    continue
                if best is None or abs(cand - ideal) < abs(best - ideal):
                    best = cand
            if best is not None:
                chosen.append(best)
                prev = best
        if not chosen:
            return [self]
        bounds = [0] + chosen + [n]
        return [
            self.prefix(bounds[k + 1], bounds[k])
            for k in range(len(bounds) - 1)
        ]

    # ------------------------------------------------------------------
    # Optional numpy view (analysis workflows; never on the hot path)
    # ------------------------------------------------------------------
    def as_numpy(self) -> Optional[dict]:
        """The integer columns as numpy arrays, or ``None`` without numpy."""
        numpy = load_numpy()
        if numpy is None:
            return None
        return {
            "ops": numpy.frombuffer(bytes(self.ops), dtype=numpy.uint8),
            "flags": numpy.frombuffer(bytes(self.flags), dtype=numpy.uint8),
            "addrs": numpy.asarray(self.addrs, dtype=numpy.int64),
            "sizes": numpy.asarray(self.sizes, dtype=numpy.int64),
            "addr2s": numpy.asarray(self.addr2s, dtype=numpy.int64),
            "size2s": numpy.asarray(self.size2s, dtype=numpy.int64),
            "seqs": (
                numpy.asarray(self.seqs, dtype=numpy.int64)
                if self.seqs is not None
                else numpy.arange(len(self.ops), dtype=numpy.int64)
            ),
        }
