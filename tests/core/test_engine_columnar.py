"""Differential suite: the columnar engine never changes a verdict.

The contract under test (DESIGN.md §10): ``--engine columnar`` is a
pure performance knob.  For any trace — well-formed or structurally
invalid — the columnar engine produces the same wire-encoded
:class:`TestResult` (reports in the same order with the same messages),
the same counter fields, the same merged metrics, and the same
exceptions as the object engine, across every backend, transport and
verdict-cache configuration.  The replay fast paths this pins down:

* inline write / write+writeback fusion / flush / sfence dispatch,
* the inline ``isPersist`` pass path (fall-through on failure),
* epoch-batched sort-and-sweep write runs,
* columnar dead-write coalescing and canonical fingerprints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import ColumnarTrace
from repro.core.engine import CheckingEngine
from repro.core.engine_columnar import (
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    ColumnarCheckingEngine,
    make_engine,
    resolve_engine_name,
)
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.rules import X86Rules
from repro.core.traceio import encode_result
from repro.core.workers import WorkerPool

# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------

_SITES = [
    None,
    SourceSite("alloc.c", 41, "alloc"),
    SourceSite("log.c", 7, "append"),
]

_WRITES = [Op.WRITE, Op.WRITE_NT]
_FLUSHES = [Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH]


@st.composite
def _events(draw, allow_invalid: bool = True):
    """Random event list over a small address window.

    Sizes may be zero (structurally invalid — both engines must raise
    the same ``ValueError``), transactions and checker scopes are kept
    balanced, and addresses collide aggressively so that dead writes,
    duplicate flushes, unnecessary writebacks and failing persists all
    actually occur.
    """
    n = draw(st.integers(min_value=1, max_value=28))
    min_size = 0 if allow_invalid else 1
    events = []
    tx_depth = 0
    tx_check = False
    for seq in range(n):
        kind = draw(st.integers(min_value=0, max_value=9))
        site = draw(st.sampled_from(_SITES))
        addr = 0x1000 + draw(st.integers(min_value=0, max_value=96))
        size = draw(st.integers(min_value=min_size, max_value=24))
        if kind <= 2:
            op = draw(st.sampled_from(_WRITES))
            events.append(Event(op, addr, size, site=site, seq=seq))
        elif kind == 3:
            op = draw(st.sampled_from(_FLUSHES))
            events.append(Event(op, addr, size, site=site, seq=seq))
        elif kind == 4:
            events.append(Event(Op.SFENCE, site=site, seq=seq))
        elif kind == 5:
            events.append(Event(Op.CHECK_PERSIST, addr, size, site=site,
                                seq=seq))
        elif kind == 6:
            addr2 = 0x1000 + draw(st.integers(min_value=0, max_value=96))
            size2 = draw(st.integers(min_value=min_size, max_value=24))
            events.append(Event(Op.CHECK_ORDER, addr, size, addr2, size2,
                                site=site, seq=seq))
        elif kind == 7:
            if tx_depth and draw(st.booleans()):
                events.append(Event(Op.TX_END, site=site, seq=seq))
                tx_depth -= 1
            else:
                events.append(Event(Op.TX_BEGIN, site=site, seq=seq))
                tx_depth += 1
        elif kind == 8:
            op = draw(st.sampled_from([Op.TX_ADD, Op.EXCLUDE, Op.INCLUDE]))
            events.append(Event(op, addr, max(size, 1), site=site, seq=seq))
        else:
            if tx_check:
                events.append(Event(Op.TX_CHECK_END, site=site, seq=seq))
                tx_check = False
            else:
                events.append(Event(Op.TX_CHECK_START, site=site, seq=seq))
                tx_check = True
    seq = n
    if tx_check:
        events.append(Event(Op.TX_CHECK_END, seq=seq))
        seq += 1
    while tx_depth:
        events.append(Event(Op.TX_END, seq=seq))
        seq += 1
        tx_depth -= 1
    return events


def _trace(events, trace_id=7):
    trace = Trace(trace_id)
    for event in events:
        trace.append(event)
    return trace


def _outcome(engine, trace):
    """Wire-encoded result, or the exception the replay raised."""
    try:
        result = engine.check_trace(trace)
    except Exception as exc:  # noqa: BLE001 - compared across engines
        return type(exc).__name__, str(exc)
    return (
        encode_result(result),
        result.traces_checked,
        result.events_checked,
        result.checkers_evaluated,
    )


# ----------------------------------------------------------------------
# Properties: engine-level equivalence
# ----------------------------------------------------------------------


class TestEngineDifferential:
    @given(_events())
    @settings(max_examples=200, deadline=None)
    def test_verdicts_and_counters_identical(self, events):
        obj = _outcome(CheckingEngine(X86Rules()), _trace(events))
        col = _outcome(ColumnarCheckingEngine(X86Rules()), _trace(events))
        assert obj == col

    @given(_events())
    @settings(max_examples=100, deadline=None)
    def test_columnar_input_form_is_irrelevant(self, events):
        """Checking a pre-built ColumnarTrace equals checking the Trace."""
        via_trace = _outcome(ColumnarCheckingEngine(X86Rules()),
                             _trace(events))
        via_cols = _outcome(ColumnarCheckingEngine(X86Rules()),
                            ColumnarTrace.from_trace(_trace(events)))
        assert via_trace == via_cols

    @given(_events(allow_invalid=False))
    @settings(max_examples=100, deadline=None)
    def test_basic_metrics_counters_identical(self, events):
        snaps = []
        for engine_name in ENGINE_NAMES:
            registry = MetricsRegistry(MetricsLevel.BASIC)
            engine = make_engine(engine_name, X86Rules(), registry)
            engine.check_trace(_trace(events))
            snaps.append(registry.counters())
        assert snaps[0] == snaps[1]

    @given(_events(allow_invalid=False))
    @settings(max_examples=60, deadline=None)
    def test_full_metrics_counters_identical(self, events):
        """Full level replays through the shared per-event loop: every
        non-clock counter (op counts, stage counts, interval-query
        stats) must agree; only nanosecond totals may differ."""
        snaps = []
        for engine_name in ENGINE_NAMES:
            registry = MetricsRegistry(MetricsLevel.FULL)
            engine = make_engine(engine_name, X86Rules(), registry)
            engine.check_trace(_trace(events))
            snaps.append({
                name: value
                for name, value in registry.counters().items()
                if not name.endswith(".ns")
            })
        assert snaps[0] == snaps[1]


# ----------------------------------------------------------------------
# Deterministic fast-path regressions
# ----------------------------------------------------------------------


def _pair_outcomes(events):
    obj = _outcome(CheckingEngine(X86Rules()), _trace(events))
    col = _outcome(ColumnarCheckingEngine(X86Rules()), _trace(events))
    return obj, col


class TestFastPathRegressions:
    """Hand-picked shapes for each inlined columnar path."""

    def test_fused_write_clwb_persists(self):
        events = [
            Event(Op.WRITE, 0x100, 8, seq=0),
            Event(Op.CLWB, 0x100, 8, seq=1),
            Event(Op.SFENCE, seq=2),
            Event(Op.CHECK_PERSIST, 0x100, 8, seq=3),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col
        assert col[0] == encode_result(
            CheckingEngine(X86Rules()).check_trace(_trace(events))
        )

    def test_second_flush_after_fused_pair_is_duplicate(self):
        events = [
            Event(Op.WRITE, 0x100, 8, seq=0),
            Event(Op.CLWB, 0x100, 8, seq=1),
            Event(Op.CLWB, 0x100, 8, seq=2),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col

    def test_nt_write_then_flush_not_fused(self):
        # WRITE_NT opens its own flush interval; a following writeback
        # is a duplicate, which the fused pair must not swallow.
        events = [
            Event(Op.WRITE_NT, 0x100, 8, seq=0),
            Event(Op.CLWB, 0x100, 8, seq=1),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col

    def test_mismatched_ranges_not_fused(self):
        # The writeback covers more than the write: the excess bytes
        # are an unnecessary-flush warning in both engines.
        events = [
            Event(Op.WRITE, 0x100, 8, seq=0),
            Event(Op.CLWB, 0x100, 16, seq=1),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col

    def test_persist_failure_falls_through(self):
        # No fence: the persist interval is open, the inline pass path
        # must defer to the full checker for the FAIL report.
        events = [
            Event(Op.WRITE, 0x100, 8, seq=0),
            Event(Op.CLWB, 0x100, 8, seq=1),
            Event(Op.CHECK_PERSIST, 0x100, 8, seq=2),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col

    def test_partially_persistent_check_falls_through(self):
        events = [
            Event(Op.WRITE, 0x100, 16, seq=0),
            Event(Op.CLWB, 0x100, 8, seq=1),
            Event(Op.SFENCE, seq=2),
            Event(Op.CHECK_PERSIST, 0x100, 16, seq=3),
        ]
        obj, col = _pair_outcomes(events)
        assert obj == col

    def test_zero_size_events_raise_identically(self):
        for op in (Op.WRITE, Op.CLWB, Op.CHECK_PERSIST):
            obj, col = _pair_outcomes([Event(op, 0x100, 0, seq=0)])
            assert obj == col
            assert obj[0] == "ValueError"


# ----------------------------------------------------------------------
# Pool-level matrix: backends x transports x verdict cache
# ----------------------------------------------------------------------


def _corpus():
    """A small mixed corpus: passes, failures, warnings, transactions."""
    traces = []
    for i in range(8):
        trace = Trace(i)
        base = (i % 4) * 0x40 + 0x1000
        trace.append(Event(Op.TX_CHECK_START, seq=0))
        trace.append(Event(Op.TX_BEGIN, seq=1))
        trace.append(Event(Op.TX_ADD, base, 0x20, seq=2))
        trace.append(Event(Op.WRITE, base, 8,
                           site=SourceSite("kv.c", i, "put"), seq=3))
        trace.append(Event(Op.WRITE, base, 8, seq=4))  # dead write
        trace.append(Event(Op.CLWB, base, 8, seq=5))
        if i % 2 == 0:
            trace.append(Event(Op.SFENCE, seq=6))
        trace.append(Event(Op.CHECK_PERSIST, base, 8, seq=7))
        trace.append(Event(Op.TX_END, seq=8))
        trace.append(Event(Op.TX_CHECK_END, seq=9))
        traces.append(trace)
    return traces


_POOL_CONFIGS = [
    pytest.param({"num_workers": 0}, id="inline"),
    pytest.param({"num_workers": 2, "backend": "thread"}, id="thread"),
    pytest.param(
        {"num_workers": 2, "backend": "process", "transport": "queue",
         "codec": "pickle"},
        id="process-queue-pickle",
    ),
    pytest.param(
        {"num_workers": 2, "backend": "process", "transport": "queue",
         "codec": "binary"},
        id="process-queue-binary",
    ),
    pytest.param(
        {"num_workers": 2, "backend": "process", "transport": "shm",
         "codec": "binary"},
        id="process-shm-binary",
    ),
]


class TestPoolMatrixDifferential:
    @pytest.mark.parametrize("config", _POOL_CONFIGS)
    @pytest.mark.parametrize("cache", [False, True],
                             ids=["cache-off", "cache-on"])
    def test_verdicts_and_merged_counters_identical(self, config, cache):
        traces = _corpus()
        wires = []
        counters = []
        for engine_name in ENGINE_NAMES:
            registry = MetricsRegistry(MetricsLevel.BASIC)
            with WorkerPool(metrics=registry, verdict_cache=cache,
                            engine=engine_name, **config) as pool:
                for trace in traces:
                    pool.submit(trace)
                result = pool.drain()
                snap = pool.metrics_snapshot()
            wires.append(encode_result(result))
            counters.append({
                name: value
                for name, value in snap.counters().items()
                if name.startswith("engine.")
            })
        assert wires[0] == wires[1]
        assert counters[0] == counters[1]
        assert counters[0].get("engine.traces") == len(traces)


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------


class TestEngineSelection:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name(None) == "object"
        assert isinstance(make_engine(None, X86Rules()), CheckingEngine)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        assert resolve_engine_name(None) == "columnar"
        engine = make_engine(None, X86Rules())
        assert isinstance(engine, ColumnarCheckingEngine)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        assert resolve_engine_name("object") == "object"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine_name("simd")

    def test_pool_reports_resolved_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        with WorkerPool(num_workers=0) as pool:
            assert pool.engine_name == "columnar"
