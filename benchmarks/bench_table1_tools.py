"""Table 1: the tool landscape — speed x flexibility.

The paper's Table 1 positions Yat (low speed, low flexibility),
Pmemcheck (medium speed, low flexibility) and PMTest (high speed, high
flexibility).  This benchmark quantifies the speed column on one shared
workload and prints the table, including the paper's Yat extrapolation
argument: Yat's crash-state count grows so fast that full validation of
a modest trace is measured in *years* (the paper quotes >5 years for
~100k PM operations).
"""

import time

import pytest

from _harness import make_runtime, pedantic, record, RESULTS

from repro.baselines.yat import YatTester
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.structures import AtomicHashMap
from repro.structures.hashmap_atomic import validate_image as validate_atomic

N_OPS = 80


def _run_kv(tool: str) -> None:
    runtime, session, finish = make_runtime(tool, 16 << 20)
    pool = PMPool(runtime, log_capacity=256 * 1024)
    structure = AtomicHashMap(pool, value_size=64)
    if session is not None:
        session.send_trace()
    for i in range(N_OPS):
        structure.insert(i)
        if session is not None:
            session.send_trace()
    finish()


@pytest.mark.parametrize("tool", ["none", "pmtest", "pmemcheck"])
def test_table1_speed(benchmark, bench_rounds, tool):
    pedantic(benchmark, bench_rounds, lambda: lambda: _run_kv(tool))
    record("table1", (tool,), benchmark)


def test_table1_yat_extrapolation(benchmark):
    """Measure Yat's per-state cost on a tiny prefix, count the states
    the full trace would need, and extrapolate total runtime.

    Yat permutes persist orderings at every operation.  A transactional
    workload with KB-scale payloads holds dozens of dirty cache lines
    between fences, so the per-crash-point state count is exponential —
    this is the paper's ">5 years for ~100k operations" argument,
    reproduced quantitatively.
    """

    def measure():
        from repro.structures import BTree

        machine = PMMachine(16 << 20)
        runtime = PMRuntime(machine=machine)
        pool = PMPool(runtime, log_capacity=256 * 1024)
        structure = BTree(pool, value_size=2048)
        base = machine.begin_oplog()
        for i in range(30):
            structure.insert(i)
        oplog = machine.oplog
        tester = YatTester(
            16 << 20,
            validate=lambda img: True,
            base_image=base,
            state_budget=1 << 12,
            crash_at="ops",
        )
        # Per-state cost from an exhaustive run over a short prefix.
        start = time.perf_counter()
        states_timed = 0
        prefix_len = 4
        while states_timed < 64 and prefix_len <= len(oplog):
            report = tester.run(oplog[:prefix_len])
            states_timed = report.states_tested
            prefix_len *= 2
        elapsed = time.perf_counter() - start
        per_state = elapsed / max(states_timed, 1)
        total_states = tester.state_count(oplog)
        RESULTS[("table1", ("yat-states",))] = float(total_states)
        RESULTS[("table1", ("yat-oplog-len",))] = float(len(oplog))
        RESULTS[("table1", ("yat-extrapolated-seconds",))] = (
            per_state * total_states
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)


def test_table1_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = RESULTS.get(("table1", ("none",)))
    pmtest = RESULTS.get(("table1", ("pmtest",)))
    pmemcheck = RESULTS.get(("table1", ("pmemcheck",)))
    yat_seconds = RESULTS.get(("table1", ("yat-extrapolated-seconds",)))
    yat_states = RESULTS.get(("table1", ("yat-states",)))
    if base is None:
        pytest.skip("table1 benchmarks did not run")
    with capsys.disabled():
        print("\n--- Table 1 reproduction: tools for testing CCS ---")
        print(f"{'Tool':12s} {'Speed':>22s}  Flexibility   Target")
        print(f"{'Yat':12s} {_years(yat_seconds):>22s}  Low           PMFS only")
        if pmemcheck is not None:
            print(f"{'Pmemcheck':12s} {pmemcheck / base:20.1f}x  "
                  f"Low           PMDK only")
        if pmtest is not None:
            print(f"{'PMTest':12s} {pmtest / base:20.1f}x  "
                  f"High          any CCS, any model")
        if yat_states is not None:
            oplog_len = int(RESULTS.get(("table1", ("yat-oplog-len",)), 0))
            print(f"(Yat would enumerate {yat_states:.3e} crash states "
                  f"for a {oplog_len}-PM-op transactional trace)")
    if pmtest is not None and pmemcheck is not None and yat_seconds is not None:
        # Speed ordering: PMTest < Pmemcheck << Yat (extrapolated).
        assert pmtest < pmemcheck
        assert yat_seconds > 100 * pmemcheck


def _years(seconds) -> str:
    if seconds is None:
        return "n/a"
    years = seconds / (365.25 * 24 * 3600)
    if years >= 1:
        return f"~{years:.1e} years"
    if seconds > 3600:
        return f"~{seconds / 3600:.1f} hours"
    return f"~{seconds:.1f} s"
