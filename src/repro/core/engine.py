"""The checking engine: replays one trace and validates its checkers.

The engine walks a trace in program order (paper Section 4.4).  PM
operations update the shadow memory through the active persistency-model
rules; checker records are validated against the shadow's persist
intervals.  Orthogonally to the model rules, the engine implements the
transaction machinery of Section 5.1: the log tree for ``TX_ADD``
backups, the modified-object set for transaction-completeness checking,
and the testing-scope exclusion list (``PMTest_EXCLUDE``).

Each trace is checked against a fresh shadow memory — traces are
independent units, split by the program at ``PMTest_SEND_TRACE`` points
(typically transaction boundaries).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Iterable, List, Optional, Tuple

from repro.core.canon import canonicalize
from repro.core.events import (
    CHECKER_OPS,
    Event,
    FENCE_OPS,
    FLUSH_OPS,
    Op,
    SourceSite,
    Trace,
)
from repro.core.interval_array import resolve_shadow_name
from repro.core.interval_map import IntervalMap, QueryStats
from repro.core.shadow import make_shadow_for
from repro.core.logtree import LogTree
from repro.core.metrics import MetricsRegistry
from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.rules import PersistencyRules, X86Rules
from repro.core.verdict_cache import VerdictCache, build_template, rehydrate


def coalesce_events(events: List[Event]) -> Tuple[List[Event], int]:
    """Epoch write-coalescing: drop dead writes between barriers.

    Within a maximal run of consecutive ``WRITE``/``WRITE_NT`` events
    (every other op — flushes, fences, checkers, transaction and scope
    bookkeeping — is a barrier), a write whose range is fully covered by
    the union of *later* writes in the same run contributes nothing to
    the verdict: the shadow's ``assign`` replaces the whole range with
    the latest writer's state, and writes themselves never produce
    reports under any model.  Such dead writes are dropped before the
    replay touches the shadow ``IntervalMap``.

    Anything stronger provably changes verdicts, so it is not done
    here: merging adjacent writes would collapse shadow segments (and
    with them per-segment report granularity and recorded write sites),
    and deduplicating flushes would suppress the duplicate/unnecessary
    flush diagnostics.  Runs inside an active ``TX_CHECKER`` scope are
    left untouched, because there every write additionally emits its
    own missing-log report.

    Returns ``(events, dropped)`` — the input list itself when nothing
    was dropped.
    """
    # Fast reject: elimination needs two consecutive writes somewhere.
    write = Op.WRITE
    write_nt = Op.WRITE_NT
    previous_write = False
    for event in events:
        op = event.op
        is_write = op is write or op is write_nt
        if is_write and previous_write:
            break
        previous_write = is_write
    else:
        return events, 0
    out: List[Event] = []
    dropped = 0
    tx_check = False
    n = len(events)
    i = 0
    while i < n:
        event = events[i]
        op = event.op
        if op is not Op.WRITE and op is not Op.WRITE_NT:
            if op is Op.TX_CHECK_START:
                tx_check = True
            elif op is Op.TX_CHECK_END:
                tx_check = False
            out.append(event)
            i += 1
            continue
        j = i + 1
        while j < n:
            nxt = events[j].op
            if nxt is not Op.WRITE and nxt is not Op.WRITE_NT:
                break
            j += 1
        if j == i + 1 or tx_check:
            out.extend(events[i:j])
        elif j == i + 2:
            # The overwhelmingly common run length; covering a single
            # earlier write needs no interval map.
            first, second = events[i], events[i + 1]
            if (
                first.size > 0
                and second.addr <= first.addr
                and first.end <= second.end
            ):
                dropped += 1
            else:
                out.append(first)
            out.append(second)
        else:
            run = events[i:j]
            kept = _eliminate_dead_writes(run)
            dropped += len(run) - len(kept)
            out.extend(kept)
        i = j
    return (out, dropped) if dropped else (events, 0)


def _eliminate_dead_writes(run: List[Event]) -> List[Event]:
    """Keep only writes not fully covered by later writes in the run."""
    coverage: IntervalMap[bool] = IntervalMap()
    keep = [True] * len(run)
    for k in range(len(run) - 1, -1, -1):
        event = run[k]
        if event.size <= 0:
            continue  # structurally invalid; let the replay reject it
        if coverage.covers(event.addr, event.end):
            keep[k] = False
        else:
            coverage.assign(event.addr, event.end, True)
    return [event for event, flag in zip(run, keep) if flag]


class MalformedTrace(Exception):
    """The trace violates structural invariants (e.g. unbalanced TX_END).

    This indicates broken instrumentation of the program under test, not a
    crash-consistency bug, so it raises instead of reporting.
    """


class CheckingEngine:
    """Validates traces under a persistency model's checking rules.

    ``metrics`` (a :class:`~repro.core.metrics.MetricsRegistry`, or
    ``None``) selects the instrumentation level once per trace: with no
    registry the replay loop is the historical unhooked one, at
    ``basic`` per-opcode counters are kept, and at ``full`` every
    dispatch is timed and attributed to its pipeline stage.

    ``cache`` is an optional :class:`~repro.core.verdict_cache
    .VerdictCache`: structurally identical traces (equal canonical
    fingerprints, see :mod:`repro.core.canon`) are answered from it by
    relocating the cached report template instead of replaying, with
    verdicts byte-identical to a fresh replay.  The engine owns the
    cache exclusively — backends create one per worker.  ``coalesce``
    enables the dead-write elimination of :func:`coalesce_events`
    before each replay.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[VerdictCache] = None,
        coalesce: bool = True,
        shadow: Optional[str] = None,
    ) -> None:
        self.rules = rules if rules is not None else X86Rules()
        self.metrics = metrics
        self.cache = cache
        self.coalesce = coalesce
        #: interval-store knob (``object`` / ``array``, see
        #: :mod:`repro.core.interval_array`); resolved once per engine
        self.shadow_name = resolve_shadow_name(shadow)
        #: dead writes dropped by coalescing (kept as a plain int so the
        #: ablation benchmarks can read it with metrics off)
        self.writes_merged = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check_trace(self, trace: Trace) -> TestResult:
        """Replay one trace; return all FAIL/WARN reports."""
        metrics = self.metrics
        events = trace.events
        original_len = len(events)
        if self.coalesce:
            events, dropped = coalesce_events(events)
            if dropped:
                self.writes_merged += dropped
                if metrics is not None:
                    metrics.counter("coalesce.writes_merged").inc(dropped)
        cache = self.cache
        if cache is None:
            return _TraceChecker(
                self.rules, trace, metrics,
                events=events, events_checked=original_len,
                shadow=self.shadow_name,
            ).run()
        # The fingerprint is taken over the events actually replayed, so
        # traces differing only in eliminated dead writes share entries.
        form = canonicalize(events)
        template = cache.lookup(form.fingerprint)
        if template is not None:
            result = rehydrate(
                template, form.relocation, trace.trace_id, original_len
            )
            if result is not None:
                if metrics is not None:
                    metrics.counter("cache.hits").inc(1)
                    self._record_hit(metrics, events, template, result)
                return result
            # A canonical literal this trace's table cannot map back:
            # impossible for a true fingerprint match, but fail safe
            # into a fresh replay rather than a wrong verdict.
            cache.hits -= 1
            cache.misses += 1
            cache.uncacheable += 1
        if metrics is not None:
            metrics.counter("cache.misses").inc(1)
        checker = _TraceChecker(
            self.rules, trace, metrics,
            events=events, events_checked=original_len,
            shadow=self.shadow_name,
        )
        result = checker.run()
        qstats = checker.qstats
        new_template = build_template(
            result,
            form.relocation,
            trace.trace_id,
            queries=qstats.queries if qstats is not None else None,
            scanned=qstats.scanned if qstats is not None else None,
            shadow_segments=(
                len(checker.shadow.pm) if qstats is not None else None
            ),
        )
        if new_template is not None:
            evicted = cache.store(form.fingerprint, new_template)
            if evicted and metrics is not None:
                metrics.counter("cache.evictions").inc(evicted)
        else:
            cache.uncacheable += 1
            if metrics is not None:
                metrics.counter("cache.uncacheable").inc(1)
        return result

    @staticmethod
    def _record_hit(
        metrics: MetricsRegistry,
        events: List[Event],
        template,
        result: TestResult,
    ) -> None:
        """Book a cache hit as the replay it stands for.

        Engine counter totals must be independent of how traces were
        distributed over workers (each worker cache sees a different
        mix of hits and misses), so a hit increments exactly what a
        fresh replay would have: aggregate counters from the result,
        per-opcode counts from the replayed event list, and the
        interval-map accounting captured in the template (query depth
        is a function of the canonical form, so it relocates for
        free).  Only timings stay at zero — the honest cost of a hit.
        """
        counter = metrics.counter
        counter("engine.traces").inc(1)
        counter("engine.events").inc(result.events_checked)
        counter("engine.checkers").inc(result.checkers_evaluated)
        counter("engine.reports").inc(len(result.reports))
        op_counts: dict = {}
        for event in events:
            op = event.op
            op_counts[op] = op_counts.get(op, 0) + 1
        for op, count in op_counts.items():
            counter(f"engine.op.{op.name}").inc(count)
        if metrics.full:
            if template.queries is not None:
                counter("engine.interval_queries").inc(template.queries)
                counter("engine.interval_scanned").inc(template.scanned)
            if template.shadow_segments is not None:
                metrics.gauge("engine.shadow_segments").observe(
                    template.shadow_segments
                )
            for op, count in op_counts.items():
                histogram = metrics.histogram(f"engine.op_ns.{op.name}")
                for _ in range(count):
                    histogram.record(0)

    def check_traces(self, traces: Iterable[Trace]) -> TestResult:
        """Replay several independent traces and merge their results."""
        total = TestResult()
        for trace in traces:
            total.merge(self.check_trace(trace))
        return total


class _TraceChecker:
    """State for checking a single trace (one shadow memory)."""

    def __init__(
        self,
        rules: PersistencyRules,
        trace: Trace,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[List[Event]] = None,
        events_checked: Optional[int] = None,
        shadow: str = "object",
    ) -> None:
        self.rules = rules
        self.trace = trace
        self.trace_id = trace.trace_id
        self.shadow = make_shadow_for(rules, shadow)
        self.metrics = metrics
        #: the event list to replay — possibly the coalesced one; event
        #: accounting always reports the original trace length so
        #: coalescing is invisible in ``events_checked``/``engine.events``
        self.events = events if events is not None else trace.events
        self.events_checked = (
            events_checked if events_checked is not None
            else len(trace.events)
        )
        #: interval-map accounting of the run (full metrics only) — read
        #: by the engine when building a verdict-cache template.  Built
        #: here, once, so every checker (including every epoch shard)
        #: owns its accumulator outright: cached templates copy the
        #: final integers out and nothing is shared across checkers.
        self.qstats: Optional[QueryStats] = (
            QueryStats() if metrics is not None and metrics.full else None
        )
        self.result = TestResult(traces_checked=1)
        # Transaction machinery (Section 5.1)
        self.tx_depth = 0
        self.log_tree = LogTree()
        self.tx_check_active = False
        self.tx_check_site: Optional[SourceSite] = None
        #: ranges modified inside the current TX_CHECKER scope -> write site
        self.modified: IntervalMap[Optional[SourceSite]] = IntervalMap()
        #: ranges excluded from the testing scope (PMTest_EXCLUDE)
        self.excluded: IntervalMap[bool] = IntervalMap()

    # ------------------------------------------------------------------
    def run(self) -> TestResult:
        events = self.events
        result = self.result
        # One branch per trace picks the replay loop; the metrics-off
        # path below is the historical unhooked loop, untouched.
        metrics = self.metrics
        if metrics is None:
            self._run_plain(events)
            self._finish()
        elif metrics.full:
            qstats = self.qstats
            self.shadow.pm.stats = qstats
            shadow_ns, shadow_n, checker_ns, checker_n = self._run_timed(
                events, metrics
            )
            # The implicit close of an open checker scope is checker work.
            t0 = perf_counter_ns()
            self._finish()
            checker_ns += perf_counter_ns() - t0
            counter = metrics.counter
            counter("stage.shadow_update.ns").inc(shadow_ns)
            counter("stage.shadow_update.count").inc(shadow_n)
            counter("stage.checker_validate.ns").inc(checker_ns)
            counter("stage.checker_validate.count").inc(checker_n)
            counter("engine.interval_queries").inc(qstats.queries)
            counter("engine.interval_scanned").inc(qstats.scanned)
            metrics.gauge("engine.shadow_segments").observe(len(self.shadow.pm))
        else:
            self._run_counted(events, metrics)
            self._finish()
        result.events_checked += self.events_checked
        if metrics is not None:
            counter = metrics.counter
            counter("engine.traces").inc(1)
            counter("engine.events").inc(self.events_checked)
            counter("engine.checkers").inc(result.checkers_evaluated)
            counter("engine.reports").inc(len(result.reports))
        # Engine-made reports carry the trace id already; only reports
        # produced by the (trace-id-agnostic) rules need the rewrap.
        trace_id = self.trace_id
        reports = result.reports
        for i, report in enumerate(reports):
            if report.trace_id == -1:
                reports[i] = _with_trace_id(report, trace_id)
        return result

    # ------------------------------------------------------------------
    # Replay loops (one per metrics level)
    # ------------------------------------------------------------------
    def _run_plain(self, events: List[Event]) -> None:
        """The historical unhooked replay loop (metrics off)."""
        handlers = self._HANDLERS
        for event in events:
            handler = handlers.get(event.op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {event.op!r}")
            handler(self, event)

    def _run_counted(self, events: List[Event], metrics: MetricsRegistry) -> None:
        """Basic level: per-opcode counts, no timing."""
        handlers = self._HANDLERS
        op_counts: dict = {}
        for event in events:
            op = event.op
            handler = handlers.get(op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {op!r}")
            op_counts[op] = op_counts.get(op, 0) + 1
            handler(self, event)
        for op, count in op_counts.items():
            metrics.counter(f"engine.op.{op.name}").inc(count)

    def _run_timed(
        self, events: List[Event], metrics: MetricsRegistry
    ) -> Tuple[int, int, int, int]:
        """Full level: per-dispatch timing attributed to pipeline stages.

        Returns ``(shadow_ns, shadow_n, checker_ns, checker_n)`` — the
        caller folds the implicit end-of-trace checker close into the
        checker stage before flushing the stage counters.
        """
        handlers = self._HANDLERS
        checker_ops = CHECKER_OPS
        clock = perf_counter_ns
        op_counts: dict = {}
        histograms: dict = {}
        shadow_ns = shadow_n = checker_ns = checker_n = 0
        for event in events:
            op = event.op
            handler = handlers.get(op)
            if handler is None:
                raise MalformedTrace(f"unknown trace op {op!r}")
            op_counts[op] = op_counts.get(op, 0) + 1
            start = clock()
            handler(self, event)
            elapsed = clock() - start
            histogram = histograms.get(op)
            if histogram is None:
                histogram = histograms[op] = metrics.histogram(
                    f"engine.op_ns.{op.name}"
                )
            histogram.record(elapsed)
            if op in checker_ops:
                checker_ns += elapsed
                checker_n += 1
            else:
                shadow_ns += elapsed
                shadow_n += 1
        for op, count in op_counts.items():
            metrics.counter(f"engine.op.{op.name}").inc(count)
        return shadow_ns, shadow_n, checker_ns, checker_n

    # ------------------------------------------------------------------
    # PM operations
    # ------------------------------------------------------------------
    def _on_write(self, event: Event) -> None:
        if not self.excluded:
            # Common case: no exclusions — no gap scan, no subrange
            # Event reallocation.
            self.result.reports.extend(self.rules.apply_op(self.shadow, event))
            if self.tx_check_active:
                self._track_tx_write(event.addr, event.end, event)
            return
        for lo, hi in self.excluded.gaps(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))
            if self.tx_check_active:
                self._track_tx_write(lo, hi, event)

    def _track_tx_write(self, lo: int, hi: int, event: Event) -> None:
        self.modified.assign(lo, hi, event.site)
        if self.tx_depth > 0 and not self.log_tree.covers(lo, hi):
            for bad_lo, bad_hi in self.log_tree.uncovered(lo, hi):
                self.result.reports.append(
                    Report(
                        level=Level.FAIL,
                        code=ReportCode.MISSING_LOG,
                        message=(
                            f"transaction modifies [{bad_lo:#x}, "
                            f"{bad_hi:#x}) without a prior TX_ADD "
                            "backup; it cannot be rolled back"
                        ),
                        site=event.site,
                        trace_id=self.trace_id,
                        seq=event.seq,
                    )
                )

    def _apply_in_scope(self, event: Event) -> None:
        if not self.excluded:
            self.result.reports.extend(self.rules.apply_op(self.shadow, event))
            return
        for lo, hi in self.excluded.gaps(event.addr, event.end):
            sub = self._subrange_event(event, lo, hi)
            self.result.reports.extend(self.rules.apply_op(self.shadow, sub))

    def _on_fence(self, event: Event) -> None:
        self.result.reports.extend(self.rules.apply_op(self.shadow, event))

    # ------------------------------------------------------------------
    # Scope bookkeeping
    # ------------------------------------------------------------------
    def _on_exclude(self, event: Event) -> None:
        self.excluded.assign(event.addr, event.end, True)
        if self.tx_check_active:
            self.modified.erase(event.addr, event.end)

    def _on_include(self, event: Event) -> None:
        self.excluded.erase(event.addr, event.end)

    # ------------------------------------------------------------------
    # Checkers
    # ------------------------------------------------------------------
    def _on_check_persist(self, event: Event) -> None:
        self.result.checkers_evaluated += 1
        self.result.reports.extend(self.rules.check_persist(self.shadow, event))

    def _on_check_order(self, event: Event) -> None:
        self.result.checkers_evaluated += 1
        self.result.reports.extend(self.rules.check_order(self.shadow, event))

    def _on_tx_check_start(self, event: Event) -> None:
        self.tx_check_active = True
        self.tx_check_site = event.site
        self.modified.clear()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _on_tx_begin(self, event: Event) -> None:
        self.tx_depth += 1
        if self.tx_depth == 1:
            self.log_tree.reset()

    def _on_tx_end(self, event: Event) -> None:
        if self.tx_depth == 0:
            raise MalformedTrace(f"TX_END without TX_BEGIN at {event.site}")
        self.tx_depth -= 1

    def _on_tx_add(self, event: Event) -> None:
        duplicates = self.log_tree.add(event.addr, event.end, event.site)
        if not self.tx_check_active:
            return
        for lo, hi, first_site in duplicates:
            where = f" (first logged at {first_site})" if first_site else ""
            self.result.reports.append(
                Report(
                    level=Level.WARN,
                    code=ReportCode.DUP_LOG,
                    message=(
                        f"[{lo:#x}, {hi:#x}) is logged more than once in "
                        f"the same transaction{where}"
                    ),
                    site=event.site,
                    trace_id=self.trace_id,
                    seq=event.seq,
                )
            )

    def _on_tx_check_end_event(self, event: Event) -> None:
        self._on_tx_check_end(event.site, event.seq)

    def _on_tx_check_end(self, site: Optional[SourceSite], seq: int) -> None:
        self.result.checkers_evaluated += 1
        self.tx_check_active = False
        if self.tx_depth > 0:
            self.result.reports.append(
                Report(
                    level=Level.FAIL,
                    code=ReportCode.INCOMPLETE_TX,
                    message=(
                        "transaction is still open at the end of the "
                        "checked scope; it was not properly terminated"
                    ),
                    site=site,
                    trace_id=self.trace_id,
                    seq=seq,
                )
            )
        # The injected isPersist over every modified (non-excluded) object
        # (paper Section 5.1.1, "Check Incomplete Transactions").
        # ``persist_intervals`` only reads ``self.modified``, so iterate
        # it directly — no defensive copy.
        for lo, hi, write_site in self.modified:
            for sub_lo, sub_hi, interval, state in self.rules.persist_intervals(
                self.shadow, lo, hi
            ):
                if not interval.ends_by(self.shadow.timestamp):
                    self.result.reports.append(
                        Report(
                            level=Level.FAIL,
                            code=ReportCode.TX_NOT_PERSISTED,
                            message=(
                                f"transaction update to [{sub_lo:#x}, "
                                f"{sub_hi:#x}) {interval} is not "
                                "guaranteed durable when the transaction "
                                "scope ends"
                            ),
                            site=site,
                            related_site=state.write_site or write_site,
                            trace_id=self.trace_id,
                            seq=seq,
                        )
                    )
        self.modified.clear()

    def _finish(self) -> None:
        """End-of-trace handling: an open checker scope is closed implicitly."""
        if self.tx_check_active:
            self._on_tx_check_end(self.tx_check_site, len(self.trace.events))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _subrange_event(event: Event, lo: int, hi: int) -> Event:
        if lo == event.addr and hi == event.end:
            return event
        return Event(event.op, lo, hi - lo, site=event.site, seq=event.seq)

    # Per-op dispatch table (the hot path in ``run``).  Built in the
    # class body so entries are plain functions called as
    # ``handler(self, event)``.
    _HANDLERS = {
        Op.WRITE: _on_write,
        Op.WRITE_NT: _on_write,
        Op.TX_BEGIN: _on_tx_begin,
        Op.TX_END: _on_tx_end,
        Op.TX_ADD: _on_tx_add,
        Op.EXCLUDE: _on_exclude,
        Op.INCLUDE: _on_include,
        Op.CHECK_PERSIST: _on_check_persist,
        Op.CHECK_ORDER: _on_check_order,
        Op.TX_CHECK_START: _on_tx_check_start,
        Op.TX_CHECK_END: _on_tx_check_end_event,
    }
    for _op in FLUSH_OPS:
        _HANDLERS[_op] = _apply_in_scope
    for _op in FENCE_OPS:
        _HANDLERS[_op] = _on_fence
    del _op


def _with_trace_id(report: Report, trace_id: int) -> Report:
    return Report(
        level=report.level,
        code=report.code,
        message=report.message,
        site=report.site,
        related_site=report.related_site,
        trace_id=trace_id,
        seq=report.seq,
    )
