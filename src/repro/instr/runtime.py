"""The PM runtime: one dispatch point for every PM operation.

Workloads and libraries never touch the machine or the PMTest session
directly; they call :class:`PMRuntime`.  The runtime

1. executes the operation on the simulated machine (if one is attached),
2. optionally captures the source site of the call, and
3. fans the operation out to every attached :class:`TraceObserver`.

Running the identical workload with zero observers gives the
uninstrumented baseline; attaching a :class:`SessionObserver` gives the
PMTest-instrumented run; attaching the pmemcheck observer gives the
competing tool's run — the three configurations behind every slowdown
figure in the paper's evaluation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol

from repro.core.api import PMTestSession
from repro.core.events import SourceSite
from repro.pmem.machine import PMMachine
from repro.pmem.memory import pack_u64, unpack_u64


class TraceObserver(Protocol):
    """Backend notified of every PM operation the program executes."""

    def on_store(
        self, addr: int, size: int, nt: bool, site: Optional[SourceSite]
    ) -> None: ...

    def on_flush(
        self, addr: int, size: int, kind: str, site: Optional[SourceSite]
    ) -> None: ...

    def on_fence(self, kind: str, site: Optional[SourceSite]) -> None: ...

    def on_tx_begin(self, site: Optional[SourceSite]) -> None: ...

    def on_tx_end(self, site: Optional[SourceSite]) -> None: ...

    def on_tx_add(
        self, addr: int, size: int, site: Optional[SourceSite]
    ) -> None: ...


class SessionObserver:
    """Adapts a :class:`PMTestSession` to the observer interface."""

    __slots__ = ("session",)

    def __init__(self, session: PMTestSession) -> None:
        self.session = session

    def on_store(self, addr, size, nt, site):
        if nt:
            self.session.write_nt(addr, size, site=site)
        else:
            self.session.write(addr, size, site=site)

    def on_flush(self, addr, size, kind, site):
        if kind == "clwb":
            self.session.clwb(addr, size, site=site)
        elif kind == "clflushopt":
            self.session.clflushopt(addr, size, site=site)
        else:
            self.session.clflush(addr, size, site=site)

    def on_fence(self, kind, site):
        if kind == "sfence":
            self.session.sfence(site=site)
        elif kind == "ofence":
            self.session.ofence(site=site)
        else:
            self.session.dfence(site=site)

    def on_tx_begin(self, site):
        self.session.tx_begin(site=site)

    def on_tx_end(self, site):
        self.session.tx_end(site=site)

    def on_tx_add(self, addr, size, site):
        self.session.tx_add(addr, size, site=site)


class PMRuntime:
    """Executes PM operations against the machine and notifies observers."""

    def __init__(
        self,
        machine: Optional[PMMachine] = None,
        session: Optional[PMTestSession] = None,
        observers: Iterable[TraceObserver] = (),
        capture_sites: bool = False,
    ) -> None:
        self.machine = machine
        self.session = session
        self.observers: List[TraceObserver] = list(observers)
        if session is not None:
            self.observers.append(SessionObserver(session))
        self.capture_sites = capture_sites
        # Binary-instrumentation-style tools (pmemcheck) see *every*
        # memory access, not just annotated PM ops; observers opt in via
        # a ``wants_loads`` attribute.  PMTest never does — tracking only
        # annotated operations is half its performance story.
        self._load_observers: List[TraceObserver] = [
            observer
            for observer in self.observers
            if getattr(observer, "wants_loads", False)
        ]

    # ------------------------------------------------------------------
    # Loads / stores
    # ------------------------------------------------------------------
    def load(self, addr: int, size: int) -> bytes:
        if self.machine is None:
            raise RuntimeError("no machine attached; loads are impossible")
        for observer in self._load_observers:
            observer.on_load(addr, size)
        return self.machine.load(addr, size)

    def load_u64(self, addr: int) -> int:
        return unpack_u64(self.load(addr, 8))

    def store(
        self,
        addr: int,
        payload: bytes,
        nt: bool = False,
        site: Optional[SourceSite] = None,
    ) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        if self.machine is not None:
            self.machine.store(addr, payload, nt=nt)
        for observer in self.observers:
            observer.on_store(addr, len(payload), nt, site)

    def store_u64(
        self,
        addr: int,
        value: int,
        nt: bool = False,
        site: Optional[SourceSite] = None,
    ) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        self.store(addr, pack_u64(value), nt=nt, site=site)

    # ------------------------------------------------------------------
    # x86 persistence
    # ------------------------------------------------------------------
    def clwb(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._flush(addr, size, "clwb", site)

    def clflushopt(
        self, addr: int, size: int, site: Optional[SourceSite] = None
    ) -> None:
        self._flush(addr, size, "clflushopt", site)

    def clflush(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._flush(addr, size, "clflush", site)

    def sfence(self, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        if self.machine is not None:
            self.machine.sfence()
        for observer in self.observers:
            observer.on_fence("sfence", site)

    def persist(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        """The paper's ``persist_barrier`` over a range: ``clwb; sfence``."""
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        self.clwb(addr, size, site=site)
        self.sfence(site=site)

    # ------------------------------------------------------------------
    # HOPS persistence
    # ------------------------------------------------------------------
    def ofence(self, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        if self.machine is not None:
            self.machine.ofence()
        for observer in self.observers:
            observer.on_fence("ofence", site)

    def dfence(self, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        if self.machine is not None:
            self.machine.dfence()
        for observer in self.observers:
            observer.on_fence("dfence", site)

    # ------------------------------------------------------------------
    # Transaction bookkeeping (issued by transactional libraries)
    # ------------------------------------------------------------------
    def tx_begin(self, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        for observer in self.observers:
            observer.on_tx_begin(site)

    def tx_end(self, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        for observer in self.observers:
            observer.on_tx_end(site)

    def tx_add(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(2)
        for observer in self.observers:
            observer.on_tx_add(addr, size, site)

    # ------------------------------------------------------------------
    def _flush(
        self, addr: int, size: int, kind: str, site: Optional[SourceSite]
    ) -> None:
        if site is None and self.capture_sites:
            site = SourceSite.capture(3)
        if self.machine is not None:
            self.machine.flush(addr, size)
        for observer in self.observers:
            observer.on_flush(addr, size, kind, site)
