"""A chained hash map where every operation is one PMDK transaction.

This is the "HashMap (w/ TX)" microbenchmark of paper Figure 10.  The
map is a fixed-size bucket array of entry-chain heads; inserts allocate
an entry and a value buffer, link the entry at the bucket head, and bump
the count — all inside a failure-atomic transaction with precise
``TX_ADD`` snapshots.

Fault sites (paper Table 5 bug classes):

``no-log-head``
    The bucket head pointer is modified without a snapshot — after a
    crash the chain cannot be rolled back (missing backup).
``no-log-count``
    The count field is modified without a snapshot — the Figure 1b bug
    (the programmer "forgets to backup the length").
``dup-log-head``
    The head pointer is snapshotted twice (duplicate log, performance).
``skip-commit``
    The transaction is never committed (incomplete transaction).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.pmdk.objects import PStruct, PtrField, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.structures.base import PersistentMap, ValueBuffer

DEFAULT_BUCKETS = 64


class HashTable(PStruct):
    """Table header: bucket count, entry count, bucket-array address."""

    nbuckets = U64Field()
    count = U64Field()
    buckets = PtrField()


class HashEntry(PStruct):
    key = U64Field()
    next = PtrField()
    value = PtrField()


class TxHashMap(PersistentMap):
    """Transactional chained hash map."""

    NAME = "hashmap_tx"

    KNOWN_FAULTS = frozenset(
        {
            "no-log-head",
            "no-log-count",
            "no-log-value",
            "no-log-prev",
            "dup-log-head",
            "skip-commit",
        }
    )

    def __init__(
        self,
        pool: PMPool,
        root_slot: int = 0,
        value_size: int = 64,
        faults=(),
        nbuckets: int = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(pool, root_slot, value_size, faults)
        addr = pool.read_root(root_slot)
        if addr:
            self.table = HashTable(pool, addr)
        else:
            self.table = self._create(nbuckets)

    def _create(self, nbuckets: int) -> HashTable:
        with self.pool.tx.transaction():
            table = HashTable.alloc(self.pool)
            table.nbuckets = nbuckets
            table.count = 0
            table.buckets = self.pool.alloc(nbuckets * 8)
        self.pool.write_root(self.root_slot, table.addr)
        return table

    # ------------------------------------------------------------------
    def _bucket_addr(self, key: int) -> int:
        index = hash_u64(key) % self.table.nbuckets
        return self.table.buckets + index * 8

    def _find(self, key: int) -> Optional[HashEntry]:
        runtime = self.pool.runtime
        cursor = runtime.load_u64(self._bucket_addr(key))
        while cursor:
            entry = HashEntry(self.pool, cursor)
            if entry.key == key:
                return entry
            cursor = entry.next
        return None

    # ------------------------------------------------------------------
    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        payload = payload if payload is not None else self.default_payload(key)
        tx = self.pool.tx
        tx.begin()
        try:
            existing = self._find(key)
            if existing is not None:
                buf = ValueBuffer.create(self.pool, payload)
                if not self._fault("no-log-value"):
                    tx.add_field(existing, "value")
                existing.value = buf.addr
            else:
                buf = ValueBuffer.create(self.pool, payload)
                entry = HashEntry.alloc(self.pool)
                head_addr = self._bucket_addr(key)
                entry.key = key
                entry.value = buf.addr
                entry.next = self.pool.runtime.load_u64(head_addr)
                if not self._fault("no-log-head"):
                    tx.add(head_addr, 8)
                if self._fault("dup-log-head"):
                    tx.add(head_addr, 8)
                self.pool.runtime.store_u64(head_addr, entry.addr)
                if not self._fault("no-log-count"):
                    tx.add_field(self.table, "count")
                self.table.count = self.table.count + 1
        except BaseException:
            tx.abort()
            raise
        if not self._fault("skip-commit"):
            tx.commit()

    def lookup(self, key: int) -> Optional[bytes]:
        entry = self._find(key)
        if entry is None:
            return None
        return ValueBuffer(self.pool, entry.value).read()

    def remove(self, key: int) -> bool:
        runtime = self.pool.runtime
        with self.pool.tx.transaction() as tx:
            head_addr = self._bucket_addr(key)
            prev_slot = head_addr
            cursor = runtime.load_u64(head_addr)
            while cursor:
                entry = HashEntry(self.pool, cursor)
                if entry.key == key:
                    if not self._fault("no-log-prev"):
                        tx.add(prev_slot, 8)
                    runtime.store_u64(prev_slot, entry.next)
                    tx.add_field(self.table, "count")
                    self.table.count = self.table.count - 1
                    return True
                prev_slot, _ = entry.field_range("next")
                cursor = entry.next
        return False

    def items(self) -> Iterator[Tuple[int, bytes]]:
        runtime = self.pool.runtime
        for index in range(self.table.nbuckets):
            cursor = runtime.load_u64(self.table.buckets + index * 8)
            while cursor:
                entry = HashEntry(self.pool, cursor)
                yield entry.key, ValueBuffer(self.pool, entry.value).read()
                cursor = entry.next


def hash_u64(key: int) -> int:
    """A 64-bit mix hash (splitmix64 finalizer)."""
    key = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    key = ((key ^ (key >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    key = ((key ^ (key >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return key ^ (key >> 31)


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Structural consistency of a crash image (after recovery).

    Checks that every chain is acyclic, entries are complete (non-null
    value pointers, plausible lengths) and the stored count matches the
    number of reachable entries.
    """
    table_addr = root_addr_value
    if table_addr == 0:
        return True  # never created: trivially consistent
    nbuckets = image.read_u64(table_addr)
    count = image.read_u64(table_addr + 8)
    buckets = image.read_u64(table_addr + 16)
    if nbuckets == 0 or nbuckets > 1 << 20 or buckets == 0:
        return False
    seen = set()
    reachable = 0
    for index in range(nbuckets):
        cursor = image.read_u64(buckets + index * 8)
        while cursor:
            if cursor in seen or cursor + 24 > len(image):
                return False
            seen.add(cursor)
            value = image.read_u64(cursor + 16)
            if value == 0:
                return False  # published entry without a value buffer
            reachable += 1
            cursor = image.read_u64(cursor + 8)
    return reachable == count
