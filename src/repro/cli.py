"""Command-line interface: check recorded traces offline.

Usage::

    python -m repro check run.pmtrace [--model x86|hops|eadr|x86-naive]
                                      [--workers N]
                                      [--backend inline|thread|process]
                                      [--batch-size K]
                                      [--check-timeout SECONDS]
                                      [--max-retries N]
                                      [--fallback | --no-fallback]
                                      [--verdict-cache | --no-verdict-cache]
                                      [--verdict-cache-size N]
                                      [--chaos-seed SEED]
                                      [--metrics-json PATH]
                                      [--trace-out PATH]
                                      [--max-reports K] [--quiet]
    python -m repro stats run.pmtrace
    python -m repro stats metrics.json

``check`` replays every trace in the dump through the checking engine and
prints the reports (exit status 1 if any FAIL was found, 2 for usage or
format errors); ``stats`` summarizes a dump without checking it.  When
``stats`` is pointed at a metrics dump written by ``check
--metrics-json`` it prints the per-stage latency breakdown instead
(paper Figure 10b's stage decomposition).

Traces are produced with :class:`repro.core.traceio.TraceRecorder` (or any
tool emitting the documented JSON-lines format), which makes the classic
record-in-production / analyze-later workflow possible.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from repro.core.backends import CheckingFailed
from repro.core.faults import plan_from_seed
from repro.core.metrics import (
    JSON_FORMAT,
    MetricsLevel,
    MetricsRegistry,
    make_registry,
    stage_breakdown,
)
from repro.core.rules import HOPSRules, PersistencyRules, X86Rules
from repro.core.rules.eadr import EADRRules
from repro.core.rules.naive import NaiveX86Rules
from repro.core.backends import TRANSPORT_NAMES
from repro.core.engine_columnar import ENGINE_NAMES
from repro.core.traceio import TraceFormatError, load_traces_auto
from repro.core.tracing import Tracer
from repro.core.workers import BACKEND_NAMES, WorkerPool

MODELS = {
    "x86": X86Rules,
    "hops": HOPSRules,
    "eadr": EADRRules,
    "x86-naive": NaiveX86Rules,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMTest offline trace tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check a recorded trace dump")
    check.add_argument("trace_file", help="path to a .pmtrace dump")
    check.add_argument(
        "--model",
        choices=sorted(MODELS),
        default="x86",
        help="persistency model to check under (default: x86)",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=0,
        help="checking workers (default 0: synchronous)",
    )
    check.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "checking backend: inline (synchronous), thread (GIL-bound "
            "worker threads), or process (true parallel worker "
            "processes); default derives from --workers"
        ),
    )
    check.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "pin traces per IPC message for --backend process "
            "(default: adapts to backpressure)"
        ),
    )
    check.add_argument(
        "--transport",
        choices=TRANSPORT_NAMES,
        default=None,
        help=(
            "IPC channel for --backend process: queue "
            "(multiprocessing.Queue) or shm (shared-memory ring "
            "buffers with the binary wire codec); default: "
            "PMTEST_TRANSPORT or queue"
        ),
    )
    check.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help=(
            "replay engine: object (per-event dispatch) or columnar "
            "(struct-of-arrays batch replay; faster on large traces, "
            "identical verdicts); default: PMTEST_ENGINE or object"
        ),
    )
    check.add_argument(
        "--shard-min-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "epoch-shard traces with at least N events across the "
            "workers (columnar engine only; default: "
            "PMTEST_SHARD_MIN_EVENTS or off)"
        ),
    )
    check.add_argument(
        "--check-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "watchdog timeout for the checking drain: after this long "
            "with no progress, outstanding traces are requeued once, "
            "then the backend degrades or the check fails (default: "
            "wait forever)"
        ),
    )
    check.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "dead checking workers respawned per backend before it is "
            "declared unhealthy (default 2)"
        ),
    )
    fb = check.add_mutually_exclusive_group()
    fb.add_argument(
        "--fallback",
        dest="fallback",
        action="store_true",
        default=True,
        help=(
            "degrade process -> thread -> inline when a backend cannot "
            "spawn or turns unhealthy (default)"
        ),
    )
    fb.add_argument(
        "--no-fallback",
        dest="fallback",
        action="store_false",
        help="fail the check instead of degrading the backend",
    )
    vc = check.add_mutually_exclusive_group()
    vc.add_argument(
        "--verdict-cache",
        dest="verdict_cache",
        action="store_true",
        default=None,
        help=(
            "answer structurally identical traces from the per-worker "
            "verdict cache instead of replaying them (default: "
            "PMTEST_VERDICT_CACHE, on when unset)"
        ),
    )
    vc.add_argument(
        "--no-verdict-cache",
        dest="verdict_cache",
        action="store_false",
        help="replay every trace in full",
    )
    check.add_argument(
        "--verdict-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="per-worker verdict-cache capacity in entries (default 1024)",
    )
    check.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "inject a deterministic, recoverable fault plan derived "
            "from SEED into the checking pipeline (for testing the "
            "recovery machinery; verdicts are unaffected)"
        ),
    )
    check.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help=(
            "write the merged metrics registry to PATH as JSON after the "
            "check (forces full metrics for this run; inspect with "
            "'repro stats PATH')"
        ),
    )
    check.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "write a chrome://tracing / Perfetto-compatible span trace "
            "of the checking pipeline to PATH"
        ),
    )
    check.add_argument(
        "--max-reports",
        type=int,
        default=20,
        help="print at most this many reports (default 20)",
    )
    check.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line",
    )

    stats = sub.add_parser(
        "stats", help="summarize a trace dump or a metrics JSON dump"
    )
    stats.add_argument(
        "trace_file",
        help="path to a .pmtrace dump or a 'check --metrics-json' output",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _stats(args.trace_file)
    try:
        traces = load_traces_auto(args.trace_file)
    except FileNotFoundError:
        print(f"error: no such file: {args.trace_file}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _check(args, traces)


def _check(args: argparse.Namespace, traces) -> int:
    if args.batch_size is not None and args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.verdict_cache_size is not None and args.verdict_cache_size < 0:
        print("error: --verdict-cache-size must be >= 0", file=sys.stderr)
        return 2
    if args.shard_min_events is not None and args.shard_min_events < 1:
        print("error: --shard-min-events must be >= 1", file=sys.stderr)
        return 2
    rules: PersistencyRules = MODELS[args.model]()
    faults = (
        plan_from_seed(args.chaos_seed) if args.chaos_seed is not None else None
    )
    # --metrics-json forces a full-level registry so the dump always has
    # the per-stage timings; otherwise the PMTEST_METRICS env decides.
    metrics = make_registry()
    if args.metrics_json is not None and (metrics is None or not metrics.full):
        metrics = MetricsRegistry(MetricsLevel.FULL)
    tracer = Tracer() if args.trace_out is not None else None
    snapshot: Optional[MetricsRegistry] = None
    try:
        with WorkerPool(
            rules,
            num_workers=args.workers,
            backend=args.backend,
            batch_size=args.batch_size,
            transport=args.transport,
            check_timeout=args.check_timeout,
            max_retries=args.max_retries,
            fallback=args.fallback,
            faults=faults,
            metrics=metrics,
            tracer=tracer,
            verdict_cache=args.verdict_cache,
            verdict_cache_size=args.verdict_cache_size,
            engine=args.engine,
            shard_min_events=args.shard_min_events,
        ) as pool:
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
            snapshot = pool.metrics_snapshot()
    except ValueError as exc:
        # e.g. --shard-min-events without --engine columnar
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CheckingFailed as exc:
        print(f"error: checking failed: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.finish()
            try:
                tracer.write(args.trace_out)
            except OSError as exc:
                print(
                    f"error: cannot write {args.trace_out}: {exc}",
                    file=sys.stderr,
                )
                return 2
    if args.metrics_json is not None:
        payload = snapshot.to_dict() if snapshot is not None else {}
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write {args.metrics_json}: {exc}",
                file=sys.stderr,
            )
            return 2
    print(f"{args.model}: {result.summary()}")
    if not args.quiet:
        for report in result.reports[: args.max_reports]:
            print(f"  {report}")
        hidden = len(result.reports) - args.max_reports
        if hidden > 0:
            print(f"  ... and {hidden} more")
        for line in result.diagnostics:
            print(f"  [recovery] {line}")
    return 0 if result.passed else 1


def _stats(path: str) -> int:
    """Summarize either a trace dump or a metrics JSON dump.

    The file is sniffed, not switched on extension: a JSON object whose
    ``format`` field is the metrics marker gets the stage-breakdown
    rendering, anything else goes through the trace loader.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read()
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    except UnicodeDecodeError:
        head = None  # not UTF-8 text, so certainly not a metrics dump
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    payload = None
    if head is not None:
        try:
            payload = json.loads(head)
        except ValueError:
            pass
    if isinstance(payload, dict) and payload.get("format") == JSON_FORMAT:
        try:
            registry = MetricsRegistry.from_dict(payload)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: bad metrics dump: {exc}", file=sys.stderr)
            return 2
        return _metrics_stats(registry)
    try:
        traces = load_traces_auto(path)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _trace_stats(traces)


def _metrics_stats(registry: MetricsRegistry) -> int:
    """Print the Figure-10b-style per-stage latency breakdown."""
    print(f"metrics level: {registry.level.value}")
    for name in ("engine.traces", "engine.events", "engine.checkers",
                 "engine.reports"):
        value = registry.counter_value(name)
        if value:
            print(f"{name.split('.', 1)[1] + ':':10s}{value}")
    # Verdict-cache and write-coalescing effectiveness (only shown when
    # the run actually consulted the cache / merged writes, so dumps
    # from cache-off runs render exactly as before).
    cache_rows = [
        (name, registry.counter_value(name))
        for name in ("cache.hits", "cache.misses", "cache.evictions",
                     "coalesce.writes_merged")
    ]
    if any(value for _, value in cache_rows):
        for name, value in cache_rows:
            print(f"{name + ':':24s}{value}")
        hits = registry.counter_value("cache.hits")
        lookups = hits + registry.counter_value("cache.misses")
        if lookups:
            print(f"{'cache.hit_rate:':24s}{hits / lookups:.1%}")
    rows = stage_breakdown(registry)
    grand_total = sum(total for _, total, _ in rows)
    print()
    print(
        f"{'stage':18s} {'total(ms)':>10s} {'count':>8s} "
        f"{'mean(us)':>10s} {'share':>7s}"
    )
    for label, total_ns, count in rows:
        mean_us = (total_ns / count) / 1e3 if count else 0.0
        share = (total_ns / grand_total) * 100.0 if grand_total else 0.0
        print(
            f"{label:18s} {total_ns / 1e6:>10.3f} {count:>8d} "
            f"{mean_us:>10.2f} {share:>6.1f}%"
        )
    if grand_total == 0:
        print(
            "(no stage timings recorded -- rerun the check with "
            "PMTEST_METRICS=full or --metrics-json)"
        )
    return 0


def _trace_stats(traces) -> int:
    events = sum(len(trace) for trace in traces)
    ops = Counter(
        event.op.name for trace in traces for event in trace.events
    )
    threads = sorted({trace.thread_name for trace in traces})
    print(f"traces:  {len(traces)}")
    print(f"events:  {events}")
    print(f"threads: {', '.join(threads) if threads else '-'}")
    for name, count in ops.most_common():
        print(f"  {name:14s} {count}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
