"""Tests for the checking daemon (repro.daemon)."""
