"""Tests for crash-state enumeration, including hypothesis properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem.crash import (
    CrashEnumerator,
    CrashSpaceTooLarge,
    best_case_image,
    worst_case_image,
)
from repro.pmem.machine import PMMachine


class TestX86Enumeration:
    def test_no_pending_single_state(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.flush(0, 1)
        m.sfence()
        enum = CrashEnumerator(m)
        assert enum.count() == 1
        [image] = list(enum.iter_images())
        assert image.read(0, 1) == b"a"

    def test_one_pending_store_two_states(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        enum = CrashEnumerator(m)
        assert enum.count() == 2
        values = sorted(img.read(0, 1) for img in enum.iter_images())
        assert values == [b"\0", b"a"]

    def test_two_lines_independent(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(64, b"b")
        enum = CrashEnumerator(m)
        assert enum.count() == 4
        states = {
            (img.read(0, 1), img.read(64, 1)) for img in enum.iter_images()
        }
        assert states == {
            (b"\0", b"\0"),
            (b"a", b"\0"),
            (b"\0", b"b"),
            (b"a", b"b"),
        }

    def test_same_line_prefix_only(self):
        # Two stores to one line: the later cannot persist without the
        # earlier.
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(8, b"b")
        enum = CrashEnumerator(m)
        assert enum.count() == 3
        states = {(img.read(0, 1), img.read(8, 1)) for img in enum.iter_images()}
        assert (b"\0", b"b") not in states
        assert len(states) == 3

    def test_budget_enforced(self):
        m = PMMachine(64 * 32)
        for line in range(10):
            m.store(line * 64, b"x")
        enum = CrashEnumerator(m)
        assert enum.count() == 2**10
        with pytest.raises(CrashSpaceTooLarge):
            list(enum.iter_images(limit=100))

    def test_enumeration_isolated_from_later_execution(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        enum = CrashEnumerator(m)
        m.store(0, b"z")  # after the snapshot
        values = sorted(img.read(0, 1) for img in enum.iter_images())
        assert values == [b"\0", b"a"]

    def test_sample_draws_valid_states(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(8, b"b")
        enum = CrashEnumerator(m)
        exhaustive = {bytes(img.data) for img in enum.iter_images()}
        rng = random.Random(0)
        for image in enum.sample(rng, 20):
            assert bytes(image.data) in exhaustive


class TestHOPSEnumeration:
    def test_epoch_prefix_closed(self):
        m = PMMachine(1024, model="hops")
        m.store(0, b"a")
        m.ofence()
        m.store(64, b"b")
        enum = CrashEnumerator(m)
        states = {(img.read(0, 1), img.read(64, 1)) for img in enum.iter_images()}
        # b persisted without a would violate the ofence ordering.
        assert (b"\0", b"b") not in states
        assert {(b"\0", b"\0"), (b"a", b"\0"), (b"a", b"b")} == states

    def test_dfence_leaves_single_state(self):
        m = PMMachine(1024, model="hops")
        m.store(0, b"a")
        m.dfence()
        enum = CrashEnumerator(m)
        images = list(enum.iter_images())
        assert all(img.read(0, 1) == b"a" for img in images)

    def test_hops_sampling(self):
        m = PMMachine(1024, model="hops")
        m.store(0, b"a")
        m.ofence()
        m.store(64, b"b")
        enum = CrashEnumerator(m)
        exhaustive = {bytes(img.data) for img in enum.iter_images()}
        for image in enum.sample(random.Random(1), 20):
            assert bytes(image.data) in exhaustive


class TestExtremes:
    def test_worst_case_is_durable_baseline(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.flush(0, 1)
        m.sfence()
        m.store(8, b"b")
        image = worst_case_image(m)
        assert image.read(0, 1) == b"a"
        assert image.read(8, 1) == b"\0"

    def test_best_case_equals_volatile(self):
        m = PMMachine(1024)
        m.store(0, b"a")
        m.store(0, b"b")
        m.store(70, b"c")
        image = best_case_image(m)
        assert bytes(image.data) == bytes(m.volatile.data)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

_op = st.one_of(
    st.tuples(
        st.just("store"),
        st.integers(0, 250),
        st.binary(min_size=1, max_size=16),
    ),
    st.tuples(st.just("flush"), st.integers(0, 250), st.just(b"x")),
    st.tuples(st.just("sfence"), st.just(0), st.just(b"")),
)


class TestCrashProperties:
    @given(st.lists(_op, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_best_case_always_equals_volatile(self, ops):
        m = PMMachine(512)
        for kind, addr, payload in ops:
            if kind == "store":
                if addr + len(payload) <= 512:
                    m.store(addr, payload)
            elif kind == "flush":
                m.flush(addr, 1)
            else:
                m.sfence()
        assert bytes(best_case_image(m).data) == bytes(m.volatile.data)

    @given(st.lists(_op, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_every_crash_state_within_extremes(self, ops):
        """Each crash image agrees with durable or volatile at every byte
        that differs between them (no invented values)."""
        m = PMMachine(512)
        for kind, addr, payload in ops:
            if kind == "store":
                if addr + len(payload) <= 512:
                    m.store(addr, payload)
            elif kind == "flush":
                m.flush(addr, 1)
            else:
                m.sfence()
        enum = CrashEnumerator(m)
        if enum.count() > 256:
            images = enum.sample(random.Random(0), 16)
        else:
            images = enum.iter_images()
        durable = bytes(m.durable.data)
        # Each byte of a crash image must be either the durable baseline
        # value or a value some pending fragment wrote there; crash states
        # never invent data.
        allowed = [{durable[i]} for i in range(512)]
        for fragments in m.pending.values():
            for fragment in fragments:
                for off, byte in enumerate(fragment.data):
                    allowed[fragment.addr + off].add(byte)
        for image in images:
            data = bytes(image.data)
            for i in range(512):
                assert data[i] in allowed[i]
