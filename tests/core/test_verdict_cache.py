"""Verdict cache and write-coalescing: equivalence is the contract.

Three layers of guarantees under test:

* knob resolution and LRU mechanics of :class:`VerdictCache`;
* the engine-level guarantee that cache-on and coalesce-on runs return
  results byte-identical to plain replays — including report messages,
  source sites, counts and metadata — over constructed traces, random
  traces, and the full injected-bug corpus;
* the pipeline-level guarantee that per-worker caches in every backend
  and transport change nothing observable except the ``cache.*``
  counters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bugs import HISTORICAL_BUGS, SYNTHETIC_BUGS, run_bug_case
from repro.core.canon import canonicalize
from repro.core.engine import CheckingEngine, coalesce_events
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.reports import TestResult
from repro.core.traceio import TraceRecorder, encode_result
from repro.core.verdict_cache import (
    DEFAULT_CACHE_SIZE,
    VerdictCache,
    build_template,
    rehydrate,
    resolve_cache_size,
)
from repro.core.workers import WorkerPool

SITE = SourceSite("store.c", 17)


def _unflushed_trace(base, trace_id):
    """WRITE + CHECK_PERSIST with no flush: always produces a report."""
    return Trace(
        trace_id=trace_id,
        events=[
            Event(Op.WRITE, base, 64, site=SITE, seq=0),
            Event(Op.CHECK_PERSIST, base, 64, site=SITE, seq=1),
        ],
    )


def _clean_trace(base, trace_id):
    """Properly persisted skeleton: no reports."""
    return Trace(
        trace_id=trace_id,
        events=[
            Event(Op.WRITE, base, 8, site=SITE, seq=0),
            Event(Op.CLWB, base, 8, site=SITE, seq=1),
            Event(Op.SFENCE, seq=2),
            Event(Op.CHECK_PERSIST, base, 8, site=SITE, seq=3),
        ],
    )


def _results_identical(a: TestResult, b: TestResult) -> None:
    assert a.reports == b.reports
    assert [r.site for r in a.reports] == [r.site for r in b.reports]
    assert [r.trace_id for r in a.reports] == [r.trace_id for r in b.reports]
    assert a.traces_checked == b.traces_checked
    assert a.events_checked == b.events_checked
    assert a.checkers_evaluated == b.checkers_evaluated
    assert a.metadata == b.metadata


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
class TestResolveCacheSize:
    def test_defaults_on(self, monkeypatch):
        monkeypatch.delenv("PMTEST_VERDICT_CACHE", raising=False)
        assert resolve_cache_size() == DEFAULT_CACHE_SIZE

    def test_explicit_off_wins(self, monkeypatch):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", "64")
        assert resolve_cache_size(enabled=False) == 0

    def test_explicit_size(self, monkeypatch):
        monkeypatch.delenv("PMTEST_VERDICT_CACHE", raising=False)
        assert resolve_cache_size(size=7) == 7
        assert resolve_cache_size(size=0) == 0

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "OFF"])
    def test_env_off_values(self, monkeypatch, value):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", value)
        assert resolve_cache_size() == 0

    @pytest.mark.parametrize("value", ["on", "true", "yes", ""])
    def test_env_on_values(self, monkeypatch, value):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", value)
        assert resolve_cache_size() == DEFAULT_CACHE_SIZE

    def test_env_integer_capacity(self, monkeypatch):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", "32")
        assert resolve_cache_size() == 32

    def test_size_param_beats_env_size(self, monkeypatch):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", "32")
        assert resolve_cache_size(size=8) == 8

    def test_env_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", "maybe")
        with pytest.raises(ValueError):
            resolve_cache_size()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            resolve_cache_size(size=-1)

    def test_enabled_true_ignores_env_off(self, monkeypatch):
        monkeypatch.setenv("PMTEST_VERDICT_CACHE", "off")
        assert resolve_cache_size(enabled=True) == DEFAULT_CACHE_SIZE


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
class TestVerdictCacheLRU:
    @staticmethod
    def _template(base):
        trace = _clean_trace(base, 0)
        form = canonicalize(trace.events)
        result = CheckingEngine().check_trace(trace)
        return build_template(result, form.relocation, 0)

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            VerdictCache(0)

    def test_eviction_order_is_lru(self):
        cache = VerdictCache(2)
        t = self._template(0x1000)
        cache.store(b"a", t)
        cache.store(b"b", t)
        assert cache.lookup(b"a") is not None  # refresh "a"
        evicted = cache.store(b"c", t)  # "b" is now the LRU entry
        assert evicted == 1
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") is not None
        assert cache.lookup(b"c") is not None

    def test_counters(self):
        cache = VerdictCache(1)
        t = self._template(0x1000)
        assert cache.lookup(b"x") is None
        cache.store(b"x", t)
        assert cache.lookup(b"x") is not None
        cache.store(b"y", t)  # evicts "x"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.hit_rate() == 0.5


# ----------------------------------------------------------------------
# Template round trips
# ----------------------------------------------------------------------
class TestTemplates:
    def test_build_and_rehydrate_identical(self):
        trace = _unflushed_trace(0x1000, 3)
        result = CheckingEngine().check_trace(trace)
        assert result.reports  # the workload actually reports
        form = canonicalize(trace.events)
        template = build_template(result, form.relocation, 3)
        assert template is not None
        back = rehydrate(template, form.relocation, 3, len(trace.events))
        _results_identical(back, result)

    def test_template_reports_are_canonical(self):
        trace = _unflushed_trace(0x1000, 3)
        result = CheckingEngine().check_trace(trace)
        form = canonicalize(trace.events)
        template = build_template(result, form.relocation, 3)
        for report in template.reports:
            assert report.trace_id == -1
            assert "0x1000" not in report.message  # rewritten

    def test_rehydrate_for_relocated_trace(self):
        first = _unflushed_trace(0x1000, 0)
        result = CheckingEngine().check_trace(first)
        template = build_template(
            result, canonicalize(first.events).relocation, 0
        )
        other = _unflushed_trace(0xBEEF00, 9)
        other_form = canonicalize(other.events)
        assert other_form.fingerprint == canonicalize(first.events).fingerprint
        back = rehydrate(template, other_form.relocation, 9, len(other.events))
        fresh = CheckingEngine().check_trace(other)
        _results_identical(back, fresh)
        assert any("0xbeef00" in r.message for r in back.reports)


# ----------------------------------------------------------------------
# Engine-level equivalence
# ----------------------------------------------------------------------
class TestEngineCache:
    def test_repeated_traces_hit_and_match(self):
        eng_off = CheckingEngine(coalesce=False)
        eng_on = CheckingEngine(cache=VerdictCache(16))
        bases = [0x1000, 0x2000, 0x30000, 0x1000]
        for i, base in enumerate(bases):
            fresh = eng_off.check_trace(_unflushed_trace(base, i))
            cached = eng_on.check_trace(_unflushed_trace(base, i))
            _results_identical(fresh, cached)
        assert eng_on.cache.hits == 3
        assert eng_on.cache.misses == 1

    def test_hits_survive_clean_traces(self):
        eng = CheckingEngine(cache=VerdictCache(16))
        for i in range(5):
            result = eng.check_trace(_clean_trace(0x4000 + i * 0x100, i))
            assert result.reports == []
            assert result.events_checked == 4
        assert eng.cache.hits == 4

    def test_cache_metrics_mirrored(self):
        metrics = MetricsRegistry(MetricsLevel.BASIC)
        eng = CheckingEngine(metrics=metrics, cache=VerdictCache(16))
        for i in range(4):
            eng.check_trace(_clean_trace(0x4000, i))
        assert metrics.counter_value("cache.hits") == 3
        assert metrics.counter_value("cache.misses") == 1

    def test_engine_counters_match_fresh_replay(self):
        """A hit must book exactly the counters a replay would have."""
        for level in (MetricsLevel.BASIC, MetricsLevel.FULL):
            fresh_m = MetricsRegistry(level)
            cached_m = MetricsRegistry(level)
            fresh = CheckingEngine(metrics=fresh_m)
            cached = CheckingEngine(metrics=cached_m, cache=VerdictCache(16))
            for i, base in enumerate((0x1000, 0x5000, 0x1000, 0x1000)):
                fresh.check_trace(_unflushed_trace(base, i))
                cached.check_trace(_unflushed_trace(base, i))
            for name in (
                "engine.traces", "engine.events", "engine.checkers",
                "engine.reports", "engine.op.WRITE",
                "engine.op.CHECK_PERSIST", "engine.interval_queries",
                "engine.interval_scanned",
            ):
                assert fresh_m.counter_value(name) == cached_m.counter_value(
                    name
                ), (level, name)
            if level is MetricsLevel.FULL:
                a = fresh_m.to_dict()["histograms"]
                b = cached_m.to_dict()["histograms"]
                for name in ("engine.op_ns.WRITE", "engine.op_ns.CHECK_PERSIST"):
                    assert a[name]["count"] == b[name]["count"]

    def test_eviction_never_changes_verdicts(self):
        eng_off = CheckingEngine(coalesce=False)
        eng_on = CheckingEngine(cache=VerdictCache(2))  # constant churn

        def structurally_distinct(i, tid):
            # i+1 unflushed writes: different skeletons, never the same
            # fingerprint (base addresses alone would be relocated away).
            events = [
                Event(Op.WRITE, 0x1000 + 0x40 * k, 8, site=SITE, seq=k)
                for k in range(0, 2 * (i + 1), 2)
            ]
            n = len(events)
            events.append(
                Event(Op.CHECK_PERSIST, 0x1000, 8, site=SITE, seq=n)
            )
            return Trace(trace_id=tid, events=events)

        for i in range(20):
            variant = i % 5
            _results_identical(
                eng_off.check_trace(structurally_distinct(variant, i)),
                eng_on.check_trace(structurally_distinct(variant, i)),
            )
        assert eng_on.cache.evictions > 0


# ----------------------------------------------------------------------
# Write-coalescing
# ----------------------------------------------------------------------
class TestCoalesceEvents:
    def test_dead_write_dropped(self):
        events = [
            Event(Op.WRITE, 0x100, 8, seq=0),
            Event(Op.WRITE, 0x100, 8, seq=1),
            Event(Op.SFENCE, seq=2),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 1
        assert out[0].seq == 1  # the later write survives

    def test_union_of_later_writes_kills_earlier(self):
        events = [
            Event(Op.WRITE, 0x100, 16, seq=0),
            Event(Op.WRITE, 0x100, 8, seq=1),
            Event(Op.WRITE, 0x108, 8, seq=2),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 1
        assert [e.seq for e in out] == [1, 2]

    def test_partial_overlap_kept(self):
        events = [
            Event(Op.WRITE, 0x100, 16, seq=0),
            Event(Op.WRITE, 0x100, 8, seq=1),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 0
        assert out is events

    def test_any_barrier_splits_runs(self):
        for barrier in (
            Event(Op.CLWB, 0x100, 8, seq=1),
            Event(Op.SFENCE, seq=1),
            Event(Op.TX_ADD, 0x100, 8, seq=1),
            Event(Op.CHECK_PERSIST, 0x100, 8, seq=1),
        ):
            events = [
                Event(Op.WRITE, 0x100, 8, seq=0),
                barrier,
                Event(Op.WRITE, 0x100, 8, seq=2),
            ]
            out, dropped = coalesce_events(events)
            assert dropped == 0, barrier
            assert out is events

    def test_tx_checker_scope_is_exempt(self):
        # Inside TX_CHECKER every write emits its own missing-log check,
        # so elimination there would change report multiplicity.
        events = [
            Event(Op.TX_CHECK_START, seq=0),
            Event(Op.WRITE, 0x100, 8, seq=1),
            Event(Op.WRITE, 0x100, 8, seq=2),
            Event(Op.TX_CHECK_END, seq=3),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 0
        assert out is events
        # ... and elimination resumes after the scope closes.
        events = events + [
            Event(Op.WRITE, 0x200, 8, seq=4),
            Event(Op.WRITE, 0x200, 8, seq=5),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 1

    def test_mixed_write_flavours_coalesce(self):
        events = [
            Event(Op.WRITE_NT, 0x100, 8, seq=0),
            Event(Op.WRITE, 0x100, 8, seq=1),
        ]
        out, dropped = coalesce_events(events)
        assert dropped == 1

    def test_engine_counts_merged_writes(self):
        metrics = MetricsRegistry(MetricsLevel.BASIC)
        eng = CheckingEngine(metrics=metrics)
        trace = Trace(
            trace_id=0,
            events=[
                Event(Op.WRITE, 0x100, 8, seq=0),
                Event(Op.WRITE, 0x100, 8, seq=1),
                Event(Op.SFENCE, seq=2),
            ],
        )
        result = eng.check_trace(trace)
        assert eng.writes_merged == 1
        assert metrics.counter_value("coalesce.writes_merged") == 1
        # events_checked still reports the original trace length.
        assert result.events_checked == 3
        assert metrics.counter_value("engine.events") == 3

    def test_coalescing_preserves_verdicts_on_dup_flush(self):
        # Duplicate-flush diagnostics must be untouched by coalescing.
        events = [
            Event(Op.WRITE, 0x100, 8, site=SITE, seq=0),
            Event(Op.WRITE, 0x100, 8, site=SITE, seq=1),
            Event(Op.CLWB, 0x100, 8, site=SITE, seq=2),
            Event(Op.CLWB, 0x100, 8, site=SITE, seq=3),
            Event(Op.SFENCE, seq=4),
        ]
        plain = CheckingEngine(coalesce=False).check_trace(Trace(0, list(events)))
        merged = CheckingEngine().check_trace(Trace(0, list(events)))
        _results_identical(plain, merged)


# ----------------------------------------------------------------------
# Differential: bug corpus, all models of use
# ----------------------------------------------------------------------
def _corpus_traces():
    traces = []
    for case in SYNTHETIC_BUGS + HISTORICAL_BUGS:
        recorder = TraceRecorder()
        run_bug_case(case, scale=8, sink=recorder)
        traces.extend(recorder.traces)
    return traces


def test_coalescing_differential_over_bug_corpus():
    """coalesce-on == coalesce-off, report for report, on every injected
    bug workload."""
    traces = _corpus_traces()
    assert len(traces) > 50
    plain = CheckingEngine(coalesce=False)
    merged = CheckingEngine(coalesce=True)
    for trace in traces:
        _results_identical(plain.check_trace(trace), merged.check_trace(trace))


def test_cache_differential_over_bug_corpus():
    """cache-on == cache-off over the corpus, with a tiny cache for
    constant eviction churn."""
    traces = _corpus_traces()
    plain = CheckingEngine(coalesce=False)
    cached = CheckingEngine(cache=VerdictCache(8))
    for trace in traces:
        _results_identical(
            plain.check_trace(trace), cached.check_trace(trace)
        )
    assert cached.cache.hits > 0  # the corpus repeats structures


# ----------------------------------------------------------------------
# Pipeline-level equivalence: backends and transports
# ----------------------------------------------------------------------
def _pipeline_traces():
    traces = []
    tid = 0
    for round_ in range(3):  # duplicates force cross-trace hits
        for base in (0x1000, 0x8000, 0x40000):
            traces.append(_unflushed_trace(base, tid))
            tid += 1
            traces.append(_clean_trace(base, tid))
            tid += 1
    return traces


@pytest.mark.parametrize(
    "backend,workers,transport",
    [
        ("inline", 0, None),
        ("thread", 2, None),
        ("process", 2, "queue"),
        ("process", 2, "shm"),
    ],
)
def test_cache_on_off_identical_across_backends(backend, workers, transport):
    traces = _pipeline_traces()
    encoded = {}
    for cache_on in (False, True):
        with WorkerPool(
            num_workers=workers,
            backend=backend,
            transport=transport,
            verdict_cache=cache_on,
            verdict_cache_size=4,
        ) as pool:
            for trace in traces:
                pool.submit(trace)
            encoded[cache_on] = encode_result(pool.drain())
    assert encoded[True] == encoded[False]


def test_worker_cache_counters_merge_through_metrics():
    traces = _pipeline_traces()
    metrics = MetricsRegistry(MetricsLevel.BASIC)
    with WorkerPool(
        num_workers=2,
        backend="thread",
        metrics=metrics,
        verdict_cache=True,
    ) as pool:
        for trace in traces:
            pool.submit(trace)
        pool.drain()
        snapshot = pool.metrics_snapshot()
    hits = snapshot.counter_value("cache.hits")
    misses = snapshot.counter_value("cache.misses")
    assert hits + misses == len(traces)
    assert hits > 0


def test_process_worker_cache_counters_ship_on_wire():
    traces = _pipeline_traces()
    metrics = MetricsRegistry(MetricsLevel.BASIC)
    with WorkerPool(
        num_workers=2,
        backend="process",
        metrics=metrics,
        verdict_cache=True,
    ) as pool:
        for trace in traces:
            pool.submit(trace)
        pool.drain()
        snapshot = pool.metrics_snapshot()
    assert (
        snapshot.counter_value("cache.hits")
        + snapshot.counter_value("cache.misses")
        == len(traces)
    )


# ----------------------------------------------------------------------
# Property: random traces, cache-on == cache-off == coalesce-off
# ----------------------------------------------------------------------
_RANGE_OPS = [Op.WRITE, Op.WRITE_NT, Op.CLWB, Op.CLFLUSHOPT, Op.CLFLUSH,
              Op.CHECK_PERSIST, Op.TX_ADD, Op.EXCLUDE, Op.INCLUDE]


@st.composite
def _random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    events = []
    tx_open = 0
    for seq in range(n):
        kind = draw(st.integers(0, 9))
        if kind <= 5:
            op = draw(st.sampled_from(_RANGE_OPS))
            addr = 0x1000 + draw(st.integers(0, 96))
            size = draw(st.integers(1, 32))
            events.append(Event(op, addr, size, site=SITE, seq=seq))
        elif kind == 6:
            events.append(Event(Op.SFENCE, seq=seq))
        elif kind == 7:
            events.append(Event(Op.TX_BEGIN, seq=seq))
            tx_open += 1
        elif kind == 8 and tx_open:
            events.append(Event(Op.TX_END, seq=seq))
            tx_open -= 1
        else:
            a = 0x1000 + draw(st.integers(0, 96))
            b = 0x1000 + draw(st.integers(0, 96))
            events.append(
                Event(Op.CHECK_ORDER, a, 8, b, 8, site=SITE, seq=seq)
            )
    if draw(st.booleans()):  # sometimes wrap in a checker scope
        events = (
            [Event(Op.TX_CHECK_START, site=SITE, seq=0)]
            + [
                Event(e.op, e.addr, e.size, e.addr2, e.size2, e.site, e.seq + 1)
                for e in events
            ]
            + [Event(Op.TX_CHECK_END, site=SITE, seq=n + 1)]
        )
    return events


class TestRandomTraceEquivalence:
    @given(_random_trace(), st.integers(min_value=0, max_value=1 << 24))
    @settings(max_examples=120, deadline=None)
    def test_cache_and_coalesce_preserve_results(self, events, shift):
        baseline = CheckingEngine(coalesce=False)
        cached = CheckingEngine(cache=VerdictCache(4))
        # Check the trace, a duplicate (guaranteed hit), and a shifted
        # relocation of it (hit through the relocation table).
        shifted = [
            Event(e.op,
                  e.addr + shift if (e.addr or e.size) else e.addr,
                  e.size,
                  e.addr2 + shift if (e.addr2 or e.size2) else e.addr2,
                  e.size2, e.site, e.seq)
            for e in events
        ]
        for tid, evs in ((0, events), (1, events), (2, shifted)):
            trace = Trace(trace_id=tid, events=list(evs))
            _results_identical(
                baseline.check_trace(trace), cached.check_trace(trace)
            )
