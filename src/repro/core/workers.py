"""Master/worker checking runtime (paper Section 4.4, Figure 8).

PMTest decouples program execution from checker validation: the program
pushes completed traces (``PMTest_SEND_TRACE``) to a master, the master
dispatches them to a pool of checking workers, and
``PMTest_GET_RESULT`` blocks until every trace submitted so far has
been tested.  Traces are independent, so this parallelism is
embarrassingly safe.

*Where* the checking runs is a pluggable strategy
(:mod:`repro.core.backends`): inline on the submitting thread
(``workers=0``, deterministic unit-test mode), on Python worker threads
(the paper's architecture; concurrency but no parallel speedup under
the GIL), or on worker *processes* (true multi-core checking — the
backend that reproduces Fig. 12's worker-scaling on a multi-core
host).  :class:`WorkerPool` is the facade the rest of the system
drives; it owns backend selection and the closed-pool guard.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.backends import (
    BACKEND_NAMES,
    DEFAULT_BATCH_SIZE,
    CheckingBackend,
    make_backend,
)
from repro.core.events import Trace
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules

__all__ = ["WorkerPool", "BACKEND_NAMES", "DEFAULT_BATCH_SIZE"]


class WorkerPool:
    """Dispatch of traces to checking workers, behind a backend strategy.

    Parameters
    ----------
    rules:
        Persistency-model checking rules (default x86).
    num_workers:
        Checking workers.  With ``backend=None``, ``0`` selects the
        ``inline`` backend and anything else the ``thread`` backend
        (the historical knob).
    backend:
        ``"inline"``, ``"thread"`` or ``"process"`` to pick the
        checking backend explicitly; ``None`` derives it from
        ``num_workers`` as above.
    batch_size:
        Traces per IPC message (process backend only).
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        name: str = "pmtest",
        backend: Optional[str] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self._backend: CheckingBackend = make_backend(
            backend,
            rules,
            num_workers=num_workers,
            batch_size=batch_size,
            thread_name=name,
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """Which checking backend is active (inline/thread/process)."""
        return self._backend.name

    @property
    def num_workers(self) -> int:
        return self._backend.num_workers

    @property
    def synchronous(self) -> bool:
        """Whether traces are checked inline on the submitting thread."""
        return self._backend.name == "inline"

    @property
    def dispatched(self) -> int:
        return self._backend.dispatched

    def worker_trace_counts(self) -> List[int]:
        """How many traces each worker has been handed."""
        return self._backend.worker_trace_counts()

    # ------------------------------------------------------------------
    def submit(self, trace: Trace) -> None:
        """Dispatch one trace for checking (non-blocking with workers)."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._backend.submit(trace)

    def drain(self) -> TestResult:
        """Block until all submitted traces are checked; return a snapshot.

        This is ``PMTest_GET_RESULT``: the snapshot aggregates every trace
        checked since the pool was created, merged in submission order
        regardless of which worker checked what.
        """
        return self._backend.drain()

    def close(self) -> TestResult:
        """Drain, stop all workers, and return the final result."""
        if self._closed:
            return self._backend.drain()
        self._closed = True
        return self._backend.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
