"""Tests for the trace vocabulary and report aggregation."""

from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.reports import (
    FAIL_CODES,
    Level,
    Report,
    ReportCode,
    TestResult,
    merge_results,
)


class TestEvents:
    def test_trace_assigns_sequence_numbers(self):
        trace = Trace(7)
        for _ in range(3):
            trace.append(Event(Op.SFENCE))
        assert [e.seq for e in trace.events] == [0, 1, 2]
        assert len(trace) == 3

    def test_range_helpers(self):
        event = Event(Op.CHECK_ORDER, 0x10, 8, 0x40, 16)
        assert event.end == 0x18
        assert event.end2 == 0x50

    def test_describe_formats(self):
        site = SourceSite("x.c", 3)
        write = Event(Op.WRITE, 0x10, 8, site=site)
        assert "write([0x10, 0x18))" in write.describe()
        assert "x.c:3" in write.describe()
        fence = Event(Op.SFENCE)
        assert fence.describe() == "sfence"
        order = Event(Op.CHECK_ORDER, 0, 8, 16, 8)
        assert "->" in order.describe()

    def test_source_site_str(self):
        assert str(SourceSite("f.py", 12, "g")) == "f.py:12"

    def test_capture_names_this_file(self):
        site = SourceSite.capture(1)
        assert site.file.endswith("test_events_reports.py")
        assert site.function == "test_capture_names_this_file"


class TestReports:
    def _fail(self, code=ReportCode.NOT_PERSISTED):
        return Report(Level.FAIL, code, "boom")

    def _warn(self, code=ReportCode.DUP_FLUSH):
        return Report(Level.WARN, code, "meh")

    def test_partition(self):
        result = TestResult(reports=[self._fail(), self._warn()])
        assert len(result.failures) == 1
        assert len(result.warnings) == 1
        assert not result.passed
        assert not result.clean

    def test_passed_with_only_warnings(self):
        result = TestResult(reports=[self._warn()])
        assert result.passed
        assert not result.clean

    def test_count_and_codes(self):
        result = TestResult(reports=[self._fail(), self._fail(), self._warn()])
        assert result.count(ReportCode.NOT_PERSISTED) == 2
        assert result.codes().count(ReportCode.DUP_FLUSH) == 1

    def test_merge_results(self):
        a = TestResult(reports=[self._fail()], traces_checked=1,
                       events_checked=10, checkers_evaluated=2)
        b = TestResult(reports=[self._warn()], traces_checked=2,
                       events_checked=5, checkers_evaluated=1)
        merged = merge_results([a, b])
        assert merged.traces_checked == 3
        assert merged.events_checked == 15
        assert merged.checkers_evaluated == 3
        assert len(merged.reports) == 2

    def test_summary_mentions_counts(self):
        result = TestResult(reports=[self._fail()], traces_checked=1)
        assert "1 FAIL" in result.summary()

    def test_str_includes_sites(self):
        report = Report(
            Level.FAIL,
            ReportCode.NOT_ORDERED,
            "x",
            site=SourceSite("a.c", 1),
            related_site=SourceSite("b.c", 2),
        )
        text = str(report)
        assert "a.c:1" in text
        assert "b.c:2" in text

    def test_fail_codes_are_fails_only(self):
        assert ReportCode.NOT_PERSISTED in FAIL_CODES
        assert ReportCode.DUP_FLUSH not in FAIL_CODES
