"""Tests for the PMFS-like filesystem, journal, and kernel bridge."""

import random

import pytest

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine
from repro.pmfs import PMFS, FSError, KernelBridge
from repro.pmfs.fs import recover_fs_image, validate_fs_image
from repro.pmfs.journal import Journal, JournalFull, recover_journal


def make_fs(session=None, faults=(), size=4 << 20):
    runtime = PMRuntime(machine=PMMachine(size), session=session)
    return PMFS(runtime, journal_capacity=8192, faults=faults)


def make_session():
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    return session


class TestFilesystemBasics:
    def test_create_read_write(self):
        fs = make_fs()
        fs.create(b"hello.txt")
        fs.write(b"hello.txt", 0, b"hello world")
        assert fs.read(b"hello.txt") == b"hello world"
        assert fs.stat(b"hello.txt")["size"] == 11

    def test_write_at_offset(self):
        fs = make_fs()
        fs.create(b"f")
        fs.write(b"f", 0, b"aaaa")
        fs.write(b"f", 2, b"bb")
        assert fs.read(b"f") == b"aabb"

    def test_write_spanning_blocks(self):
        fs = make_fs()
        fs.create(b"f")
        data = bytes(range(256)) * 3  # 768 bytes, 3+ blocks of 256
        fs.write(b"f", 0, data)
        assert fs.read(b"f") == data

    def test_sparse_hole_reads_zero(self):
        fs = make_fs()
        fs.create(b"f")
        fs.write(b"f", 600, b"x")
        data = fs.read(b"f")
        assert len(data) == 601
        assert data[:600] == b"\0" * 600

    def test_unlink(self):
        fs = make_fs()
        fs.create(b"f")
        fs.write(b"f", 0, b"data")
        fs.unlink(b"f")
        assert b"f" not in fs.list_names()
        with pytest.raises(FSError):
            fs.read(b"f")

    def test_unlink_frees_blocks(self):
        fs = make_fs()
        before = fs.arena.allocated_bytes
        fs.create(b"f")
        fs.write(b"f", 0, b"x" * 600)
        fs.unlink(b"f")
        assert fs.arena.allocated_bytes == before

    def test_duplicate_create_rejected(self):
        fs = make_fs()
        fs.create(b"f")
        with pytest.raises(FSError):
            fs.create(b"f")

    def test_missing_file_errors(self):
        fs = make_fs()
        for op in (
            lambda: fs.read(b"nope"),
            lambda: fs.write(b"nope", 0, b"x"),
            lambda: fs.unlink(b"nope"),
            lambda: fs.fsync(b"nope"),
            lambda: fs.stat(b"nope"),
        ):
            with pytest.raises(FSError):
                op()

    def test_file_size_limit(self):
        fs = make_fs()
        fs.create(b"f")
        with pytest.raises(FSError):
            fs.write(b"f", 0, b"x" * (fs.max_file_size() + 1))

    def test_long_name_rejected(self):
        fs = make_fs()
        with pytest.raises(FSError):
            fs.create(b"x" * 25)

    def test_out_of_inodes(self):
        fs = make_fs()
        for i in range(fs.ninodes):
            fs.create(f"f{i}".encode())
        with pytest.raises(FSError):
            fs.create(b"one-too-many")

    def test_many_files_roundtrip(self):
        fs = make_fs()
        contents = {}
        rng = random.Random(2)
        for i in range(20):
            name = f"file{i}".encode()
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 900)))
            fs.create(name)
            fs.write(name, 0, data)
            contents[name] = data
        for name, data in contents.items():
            assert fs.read(name) == data

    def test_reopen_without_mkfs(self):
        fs = make_fs()
        fs.create(b"f")
        fs.write(b"f", 0, b"keep")
        again = PMFS(fs.runtime, journal_capacity=8192, mkfs=False)
        assert again.read(b"f") == b"keep"

    def test_open_unformatted_rejected(self):
        runtime = PMRuntime(machine=PMMachine(4 << 20))
        with pytest.raises(FSError):
            PMFS(runtime, journal_capacity=8192, mkfs=False)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            make_fs(faults=("not-a-fault",))


class TestPMTestDetection:
    def _run(self, faults=()):
        session = make_session()
        fs = make_fs(session=session, faults=faults)
        session.send_trace()
        fs.create(b"f")
        fs.write(b"f", 0, b"x" * 300)
        fs.fsync(b"f")
        fs.unlink(b"f")
        return session.exit()

    def test_clean_fs_produces_no_reports(self):
        result = self._run()
        assert result.clean, [str(r) for r in result.reports[:5]]

    @pytest.mark.parametrize(
        "fault,code",
        [
            ("commit-dup-flush", ReportCode.DUP_FLUSH),  # paper Bug 1
            ("xip-dup-flush", ReportCode.DUP_FLUSH),  # xips.c
            ("fsync-extra-flush", ReportCode.UNNECESSARY_FLUSH),  # files.c
            ("write-no-flush", ReportCode.NOT_ORDERED),
            ("size-early", ReportCode.NOT_ORDERED),
            ("meta-no-fence", ReportCode.NOT_ORDERED),
            ("log-no-flush", ReportCode.NOT_PERSISTED),
            ("log-no-fence", ReportCode.NOT_PERSISTED),
            ("no-commit-flush", ReportCode.NOT_PERSISTED),
        ],
    )
    def test_fault_detected(self, fault, code):
        result = self._run(faults=(fault,))
        assert result.count(code) >= 1, result.codes()


class TestJournalRecovery:
    def test_uncommitted_transaction_rolled_back(self):
        fs = make_fs()
        fs.create(b"keep")
        inode = fs.inode_addr(7)
        tx = fs.journal.begin()
        tx.log_range(inode, 16)
        fs.runtime.store_u64(inode, 1)  # modify without commit
        image = fs.runtime.machine.volatile.snapshot()
        undone = recover_journal(image, fs.journal_base, fs.journal_capacity)
        assert undone >= 1
        assert image.read_u64(inode) == 0

    def test_committed_transaction_not_rolled_back(self):
        fs = make_fs()
        inode = fs.inode_addr(7)
        tx = fs.journal.begin()
        tx.log_range(inode, 16)
        fs.runtime.store_u64(inode, 1)
        fs.runtime.persist(inode, 8)
        tx.commit()
        image = fs.runtime.machine.volatile.snapshot()
        assert recover_journal(image, fs.journal_base, fs.journal_capacity) == 0
        assert image.read_u64(inode) == 1

    def test_generations_isolate_transactions(self):
        fs = make_fs()
        fs.create(b"a")  # committed tx, generation g
        fs.create(b"b")  # committed tx, generation g+1
        # A fresh uncommitted tx must not be confused by old entries.
        inode = fs.inode_addr(9)
        tx = fs.journal.begin()
        tx.log_range(inode, 16)
        fs.runtime.store_u64(inode, 1)
        image = fs.runtime.machine.volatile.snapshot()
        undone = recover_journal(image, fs.journal_base, fs.journal_capacity)
        assert undone >= 1
        assert image.read_u64(inode) == 0
        # The committed files survive.
        assert validate_fs_image(image, fs)

    def test_journal_full(self):
        fs = make_fs()
        tx = fs.journal.begin()
        with pytest.raises(JournalFull):
            for _ in range(fs.journal.max_entries + 1):
                tx.log_range(fs.inode_addr(0), 32)


class TestCrashTruth:
    def _images(self, machine, budget=2048, samples=48):
        enum = CrashEnumerator(machine)
        if enum.count() <= budget:
            return list(enum.iter_images())
        return list(enum.sample(random.Random(0), samples))

    def test_quiescent_fs_consistent(self):
        fs = make_fs()
        for i in range(6):
            name = f"f{i}".encode()
            fs.create(name)
            fs.write(name, 0, bytes([i]) * 100)
        for image in self._images(fs.runtime.machine):
            recover_fs_image(image, fs)
            assert validate_fs_image(image, fs)

    def test_mid_create_crash_consistent(self):
        fs = make_fs()
        fs.create(b"a")
        inode = fs.inode_addr(5)
        dirent = fs.dirent_addr(5)
        tx = fs.journal.begin()
        tx.log_range(inode, 96)
        tx.log_range(dirent, 32)
        fs.runtime.store_u64(inode, 1)
        fs.runtime.store_u64(dirent, 6)
        fs.runtime.store(dirent + 8, b"ghost".ljust(24, b"\0"))
        # Crash before commit: every state must recover consistently.
        for image in self._images(fs.runtime.machine):
            recover_fs_image(image, fs)
            assert validate_fs_image(image, fs)

    def test_meta_no_fence_breaks_somewhere(self):
        """The meta-no-fence fault (commit may beat the metadata) must
        produce a real inconsistency in some crash state."""
        fs = make_fs(faults=("meta-no-fence",))
        fs.create(b"a")
        # The last create left pending state behind only if the fence is
        # missing; run another create and inspect its window: emulate the
        # dangerous interleaving directly instead (deterministic): the
        # dirent persisted, the inode did not, and the commit persisted.
        image = fs.runtime.machine.durable.snapshot()
        inode = fs.inode_addr(9)
        dirent = fs.dirent_addr(9)
        tx = fs.journal.begin()
        tx.log_range(inode, 16)
        tx.log_range(dirent, 32)
        fs.runtime.store_u64(inode, 1)
        fs.runtime.store_u64(dirent, 10)
        fs.runtime.store(dirent + 8, b"torn".ljust(24, b"\0"))
        fs.runtime.clwb(dirent, 32)
        commit_entry = tx.commit()
        found_bad = False
        for image in self._images(fs.runtime.machine):
            recover_fs_image(image, fs)
            if not validate_fs_image(image, fs):
                found_bad = True
                break
        assert found_bad


class TestKernelBridge:
    def test_traces_cross_the_fifo(self):
        bridge = KernelBridge(num_workers=2, fifo_capacity=8)
        session = PMTestSession(workers=0, sink=bridge)
        session.thread_init()
        session.start()
        fs = make_fs(session=session)
        session.send_trace()
        for i in range(20):
            fs.create(f"f{i}".encode())
            fs.write(f"f{i}".encode(), 0, b"x" * 100)
            session.send_trace()
        result = session.exit()
        assert result.clean
        assert result.traces_checked >= 20

    def test_backpressure_parks_the_kernel_side(self):
        # A tiny FIFO with a slow consumer must trigger producer waits.
        bridge = KernelBridge(num_workers=1, fifo_capacity=2)
        session = PMTestSession(workers=0, sink=bridge)
        session.thread_init()
        session.start()
        fs = make_fs(session=session)
        session.send_trace()
        for i in range(40):
            fs.create(f"f{i}".encode())
            session.send_trace()
        result = session.exit()
        assert result.clean
        # Backpressure may or may not trigger depending on scheduling;
        # the invariant is that nothing was lost either way.
        assert bridge.pool.dispatched == bridge.dispatched

    def test_bridge_detects_bugs_end_to_end(self):
        bridge = KernelBridge(num_workers=1, fifo_capacity=8)
        session = PMTestSession(workers=0, sink=bridge)
        session.thread_init()
        session.start()
        fs = make_fs(session=session, faults=("commit-dup-flush",))
        session.send_trace()
        fs.create(b"f")
        result = session.exit()
        assert result.count(ReportCode.DUP_FLUSH) >= 1
