"""The Table 5 / Table 6 claim: PMTest reports every bug in the corpus.

One test per bug case (so a regression names the exact case it broke),
plus structural checks that the catalog matches the paper's counts and
that fault-free versions of every target stay clean.
"""

import pytest

from repro.bugs import HISTORICAL_BUGS, SYNTHETIC_BUGS, run_bug_case
from repro.bugs.registry import EXPECTED_COUNTS, BugCase, bugs_by_category


class TestCatalogShape:
    def test_table5_counts(self):
        grouped = bugs_by_category()
        for category, count in EXPECTED_COUNTS.items():
            assert len(grouped[category]) == count, category

    def test_42_synthetic_cases(self):
        assert len(SYNTHETIC_BUGS) == 42

    def test_6_historical_cases(self):
        assert len(HISTORICAL_BUGS) == 6
        assert sum(1 for c in HISTORICAL_BUGS if c.category == "known") == 3
        assert sum(1 for c in HISTORICAL_BUGS if c.category == "new") == 3

    def test_45_manually_created_bugs(self):
        """The abstract's accounting: 42 synthetic + 3 reproduced."""
        reproduced = [c for c in HISTORICAL_BUGS if c.category == "known"]
        assert len(SYNTHETIC_BUGS) + len(reproduced) == 45

    def test_every_case_has_expectations(self):
        for case in SYNTHETIC_BUGS + HISTORICAL_BUGS:
            assert case.expected, case.bug_id
            assert case.faults or case.tx_faults or case.log_faults


@pytest.mark.parametrize(
    "case", SYNTHETIC_BUGS, ids=[c.bug_id for c in SYNTHETIC_BUGS]
)
def test_synthetic_bug_detected(case: BugCase):
    outcome = run_bug_case(case, scale=30)
    assert outcome.detected, (
        f"{case.bug_id} expected {sorted(c.value for c in case.expected)}, "
        f"got {sorted(c.value for c in outcome.fired)}"
    )


@pytest.mark.parametrize(
    "case", HISTORICAL_BUGS, ids=[c.bug_id for c in HISTORICAL_BUGS]
)
def test_historical_bug_detected(case: BugCase):
    outcome = run_bug_case(case, scale=30)
    assert outcome.detected, (
        f"{case.bug_id} ({case.historical}) expected "
        f"{sorted(c.value for c in case.expected)}, got "
        f"{sorted(c.value for c in outcome.fired)}"
    )


@pytest.mark.parametrize(
    "target,workload",
    sorted(
        {(c.target, c.workload) for c in SYNTHETIC_BUGS + HISTORICAL_BUGS}
    ),
)
def test_fault_free_baseline_is_clean(target, workload):
    """Control: the same drivers with no fault injected report nothing."""
    clean = BugCase(
        bug_id="CLEAN",
        category="control",
        target=target,
        description="no fault injected",
        workload=workload,
        expected=frozenset(),
    )
    outcome = run_bug_case(clean, scale=30)
    assert outcome.result.clean, [str(r) for r in outcome.result.reports[:5]]
