"""End-to-end integration: every layer of the stack in one scenario.

A 'day in the life' test: a multi-threaded Memcached, a Redis with
eviction, and a PMFS under filebench all run against their own PM
machines under one shared checking configuration, traces flow through
workers (and the kernel FIFO for PMFS), and everything comes back
clean; then one fault is injected into each and each is caught.
"""

import pytest

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmfs import PMFS, KernelBridge
from repro.workloads import (
    MemcachedServer,
    RedisServer,
    drive_fs,
    drive_kv,
    filebench_ops,
    memslap_ops,
    redis_lru_ops,
    run_client_threads,
)


def test_memcached_multithreaded_clean_through_workers():
    session = PMTestSession(workers=3)
    runtime = PMRuntime(machine=PMMachine(32 << 20), session=session)
    pool = PMPool(runtime, log_capacity=512 * 1024)
    server = MemcachedServer(pool)

    def worker(index):
        return drive_kv(
            server,
            memslap_ops(120, key_space=40, seed=index),
            session=session,
            trace_every=4,
        )

    run_client_threads(worker, 3, session=session)
    result = session.exit()
    assert result.clean
    assert result.traces_checked >= 30
    # Round-robin actually used multiple workers.
    counts = session.pool.worker_trace_counts()
    assert sum(1 for c in counts if c > 0) >= 2


def test_redis_with_eviction_clean_under_tx_checkers():
    session = PMTestSession(workers=2)
    session.thread_init()
    session.start()
    runtime = PMRuntime(machine=PMMachine(32 << 20), session=session)
    pool = PMPool(runtime, log_capacity=512 * 1024)
    server = RedisServer(pool, maxkeys=25)
    session.send_trace()
    drive_kv(server, redis_lru_ops(120), session=session, trace_every=4)
    result = session.exit()
    assert result.clean
    assert server.evictions > 0


def test_pmfs_through_kernel_bridge_clean():
    bridge = KernelBridge(num_workers=2, fifo_capacity=32)
    session = PMTestSession(workers=0, sink=bridge)
    session.thread_init()
    session.start()
    runtime = PMRuntime(machine=PMMachine(8 << 20), session=session)
    fs = PMFS(runtime, journal_capacity=32 * 1024)
    session.send_trace()
    drive_fs(fs, filebench_ops(200, seed=9), session=session, trace_every=4)
    result = session.exit()
    assert result.clean
    assert result.traces_checked > 10


@pytest.mark.parametrize(
    "layer,expected",
    [
        ("redis-tx", ReportCode.TX_NOT_PERSISTED),
        ("pmfs-journal", ReportCode.DUP_FLUSH),
        ("mnemosyne-log", ReportCode.NOT_PERSISTED),
    ],
)
def test_one_fault_per_layer_detected(layer, expected):
    session = PMTestSession(workers=1)
    session.thread_init()
    session.start()
    runtime = PMRuntime(machine=PMMachine(32 << 20), session=session)
    if layer == "redis-tx":
        pool = PMPool(runtime, log_capacity=512 * 1024,
                      tx_faults=("commit-no-flush",))
        server = RedisServer(pool, maxkeys=30)
        session.send_trace()
        drive_kv(server, redis_lru_ops(40), session=session, trace_every=4)
    elif layer == "pmfs-journal":
        fs = PMFS(runtime, journal_capacity=32 * 1024,
                  faults=("commit-dup-flush",))
        session.send_trace()
        drive_fs(fs, filebench_ops(60, seed=3), session=session,
                 trace_every=4)
    else:
        pool = PMPool(runtime, log_capacity=512 * 1024)
        server = MemcachedServer.__new__(MemcachedServer)
        from repro.mnemosyne.pmap import MnemosyneMap
        import threading

        server.map = MnemosyneMap(pool, log_faults=("apply-no-flush",))
        server.lock = threading.Lock()
        server.stats = {"set": 0, "get": 0, "delete": 0, "hit": 0, "miss": 0}
        session.send_trace()
        drive_kv(server, memslap_ops(60, key_space=20, set_ratio=0.5),
                 session=session, trace_every=4)
    result = session.exit()
    assert result.count(expected) >= 1, result.summary()
