"""Framing and handshake-message tests for the daemon wire protocol."""

import asyncio
import socket

import pytest

from repro.core.reports import Level, Report, ReportCode, TestResult
from repro.core.traceio import (
    decode_message,
    encode_bye_message,
    encode_drain_message,
    encode_error_message,
    encode_hello_message,
    encode_session_ack_message,
    encode_shed_message,
    encode_verdict_message,
    encode_welcome_message,
)
from repro.daemon.protocol import (
    DEFAULT_MAX_FRAME,
    FRAME_HEADER,
    ProtocolError,
    aread_frame,
    frame_bytes,
    read_frame,
    write_frame,
)


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestSyncFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            write_frame(a, b"hello world")
            assert read_frame(b) == b"hello world"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket_pair()
        try:
            write_frame(a, b"")
            assert read_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket_pair()
        a.close()
        try:
            assert read_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_header_raises(self):
        a, b = socket_pair()
        a.sendall(b"\x00\x00")
        a.close()
        try:
            with pytest.raises(ProtocolError, match="mid frame header"):
                read_frame(b)
        finally:
            b.close()

    def test_eof_mid_body_raises(self):
        a, b = socket_pair()
        a.sendall(FRAME_HEADER.pack(100) + b"partial")
        a.close()
        try:
            with pytest.raises(ProtocolError, match="mid frame body"):
                read_frame(b)
        finally:
            b.close()

    def test_oversize_frame_rejected_before_allocation(self):
        a, b = socket_pair()
        a.sendall(FRAME_HEADER.pack(DEFAULT_MAX_FRAME + 1))
        try:
            with pytest.raises(ProtocolError, match="ceiling"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_back_to_back_frames(self):
        a, b = socket_pair()
        try:
            a.sendall(frame_bytes(b"one") + frame_bytes(b"two"))
            assert read_frame(b) == b"one"
            assert read_frame(b) == b"two"
        finally:
            a.close()
            b.close()


class TestAsyncFraming:
    def run_reader(self, wire: bytes, max_frame=DEFAULT_MAX_FRAME, n=1):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(wire)
            reader.feed_eof()
            return [await aread_frame(reader, max_frame) for _ in range(n)]

        return asyncio.run(go())

    def test_round_trip(self):
        [frame] = self.run_reader(frame_bytes(b"payload"))
        assert frame == b"payload"

    def test_clean_eof_is_none(self):
        [frame] = self.run_reader(b"")
        assert frame is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid frame header"):
            self.run_reader(b"\x00")

    def test_eof_mid_body_raises(self):
        with pytest.raises(ProtocolError, match="mid frame body"):
            self.run_reader(FRAME_HEADER.pack(10) + b"abc")

    def test_oversize_frame_rejected(self):
        with pytest.raises(ProtocolError, match="ceiling"):
            self.run_reader(FRAME_HEADER.pack(2048), max_frame=1024)

    def test_wire_compatible_with_sync_writer(self):
        a, b = socket_pair()
        try:
            write_frame(a, b"cross")
            raw = b.recv(4096)
        finally:
            a.close()
            b.close()
        [frame] = self.run_reader(raw)
        assert frame == b"cross"


class TestSessionMessages:
    def test_hello_round_trip(self):
        wire = encode_hello_message("tenant-a", {"engine": "columnar"})
        assert decode_message(wire) == (
            "hello", "tenant-a", {"engine": "columnar"}, None
        )

    def test_welcome_round_trip(self):
        wire = encode_welcome_message(7, 1 << 20)
        assert decode_message(wire) == ("welcome", 7, 1 << 20)

    def test_control_frames(self):
        assert decode_message(encode_drain_message()) == ("drain", None)
        assert decode_message(encode_bye_message()) == ("bye",)
        assert decode_message(encode_session_ack_message(42)) == ("sack", 42)

    def test_shed_round_trip(self):
        wire = encode_shed_message(250, "inflight budget exhausted")
        assert decode_message(wire) == (
            "shed", 250, "inflight budget exhausted"
        )

    def test_error_round_trip(self):
        wire = encode_error_message("session rejected: too many sheds")
        assert decode_message(wire) == (
            "error", "session rejected: too many sheds"
        )

    def test_verdict_round_trip_with_diagnostics(self):
        result = TestResult(
            reports=[
                Report(
                    Level.FAIL,
                    ReportCode.NOT_PERSISTED,
                    "write never persisted",
                    trace_id=3,
                    seq=1,
                )
            ],
            traces_checked=4,
            events_checked=16,
            checkers_evaluated=4,
        )
        wire = encode_verdict_message(result, ["worker 0 respawned"])
        kind, decoded, diagnostics, span, registry = decode_message(wire)
        assert kind == "verdict"
        assert decoded.summary() == result.summary()
        assert decoded.reports[0].code is ReportCode.NOT_PERSISTED
        assert diagnostics == ["worker 0 respawned"]
        assert span is None
        assert registry is None
