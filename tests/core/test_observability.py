"""End-to-end observability: every backend's registry merges to the
same engine totals, results carry deterministic metadata, and the
kernel FIFO reports its occupancy."""

import pytest

from repro.core.api import PMTestSession
from repro.core.kfifo import KernelFifo
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.reports import TestResult, _merge_metadata_value
from repro.core.traceio import TraceRecorder
from repro.core.tracing import Tracer
from repro.core.workers import WorkerPool
from repro.pmfs.kernel import KernelBridge


def record_traces(n=6):
    """n identical single-thread traces with one real checker each."""
    traces = []
    for _ in range(n):
        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        session.thread_init()
        session.start()
        session.write(0x10, 8)
        session.clwb(0x10, 8)
        session.sfence()
        session.is_persist(0x10, 8)
        session.exit()
        traces.extend(recorder.traces)
    return traces


def run_backend(backend, traces, workers=2, transport=None, codec=None):
    registry = MetricsRegistry(MetricsLevel.FULL)
    with WorkerPool(
        num_workers=workers if backend != "inline" else 0,
        backend=backend,
        transport=transport,
        codec=codec,
        metrics=registry,
    ) as pool:
        for trace in traces:
            pool.submit(trace)
        result = pool.drain()
        snapshot = pool.metrics_snapshot()
    return result, snapshot


ENGINE_COUNTERS = (
    "engine.traces",
    "engine.events",
    "engine.checkers",
    "engine.reports",
    "engine.interval_queries",
    "engine.interval_scanned",
)


class TestBackendRegistryEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_totals_match_inline_exactly(self, backend):
        traces = record_traces()
        _, inline_snap = run_backend("inline", traces)
        _, other_snap = run_backend(backend, traces)
        for name in ENGINE_COUNTERS:
            assert other_snap.counter_value(name) == inline_snap.counter_value(
                name
            ), name
        # Every submitted trace was ingested and the drain ran once.
        assert other_snap.counter_value("stage.trace_ingest.count") == len(
            traces
        )
        assert other_snap.counter_value("stage.drain.count") == 1

    @pytest.mark.parametrize(
        "transport,codec",
        [("queue", "pickle"), ("queue", "binary"), ("shm", "binary")],
    )
    def test_totals_match_inline_across_transports(self, transport, codec):
        """Engine counter totals are transport- and codec-independent:
        the wire layer must not change what the workers computed."""
        traces = record_traces()
        _, inline_snap = run_backend("inline", traces)
        _, other_snap = run_backend(
            "process", traces, transport=transport, codec=codec
        )
        for name in ENGINE_COUNTERS:
            assert other_snap.counter_value(name) == inline_snap.counter_value(
                name
            ), name

    def test_full_level_records_stage_nanoseconds(self):
        traces = record_traces()
        _, snap = run_backend("inline", traces)
        assert snap.counter_value("stage.shadow_update.ns") > 0
        assert snap.counter_value("stage.checker_validate.ns") > 0
        assert snap.counter_value("stage.shadow_update.count") > 0

    def test_per_opcode_histograms_exist_at_full(self):
        traces = record_traces()
        _, snap = run_backend("inline", traces)
        histograms = snap.histograms()
        assert "engine.op_ns.WRITE" in histograms
        assert histograms["engine.op_ns.WRITE"].count == len(traces)

    def test_basic_level_counts_without_clocks(self):
        traces = record_traces()
        registry = MetricsRegistry(MetricsLevel.BASIC)
        with WorkerPool(num_workers=0, metrics=registry) as pool:
            for trace in traces:
                pool.submit(trace)
            pool.drain()
            snap = pool.metrics_snapshot()
        assert snap.counter_value("engine.traces") == len(traces)
        assert snap.counter_value("engine.op.WRITE") == len(traces)
        assert snap.counter_value("stage.shadow_update.ns") == 0

    def test_snapshot_is_stable_across_calls(self):
        traces = record_traces(3)
        registry = MetricsRegistry(MetricsLevel.FULL)
        with WorkerPool(num_workers=2, backend="thread",
                        metrics=registry) as pool:
            for trace in traces:
                pool.submit(trace)
            pool.drain()
            first = pool.metrics_snapshot()
            second = pool.metrics_snapshot()
        assert first.to_dict() == second.to_dict()  # no double merging

    def test_metrics_off_means_no_snapshot(self, monkeypatch):
        monkeypatch.delenv("PMTEST_METRICS", raising=False)
        with WorkerPool(num_workers=0, metrics=None) as pool:
            for trace in record_traces(1):
                pool.submit(trace)
            pool.drain()
            assert pool.metrics_snapshot() is None


class TestResultMetadata:
    def test_result_names_its_backend(self):
        traces = record_traces(2)
        for backend in ("inline", "thread"):
            result, _ = run_backend(backend, traces)
            assert result.metadata["backend"] == backend
            assert result.metadata["degraded"] is False

    def test_merge_is_order_independent(self):
        def results():
            a = TestResult(traces_checked=1, metadata={"backend": "thread"})
            b = TestResult(
                traces_checked=2, metadata={"backend": "thread", "n": 3}
            )
            return a, b

        a1, b1 = results()
        a1.merge(b1)
        a2, b2 = results()
        b2.merge(a2)
        assert a1.metadata == b2.metadata
        assert a1.metadata == {"backend": "thread", "n": 3}

    def test_value_rules(self):
        assert _merge_metadata_value(True, False) is True
        assert _merge_metadata_value(False, False) is False
        assert _merge_metadata_value(2, 3) == 5
        assert _merge_metadata_value([2], [1]) == [1, 2]
        assert _merge_metadata_value({"a": 1}, {"a": 2, "b": True}) == {
            "a": 3,
            "b": True,
        }
        assert _merge_metadata_value("x", "x") == "x"
        # conflicting scalars resolve by value ordering, not arrival order
        assert _merge_metadata_value("b", "a") == "a"
        assert _merge_metadata_value("a", "b") == "a"


class TestKernelFifoMetrics:
    def test_put_get_counters_and_occupancy(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        fifo = KernelFifo(capacity=4, metrics=registry)
        fifo.put("a")
        fifo.put("b")
        assert fifo.get() == "a"
        assert registry.counter_value("kfifo.puts") == 2
        assert registry.counter_value("kfifo.gets") == 1
        occupancy = registry.histograms()["kfifo.occupancy"]
        assert occupancy.count == 2
        assert occupancy.vmax == 2

    def test_kernel_bridge_snapshot_includes_fifo(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        bridge = KernelBridge(num_workers=0, metrics=registry)
        try:
            for trace in record_traces(2):
                bridge.submit(trace)
            result = bridge.drain()
        finally:
            bridge.close()
        snap = bridge.metrics_snapshot()
        assert result.traces_checked == 2
        assert snap.counter_value("kfifo.puts") == 2
        assert snap.counter_value("kfifo.gets") == 2
        assert snap.counter_value("engine.traces") == 2


class TestSessionPlumbing:
    def test_session_exposes_merged_snapshot(self):
        registry = MetricsRegistry(MetricsLevel.FULL)
        session = PMTestSession(workers=0, metrics=registry)
        session.thread_init()
        session.start()
        session.write(0x10, 8)
        session.clwb(0x10, 8)
        session.sfence()
        session.is_persist(0x10, 8)
        result = session.exit()
        assert result.traces_checked == 1
        snap = session.metrics_snapshot()
        assert snap is not None
        assert snap.counter_value("engine.traces") == 1

    def test_tracer_sees_submit_and_drain(self):
        tracer = Tracer(strict=True)
        registry = MetricsRegistry(MetricsLevel.BASIC)
        with WorkerPool(num_workers=0, metrics=registry,
                        tracer=tracer) as pool:
            for trace in record_traces(2):
                pool.submit(trace)
            pool.drain()
        tracer.finish()
        names = [e["name"] for e in tracer.events()]
        assert names.count("submit") == 2
        assert "drain" in names
