"""Decode-once shared-memory column arenas for zero-copy shard dispatch.

Epoch sharding (DESIGN.md §10) made large traces parallelizable, but the
dispatch still shipped payload: every shard was re-encoded from its
columns into the tuple wire, framed, copied through the transport,
and re-decoded in the worker — the same bytes moving four times per
shard.  A :class:`ColumnArena` removes all of it.  The submitting
process lays a trace's columns out **once** in a named
``multiprocessing.shared_memory`` segment, and a shard becomes an O(1)
descriptor — segment name plus epoch-range offsets — that workers
resolve into :class:`~repro.core.columns.ColumnarTrace` views backed by
``memoryview`` slices of the very same pages.  No per-shard encode, no
copy, no decode.

Segment layout (little-endian)::

    [header 104 bytes]
    [ops: n bytes][flags: n bytes][pad to 8]
    [addrs: n i64][sizes: n i64][addr2s: n i64][size2s: n i64]
    [site_idx: n i64][seqs: n i64, only when present]
    [meta blob: pickled (thread_name, site_table)]

    header = magic "PMCA" | version u16 | flags u16 | trace_id i64
           | n_events u64 | 8 column offsets u64 | meta off/len u64

The integer columns are 8-byte aligned so attaching is a
``memoryview.cast("q")`` — indexing them is as fast as ``array('q')``
and slicing them is free.  The meta blob (thread name plus the interned
site table) is decoded once per attach, never per event.

Lifecycle mirrors :class:`~repro.core.shm_ring.ShmRing`: the arena is
immutable after build, pickles/travels by segment *name*, every process
re-attaches at most once through the module-level cache
(:func:`attach`), and only the building process — guarded by pid, since
forked workers inherit the builder object — unlinks the segment on
:meth:`ColumnArena.release`.  ``release`` is idempotent and safe while
readers still hold views: the name is unlinked immediately (POSIX keeps
the pages alive for existing mappings) and our own mapping is closed
best-effort once no column view pins it.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

from repro.core.columns import ColumnarTrace

__all__ = [
    "ArenaError",
    "ArenaOverflow",
    "ColumnArena",
    "ArenaShardRef",
    "DESCRIPTOR_TAG",
    "attach",
    "ensure_tracker",
    "is_descriptor",
    "resolve_descriptor",
]

#: First element of a shard-descriptor wire tuple (and the segment
#: magic): ``("PMCA", segment_name, trace_id, end, check_from)``.
DESCRIPTOR_TAG = "PMCA"

_MAGIC = b"PMCA"
_VERSION = 1
_FLAG_SEQS = 0x01

#: magic | version | flags | trace_id | n_events | ops/flags/addrs/
#: sizes/addr2s/size2s/site_idx/seqs offsets | meta offset | meta length
_HEADER = struct.Struct("<4sHHq11Q")


class ArenaError(Exception):
    """A descriptor that cannot be resolved (gone, truncated, bogus)."""


class ArenaOverflow(ArenaError):
    """Trace columns that do not fit the fixed-width arena layout.

    Raised at build time when a column fell back to a plain Python list
    (a value outside the signed 64-bit range); callers fall back to
    ordinary payload shipping.
    """


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _i64_column(col, what: str) -> array:
    """``col`` as an ``array('q')``, refusing the list fallback."""
    if isinstance(col, array):
        return col
    if isinstance(col, list):
        try:
            return array("q", col)
        except OverflowError:
            raise ArenaOverflow(
                f"{what} column holds values outside 64-bit range"
            ) from None
    # memoryview from another arena: already the right shape.
    return col


class ColumnArena:
    """One trace's columns in a named shared-memory segment."""

    def __init__(
        self,
        cols: Optional[ColumnarTrace] = None,
        *,
        name: Optional[str] = None,
    ) -> None:
        self._released = False
        self._views: Tuple = ()
        if name is None:
            if cols is None:
                raise ValueError("ColumnArena needs columns or a name")
            self._build(cols)
            self._owner_pid = os.getpid()
        else:  # re-attach (descriptor path: workers resolving shards)
            # Attaching re-registers the name with the resource
            # tracker.  Workers must *share* the creator's tracker for
            # this to be a harmless set-add that the creator's unlink
            # balances — which is why :func:`ensure_tracker` runs
            # before any worker is forked (a worker forked before the
            # tracker exists would lazily spawn its own, and that
            # private tracker would "clean up" a crashed worker by
            # unlinking arenas its siblings still resolve).
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner_pid = -1
            self._parse()
        self._name = self._shm.name

    # ------------------------------------------------------------------
    # Build (submitter side)
    # ------------------------------------------------------------------
    def _build(self, cols: ColumnarTrace) -> None:
        n = len(cols)
        addrs = _i64_column(cols.addrs, "addrs")
        sizes = _i64_column(cols.sizes, "sizes")
        addr2s = _i64_column(cols.addr2s, "addr2s")
        size2s = _i64_column(cols.size2s, "size2s")
        site_idx = _i64_column(cols.site_idx, "site_idx")
        seqs = (
            _i64_column(cols.seqs, "seqs") if cols.seqs is not None else None
        )
        meta = pickle.dumps(
            (cols.thread_name, list(cols.site_table)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

        ops_off = _align8(_HEADER.size)
        flags_off = ops_off + n
        addrs_off = _align8(flags_off + n)
        sizes_off = addrs_off + 8 * n
        addr2s_off = sizes_off + 8 * n
        size2s_off = addr2s_off + 8 * n
        site_off = size2s_off + 8 * n
        seqs_off = site_off + 8 * n if seqs is not None else 0
        meta_off = (seqs_off + 8 * n) if seqs is not None else site_off + 8 * n
        total = meta_off + len(meta)

        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = self._shm.buf
        _HEADER.pack_into(
            buf,
            0,
            _MAGIC,
            _VERSION,
            _FLAG_SEQS if seqs is not None else 0,
            cols.trace_id,
            n,
            ops_off,
            flags_off,
            addrs_off,
            sizes_off,
            addr2s_off,
            size2s_off,
            site_off,
            seqs_off,
            meta_off,
            len(meta),
        )
        buf[ops_off:ops_off + n] = bytes(cols.ops)
        buf[flags_off:flags_off + n] = bytes(cols.flags)
        for off, col in (
            (addrs_off, addrs),
            (sizes_off, sizes),
            (addr2s_off, addr2s),
            (size2s_off, size2s),
            (site_off, site_idx),
        ):
            buf[off:off + 8 * n] = memoryview(col).cast("B")
        if seqs is not None:
            buf[seqs_off:seqs_off + 8 * n] = memoryview(seqs).cast("B")
        buf[meta_off:meta_off + len(meta)] = meta
        self._parse()

    # ------------------------------------------------------------------
    # Attach (both sides share the parse)
    # ------------------------------------------------------------------
    def _parse(self) -> None:
        buf = self._shm.buf
        try:
            (
                magic,
                version,
                flags,
                trace_id,
                n,
                ops_off,
                flags_off,
                addrs_off,
                sizes_off,
                addr2s_off,
                size2s_off,
                site_off,
                seqs_off,
                meta_off,
                meta_len,
            ) = _HEADER.unpack_from(buf, 0)
        except struct.error as exc:
            raise ArenaError(f"arena segment too small: {exc}") from None
        if magic != _MAGIC:
            raise ArenaError(f"bad arena magic {bytes(magic)!r}")
        if version != _VERSION:
            raise ArenaError(f"unsupported arena version {version}")
        if meta_off + meta_len > len(buf):
            raise ArenaError("arena header offsets exceed segment size")
        self.trace_id = trace_id
        self.n_events = n
        self._ops = buf[ops_off:ops_off + n]
        self._flags = buf[flags_off:flags_off + n]
        self._addrs = buf[addrs_off:addrs_off + 8 * n].cast("q")
        self._sizes = buf[sizes_off:sizes_off + 8 * n].cast("q")
        self._addr2s = buf[addr2s_off:addr2s_off + 8 * n].cast("q")
        self._size2s = buf[size2s_off:size2s_off + 8 * n].cast("q")
        self._site_idx = buf[site_off:site_off + 8 * n].cast("q")
        self._seqs = (
            buf[seqs_off:seqs_off + 8 * n].cast("q")
            if flags & _FLAG_SEQS
            else None
        )
        try:
            self.thread_name, self.site_table = pickle.loads(
                bytes(buf[meta_off:meta_off + meta_len])
            )
        except Exception as exc:
            raise ArenaError(f"arena meta blob corrupt: {exc!r}") from None
        self._views = (
            self._ops,
            self._flags,
            self._addrs,
            self._sizes,
            self._addr2s,
            self._size2s,
            self._site_idx,
            self._seqs,
        )

    # ------------------------------------------------------------------
    # Zero-copy trace views
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Size of the shared segment in bytes (page-rounded by the OS)."""
        return self._shm.size

    def __len__(self) -> int:
        return self.n_events

    def trace(
        self,
        end: Optional[int] = None,
        check_from: int = 0,
        is_shard: bool = False,
    ) -> ColumnarTrace:
        """A :class:`ColumnarTrace` over ``[0, end)`` whose columns are
        memoryview slices of the shared pages — no bytes are copied and
        no decode runs; ``check_from`` marks where checking starts."""
        if self._released:
            raise ArenaError(f"column arena {self._name} is released")
        n = self.n_events
        if end is None:
            end = n
        if not 0 <= check_from <= end <= n:
            raise ArenaError(
                f"arena range [{check_from}, {end}) outside 0..{n}"
            )
        return ColumnarTrace(
            self.trace_id,
            self.thread_name,
            self._ops[:end],
            self._flags[:end],
            self._addrs[:end],
            self._sizes[:end],
            self._addr2s[:end],
            self._size2s[:end],
            self._site_idx[:end],
            self.site_table,
            self._seqs[:end] if self._seqs is not None else None,
            check_from,
            is_shard,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop our column views and detach the local mapping.

        Best-effort: outstanding :meth:`trace` views exported to callers
        keep the mapping pinned (``BufferError``); the pages go away
        when those views die with their process.
        """
        self._views = ()
        for attr in ("_ops", "_flags", "_addrs", "_sizes", "_addr2s",
                     "_size2s", "_site_idx", "_seqs"):
            if getattr(self, attr, None) is not None:
                setattr(self, attr, None)
        try:
            self._shm.close()
        except BufferError:
            pass

    def release(self) -> None:
        """Idempotent close; the building process also unlinks the name.

        Forked workers inherit the builder object but must never unlink
        a segment their siblings still resolve, hence the pid guard.
        """
        if self._released:
            return
        self._released = True
        _ATTACHED.pop(self._name, None)
        if self._owner_pid == os.getpid():
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.release()
        except Exception:
            pass


#: Per-process attach cache: each worker maps a given arena exactly once
#: no matter how many shard descriptors reference it.  Builders register
#: themselves so the degradation path resolves descriptors in-process.
_ATTACHED: Dict[str, ColumnArena] = {}


def attach(name: str) -> ColumnArena:
    """The process-wide :class:`ColumnArena` for ``name`` (cached)."""
    arena = _ATTACHED.get(name)
    if arena is None or arena._released:
        try:
            arena = ColumnArena(name=name)
        except FileNotFoundError as exc:
            raise ArenaError(f"column arena {name!r} is gone") from exc
        except OSError as exc:
            raise ArenaError(
                f"column arena {name!r} unavailable: {exc!r}"
            ) from exc
        _ATTACHED[name] = arena
    return arena


def _register(arena: ColumnArena) -> None:
    _ATTACHED[arena.name] = arena


class ArenaShardRef:
    """One epoch shard as an O(1) descriptor into a built arena.

    Submit-side only: :func:`repro.core.traceio.encode_trace` turns it
    into the 5-tuple descriptor wire and workers resolve that back into
    a zero-copy trace view via :func:`resolve_descriptor`.
    """

    __slots__ = ("arena", "end", "check_from")

    def __init__(self, arena: ColumnArena, end: int, check_from: int) -> None:
        self.arena = arena
        self.end = end
        self.check_from = check_from

    @property
    def trace_id(self) -> int:
        return self.arena.trace_id

    def __len__(self) -> int:
        return self.end

    def descriptor(self) -> tuple:
        return (
            DESCRIPTOR_TAG,
            self.arena.name,
            self.arena.trace_id,
            self.end,
            self.check_from,
        )

    def resolve(self) -> ColumnarTrace:
        return self.arena.trace(self.end, self.check_from, is_shard=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArenaShardRef({self.arena.name}, id={self.trace_id}, "
            f"end={self.end}, check_from={self.check_from})"
        )


def is_descriptor(wire) -> bool:
    """True when a tuple wire is an arena shard descriptor."""
    return (
        type(wire) is tuple
        and len(wire) == 5
        and wire[0] == DESCRIPTOR_TAG
    )


def resolve_descriptor(wire) -> ColumnarTrace:
    """Resolve a descriptor wire into a zero-copy trace view.

    Raises :class:`ArenaError` (never a bare ``KeyError``/``OSError``)
    on anything unresolvable so the codec can fail typed.
    """
    try:
        _tag, name, trace_id, end, check_from = wire
    except ValueError as exc:
        raise ArenaError(f"malformed arena descriptor: {exc}") from None
    if not isinstance(name, str):
        raise ArenaError("arena descriptor name must be a string")
    arena = attach(name)
    if arena.trace_id != trace_id:
        raise ArenaError(
            f"arena {name} holds trace {arena.trace_id}, "
            f"descriptor wants {trace_id}"
        )
    if not isinstance(end, int) or not isinstance(check_from, int):
        raise ArenaError("arena descriptor offsets must be integers")
    return arena.trace(end, check_from, is_shard=True)


def build_arena(cols: ColumnarTrace) -> ColumnArena:
    """Build and register an arena for ``cols`` (submitter side)."""
    arena = ColumnArena(cols)
    _register(arena)
    return arena


def ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in this process.

    Must run before any worker is forked.  The tracker starts lazily on
    first shared-memory use, so a worker forked earlier would spawn its
    *own* private tracker on attach — and that tracker would "clean up"
    a crashed worker by unlinking arenas its siblings still resolve.
    With the tracker pre-started, every worker inherits its pipe:
    attach-side registrations are harmless set-adds that the creator's
    unlink balances exactly once.
    """
    try:
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platform tracker internals
        pass


def release_attached() -> None:
    """Release every arena in this process's attach cache.

    Workers call this on clean exit so the shared mappings close while
    the interpreter is still healthy — at shutdown, GC may finalize a
    ``SharedMemory`` before the column views that pin its buffer,
    which spews ``BufferError`` noise from ``__del__``.  Creator-owned
    arenas in the cache belong to their pool's ``close()`` and are
    skipped.
    """
    for arena in list(_ATTACHED.values()):
        if arena._owner_pid != os.getpid():
            arena.release()


@atexit.register
def _release_all() -> None:  # pragma: no cover - interpreter teardown
    """Release every cached arena before interpreter teardown.

    At shutdown, GC may finalize a ``SharedMemory`` before the column
    memoryviews pinning its buffer, which makes its ``__del__`` print
    ``BufferError`` noise.  Releasing here — while reference counting
    still runs promptly — drops the views first, so the segment closes
    cleanly.
    """
    for arena in list(_ATTACHED.values()):
        try:
            arena.release()
        except Exception:
            pass
