"""Unit tests for the HOPS checking rules (paper Section 5.2)."""

import pytest

from repro.core.engine import CheckingEngine
from repro.core.events import Event, Op, Trace
from repro.core.intervals import INF
from repro.core.reports import ReportCode
from repro.core.rules import HOPSRules, UnsupportedOperation


def check(*ops):
    trace = Trace(0)
    for op in ops:
        trace.append(op)
    return CheckingEngine(HOPSRules()).check_trace(trace)


def W(addr, size=8):
    return Event(Op.WRITE, addr, size)


def OFENCE():
    return Event(Op.OFENCE)


def DFENCE():
    return Event(Op.DFENCE)


def PERSIST(addr, size=8):
    return Event(Op.CHECK_PERSIST, addr, size)


def ORDER(a, sa, b, sb):
    return Event(Op.CHECK_ORDER, a, sa, b, sb)


class TestDurability:
    def test_dfence_persists_prior_writes(self):
        result = check(W(0), DFENCE(), PERSIST(0))
        assert result.clean

    def test_ofence_does_not_persist(self):
        result = check(W(0), OFENCE(), PERSIST(0))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_write_after_dfence_not_persistent(self):
        result = check(W(0), DFENCE(), W(64), PERSIST(64))
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_dfence_covers_multiple_epochs(self):
        result = check(W(0), OFENCE(), W(64), DFENCE(), PERSIST(0), PERSIST(64))
        assert result.clean


class TestOrdering:
    def test_ofence_orders_writes(self):
        """Figure 3b: write A; ofence; write B -> A ordered before B."""
        result = check(W(0), OFENCE(), W(64), DFENCE(), ORDER(0, 8, 64, 8))
        assert not result.failures

    def test_ordering_needs_no_durability(self):
        # Neither write is durable yet, but they are still ordered.
        result = check(W(0), OFENCE(), W(64), ORDER(0, 8, 64, 8))
        assert not result.failures

    def test_same_epoch_not_ordered(self):
        result = check(W(0), W(64), ORDER(0, 8, 64, 8))
        assert result.count(ReportCode.NOT_ORDERED) == 1

    def test_paper_figure3b_full(self):
        """write A; ofence; write B; dfence; both checkers pass."""
        result = check(
            W(0),
            OFENCE(),
            W(64),
            DFENCE(),
            ORDER(0, 8, 64, 8),
            PERSIST(0),
            PERSIST(64),
        )
        assert result.clean


class TestIntervalDerivation:
    def test_intervals_close_at_first_later_dfence(self):
        rules = HOPSRules()
        shadow = rules.make_shadow()
        rules.apply_op(shadow, W(0, 8))
        rules.apply_op(shadow, DFENCE())
        rules.apply_op(shadow, W(64, 8))
        rules.apply_op(shadow, DFENCE())
        [(_, _, iv0, _)] = rules.persist_intervals(shadow, 0, 8)
        [(_, _, iv1, _)] = rules.persist_intervals(shadow, 64, 72)
        assert (iv0.start, iv0.end) == (0, 1)
        assert (iv1.start, iv1.end) == (1, 2)

    def test_open_interval_without_dfence(self):
        rules = HOPSRules()
        shadow = rules.make_shadow()
        rules.apply_op(shadow, W(0, 8))
        rules.apply_op(shadow, OFENCE())
        [(_, _, iv, _)] = rules.persist_intervals(shadow, 0, 8)
        assert iv.end == INF

    def test_rejects_x86_ops(self):
        rules = HOPSRules()
        shadow = rules.make_shadow()
        with pytest.raises(UnsupportedOperation):
            rules.apply_op(shadow, Event(Op.CLWB, 0, 8))
        with pytest.raises(UnsupportedOperation):
            rules.apply_op(shadow, Event(Op.SFENCE))
