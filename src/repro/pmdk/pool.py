"""The persistent object pool: header, root, undo log, and heap.

Layout of a pool over ``[base, base + size)``::

    +--------------------------+ base
    | header (64 B): magic,    |
    |   generation counter     |
    +--------------------------+ root_base
    | root area (root_size B)  |   application entry points (u64 slots)
    +--------------------------+ log_base
    | undo-log region          |   see repro.pmdk.tx for the entry format
    +--------------------------+ heap_base
    | heap (everything else)   |   allocations via the PM arena
    +--------------------------+ base + size

The root area is how applications find their data after a restart — the
analogue of ``pmemobj_root``.  It is addressed as an array of u64 slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.instr.runtime import PMRuntime
from repro.pmem.arena import Arena

#: "PMPOOL1\0" little-endian.
POOL_MAGIC = 0x00314C4F4F504D50

HEADER_SIZE = 64


@dataclass(frozen=True)
class PoolLayout:
    """Address-space geometry of one pool (needed for offline recovery)."""

    base: int
    size: int
    root_size: int
    log_capacity: int

    @property
    def root_base(self) -> int:
        return self.base + HEADER_SIZE

    @property
    def log_base(self) -> int:
        return self.root_base + self.root_size

    @property
    def heap_base(self) -> int:
        return self.log_base + self.log_capacity

    @property
    def heap_size(self) -> int:
        return self.base + self.size - self.heap_base

    def validate(self) -> None:
        if self.heap_size <= 0:
            raise ValueError(
                "pool too small: header + root + log leave no heap space"
            )


class PMPool:
    """A persistent object pool bound to one runtime."""

    def __init__(
        self,
        runtime: PMRuntime,
        base: int = 0,
        size: int | None = None,
        root_size: int = 256,
        log_capacity: int = 64 * 1024,
        tx_faults: Tuple[str, ...] = (),
        create: bool = True,
    ) -> None:
        if size is None:
            if runtime.machine is None:
                raise ValueError("size is required when no machine is attached")
            size = len(runtime.machine.volatile) - base
        self.runtime = runtime
        self.layout = PoolLayout(base, size, root_size, log_capacity)
        self.layout.validate()
        self.arena = Arena(self.layout.heap_base, self.layout.heap_size)
        # Imported here to break the pool <-> tx module cycle.
        from repro.pmdk.tx import TransactionManager

        self.tx = TransactionManager(self, faults=tx_faults)
        # The undo-log region is library metadata: it is managed (and made
        # crash safe) by the transaction machinery itself, so it is carved
        # out of the application-level testing scope (PMTest_EXCLUDE).
        if runtime.session is not None:
            runtime.session.exclude_always(
                self.layout.log_base, self.layout.log_capacity
            )
        if create:
            self._format()
        else:
            self._check_magic()

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def alloc(self, size: int, zero: bool = True) -> int:
        """Allocate ``size`` bytes of PM; optionally zero-filled.

        Inside a transaction the allocation is registered with the
        transaction machinery first (rollback of a fresh object is simply
        freeing it, so it needs no undo snapshot — but it does need to be
        flushed at commit and released on abort).
        """
        addr = self.arena.alloc(size)
        if self.tx.active:
            self.tx.register_alloc(addr, size)
            if zero:
                self.runtime.store(addr, b"\0" * size)
        elif zero:
            # Outside a transaction the zero-fill is persisted eagerly
            # (pmemobj_zalloc semantics): callers build on durable zeros.
            self.runtime.store(addr, b"\0" * size)
            self.runtime.persist(addr, size)
        return addr

    def free(self, addr: int) -> None:
        self.arena.free(addr)

    # ------------------------------------------------------------------
    # Root access
    # ------------------------------------------------------------------
    def root_slot_addr(self, slot: int) -> int:
        """Address of root slot ``slot`` (a u64)."""
        addr = self.layout.root_base + slot * 8
        if addr + 8 > self.layout.log_base:
            raise IndexError(f"root slot {slot} outside the root area")
        return addr

    def read_root(self, slot: int) -> int:
        return self.runtime.load_u64(self.root_slot_addr(slot))

    def write_root(self, slot: int, value: int, persist: bool = True) -> None:
        """Store a root slot; by default persisted immediately (root
        updates are publication points)."""
        addr = self.root_slot_addr(slot)
        self.runtime.store_u64(addr, value)
        if persist:
            self.runtime.persist(addr, 8)

    def root_range(self, slot: int) -> Tuple[int, int]:
        return self.root_slot_addr(slot), 8

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _format(self) -> None:
        """Initialize a fresh pool: zero root + log, then publish magic."""
        layout = self.layout
        self.runtime.store(
            layout.root_base, b"\0" * (layout.root_size + layout.log_capacity)
        )
        self.runtime.persist(
            layout.root_base, layout.root_size + layout.log_capacity
        )
        self.runtime.store_u64(layout.base, POOL_MAGIC)
        self.runtime.persist(layout.base, 8)

    def _check_magic(self) -> None:
        if self.runtime.load_u64(self.layout.base) != POOL_MAGIC:
            raise ValueError("no pool found at this address (bad magic)")
