"""Shared-memory ring buffers: IPC without the serializer round trip.

``multiprocessing.Queue`` moves every message through a feeder thread,
a pipe write, and a pipe read — three copies and two thread wakeups per
batch.  For the checking pipeline's hot path that is most of the
transport cost, so the ``shm`` transport replaces the queues with a
byte ring in a :class:`multiprocessing.shared_memory.SharedMemory`
segment: producers copy an encoded message in, consumers copy it out,
and nothing else moves.

Protocol (single segment, MPMC via one lock)::

    [header: 32 bytes][data: capacity bytes]
    header = tail u64 | head u64 | closed u8 | pad

``tail`` and ``head`` are *monotonic byte counters* (total bytes ever
written/read); the occupied region is ``tail - head`` and positions
wrap modulo ``capacity``.  Records are length-framed (``u32 len`` +
payload) and may wrap around the end of the data area.  One
``multiprocessing.Lock`` guards the header and the copy — with the
small messages this pipeline ships, copy-under-lock is cheaper than a
reservation protocol, and it keeps readers from observing half-written
records.  Progress is therefore monotonic: every push/pop completes in
bounded time once space/data exists.

Waiting is futex-free busy/park hybrid: a short spin of ``sleep(0)``
yields (cheap when the peer is actively draining, the common case at
high throughput), then exponentially backed-off parking from 50us to
2ms (bounded wakeup latency when the pipeline idles).  ``close()``
wakes every waiter: producers get :class:`RingClosed` immediately,
consumers drain remaining records first.

Rings pickle by segment *name*: sending one to a spawned worker
re-attaches to the same memory.  Workers share the creator's
``resource_tracker`` (fork inherits it, spawn ships its fd), so the
attach-side registration is a set-add no-op and only the creator's
``release()`` unlinks the segment.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import Optional

__all__ = ["DEFAULT_RING_BYTES", "RingClosed", "ShmRing"]

#: 1 MiB per ring: ~2500 fig12-shaped binary traces in flight.
DEFAULT_RING_BYTES = 1 << 20

_HEADER = 32
_OFF_TAIL = 0
_OFF_HEAD = 8
_OFF_CLOSED = 16
_U64 = struct.Struct("<Q")
_LEN = struct.Struct("<I")

#: spin iterations before parking; parking backoff bounds (seconds).
_SPINS = 64
_PARK_MIN = 0.00005
_PARK_MAX = 0.002


class RingClosed(Exception):
    """Push on a closed ring, or pop on a closed *and drained* ring."""


class ShmRing:
    """A byte ring over shared memory; see the module docstring."""

    def __init__(
        self,
        capacity: int = DEFAULT_RING_BYTES,
        *,
        ctx=None,
        name: Optional[str] = None,
        _lock=None,
    ) -> None:
        if name is None:
            if capacity < 16:
                raise ValueError(f"ring capacity too small: {capacity}")
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER + capacity
            )
            self._shm.buf[:_HEADER] = bytes(_HEADER)
            self._creator = True
            if _lock is not None:
                self._lock = _lock
            else:
                if ctx is None:
                    import multiprocessing as ctx
                self._lock = ctx.Lock()
        else:  # re-attach (pickle path: spawned workers)
            # Attaching re-registers the name with the resource tracker,
            # which workers *share* with the creator (fork inherits it,
            # spawn ships its fd), so the set-add is a no-op and the
            # creator's unlink balances it.  Do not unregister here: that
            # would strip the shared entry and break the creator's unlink.
            self._shm = shared_memory.SharedMemory(name=name)
            self._creator = False
            self._lock = _lock
        self._capacity = capacity
        self._name = self._shm.name
        self._released = False

    # --- pickling (ships the segment name, re-attaches on arrival) ----
    def __getstate__(self):
        return {"name": self._name, "capacity": self._capacity,
                "lock": self._lock}

    def __setstate__(self, state):
        self.__init__(state["capacity"], name=state["name"],
                      _lock=state["lock"])

    # --- header accessors (caller holds the lock) ---------------------
    def _get(self, offset: int) -> int:
        return _U64.unpack_from(self._shm.buf, offset)[0]

    def _set(self, offset: int, value: int) -> None:
        _U64.pack_into(self._shm.buf, offset, value)

    @property
    def _closed(self) -> bool:
        return self._shm.buf[_OFF_CLOSED] != 0

    # --- introspection ------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def name(self) -> str:
        return self._name

    def used_bytes(self) -> int:
        """Occupied bytes; racy-but-monotonic without the lock, which is
        fine for the metrics/backpressure reads that call it."""
        return self._get(_OFF_TAIL) - self._get(_OFF_HEAD)

    def free_bytes(self) -> int:
        return self._capacity - self.used_bytes()

    # --- data plane ---------------------------------------------------
    def _copy_in(self, position: int, payload) -> None:
        start = position % self._capacity
        end = start + len(payload)
        buf = self._shm.buf
        if end <= self._capacity:
            buf[_HEADER + start:_HEADER + end] = payload
        else:
            split = self._capacity - start
            buf[_HEADER + start:_HEADER + self._capacity] = payload[:split]
            buf[_HEADER:_HEADER + end - self._capacity] = payload[split:]

    def _copy_out(self, position: int, length: int) -> bytes:
        start = position % self._capacity
        end = start + length
        buf = self._shm.buf
        if end <= self._capacity:
            return bytes(buf[_HEADER + start:_HEADER + end])
        split = self._capacity - start
        return bytes(buf[_HEADER + start:_HEADER + self._capacity]) + bytes(
            buf[_HEADER:_HEADER + end - self._capacity]
        )

    def try_push(self, payload: bytes) -> bool:
        """Push without waiting; False when the ring lacks space."""
        need = _LEN.size + len(payload)
        if need > self._capacity:
            raise ValueError(
                f"record of {len(payload)} bytes cannot fit a "
                f"{self._capacity}-byte ring"
            )
        with self._lock:
            if self._closed:
                raise RingClosed(f"ring {self._name} is closed")
            tail = self._get(_OFF_TAIL)
            if self._capacity - (tail - self._get(_OFF_HEAD)) < need:
                return False
            self._copy_in(tail, _LEN.pack(len(payload)))
            self._copy_in(tail + _LEN.size, payload)
            self._set(_OFF_TAIL, tail + need)
        return True

    def push(self, payload: bytes, timeout: Optional[float] = None) -> None:
        """Copy one record in, hybrid-waiting for space.

        Raises :class:`RingClosed` if the ring closes, ``TimeoutError``
        past ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        park = _PARK_MIN
        while True:
            if self.try_push(payload):
                return
            spins, park = self._wait_step(spins, park, deadline, "push")

    def try_pop(self) -> Optional[bytes]:
        """Pop without waiting; None when the ring is empty."""
        with self._lock:
            head = self._get(_OFF_HEAD)
            used = self._get(_OFF_TAIL) - head
            if used == 0:
                if self._closed:
                    raise RingClosed(f"ring {self._name} is closed")
                return None
            (length,) = _LEN.unpack(self._copy_out(head, _LEN.size))
            payload = self._copy_out(head + _LEN.size, length)
            self._set(_OFF_HEAD, head + _LEN.size + length)
            return payload

    def pop(self, timeout: Optional[float] = None) -> bytes:
        """Copy the oldest record out, hybrid-waiting for data.

        Drains remaining records after :meth:`close`; raises
        :class:`RingClosed` once closed *and* empty, ``TimeoutError``
        past ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        park = _PARK_MIN
        while True:
            payload = self.try_pop()
            if payload is not None:
                return payload
            spins, park = self._wait_step(spins, park, deadline, "pop")

    @staticmethod
    def _wait_step(spins: int, park: float, deadline, what: str):
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(f"shm ring {what} timed out")
        if spins < _SPINS:
            time.sleep(0)  # yield: peer is likely mid-copy
            return spins + 1, park
        time.sleep(park)
        return spins + 1, min(park * 2, _PARK_MAX)

    # --- lifecycle ----------------------------------------------------
    def close(self) -> None:
        """Mark the ring closed, waking every parked producer/consumer.

        Best-effort under contention: if the lock cannot be acquired
        promptly (e.g. a worker was killed mid-copy), the closed flag is
        stored anyway — a single-byte write that every wait loop
        observes on its next iteration.
        """
        acquired = self._lock.acquire(timeout=0.5) if self._lock else False
        try:
            self._shm.buf[_OFF_CLOSED] = 1
        finally:
            if acquired:
                self._lock.release()

    def release(self) -> None:
        """Detach from the segment; the creator also unlinks it."""
        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        if self._creator:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.release()
        except Exception:
            pass
