"""The synchronous daemon client (``repro.client`` / ``repro submit``).

:class:`CheckingClient` mirrors the library's
:class:`~repro.core.workers.WorkerPool` surface — ``submit(trace)``,
``drain() -> TestResult``, ``close()`` — so instrumented programs can
swap in-process checking for the daemon without touching their
submission code.  Under the hood it buffers traces, ships them as PMTB
``traces`` frames, and obeys the server's overload signals:

* a ``sack`` acknowledges the frame — carry on;
* a ``shed`` frame means the daemon dropped the (undecoded) frame;
  the client sleeps the advertised retry-after and resends the
  *identical* bytes, so sheds are invisible to verdicts;
* an ``error`` frame means the session is over —
  :class:`DaemonOverloaded` when the ladder rejected it,
  :class:`DaemonError` otherwise.

A ``deadline`` (seconds, per client) caps the total time spent in
connect retries, shed backoff and blocking reads; when it passes,
:class:`DeadlineExceeded` is raised rather than blocking forever on an
unresponsive or overloaded daemon.
"""

from __future__ import annotations

import socket
import time
from typing import List, Optional, Tuple, Union

from repro.core.metrics import MetricsRegistry
from repro.core.reports import TestResult
from repro.core.events import Trace
from repro.core.traceio import (
    TraceDecodeError,
    decode_message,
    encode_bye_message,
    encode_drain_message,
    encode_flight_request_message,
    encode_hello_message,
    encode_stats_subscribe_message,
    encode_traces_binary,
)
from repro.core.tracing import SpanHandle, Tracer
from repro.daemon.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    read_frame,
    write_frame,
)

__all__ = [
    "CheckingClient",
    "DaemonError",
    "DaemonOverloaded",
    "DeadlineExceeded",
    "parse_address",
]


class DaemonError(Exception):
    """The daemon refused or failed the session."""


class DaemonOverloaded(DaemonError):
    """The admission ladder rejected this session (rung 2)."""


class DeadlineExceeded(DaemonError):
    """The client's deadline passed before the daemon answered."""


Address = Union[str, Tuple[str, int]]


def parse_address(address: Address) -> Tuple[int, Union[str, Tuple[str, int]]]:
    """Normalise an address into ``(socket family, connect target)``.

    Accepted spellings: a ``(host, port)`` tuple, ``tcp://host:port``,
    ``host:port``, ``unix:///path/to.sock``, or a bare filesystem path
    (anything containing ``/``).
    """
    if isinstance(address, tuple):
        host, port = address
        return (socket.AF_INET, (host, int(port)))
    if address.startswith("unix://"):
        return (socket.AF_UNIX, address[len("unix://"):])
    if address.startswith("tcp://"):
        address = address[len("tcp://"):]
    elif "/" in address:
        return (socket.AF_UNIX, address)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"cannot parse daemon address {address!r}; expected "
            "host:port, tcp://host:port, unix:///path or /path"
        )
    return (socket.AF_INET, (host or "127.0.0.1", int(port)))


class CheckingClient:
    """One checking session against a running daemon.

    Parameters mirror operational reality rather than the checker:
    ``batch_size`` is how many traces ride in one frame,
    ``connect_retries``/``backoff_base`` govern initial connection
    (exponential: ``backoff_base * 2**attempt`` seconds between tries),
    and ``deadline`` bounds every blocking step of the whole session.
    """

    def __init__(
        self,
        address: Address,
        tenant: str = "default",
        *,
        deadline: Optional[float] = None,
        batch_size: int = 16,
        connect_retries: int = 5,
        backoff_base: float = 0.05,
        max_frame: int = DEFAULT_MAX_FRAME,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.tenant = tenant
        self.batch_size = batch_size
        self._max_frame = max_frame
        self._deadline = (
            time.monotonic() + deadline if deadline is not None else None
        )
        self._buffer: List[Trace] = []
        self._dispatched = 0
        self._sheds_seen = 0
        self._closed = False
        self._final: Optional[TestResult] = None
        self.session_id: Optional[int] = None
        self._tracer = tracer
        self._metrics = metrics
        #: the server's cumulative session-pool registry, replaced (not
        #: merged) on every verdict so checkpointed drains cannot
        #: double-count
        self._server_registry: Optional[MetricsRegistry] = None
        #: the whole-session client span; its context rides in the
        #: hello frame so the server's session span parents under it
        self._session_span: Optional[SpanHandle] = (
            tracer.start_span("client.session", tenant=tenant)
            if tracer is not None else None
        )
        self._sock = self._connect(address, connect_retries, backoff_base)
        try:
            self._handshake()
        except BaseException:
            self._sock.close()
            raise

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    def _remaining(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def _check_deadline(self, doing: str) -> None:
        remaining = self._remaining()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded(f"deadline passed while {doing}")

    def _sleep(self, seconds: float, doing: str) -> None:
        """Sleep, but never past the deadline."""
        remaining = self._remaining()
        if remaining is not None:
            if remaining <= 0:
                raise DeadlineExceeded(f"deadline passed while {doing}")
            seconds = min(seconds, remaining)
        if seconds > 0:
            time.sleep(seconds)

    def _connect(
        self, address: Address, retries: int, backoff_base: float
    ) -> socket.socket:
        family, target = parse_address(address)
        last_error: Optional[OSError] = None
        for attempt in range(retries + 1):
            if attempt:
                self._sleep(
                    backoff_base * (2 ** (attempt - 1)),
                    f"reconnecting to {target!r}",
                )
            self._check_deadline(f"connecting to {target!r}")
            sock = socket.socket(family, socket.SOCK_STREAM)
            try:
                remaining = self._remaining()
                sock.settimeout(remaining)
                sock.connect(target)
                sock.settimeout(self._remaining())
                return sock
            except OSError as exc:
                last_error = exc
                sock.close()
        raise DaemonError(
            f"could not connect to daemon at {target!r} "
            f"after {retries + 1} attempt(s): {last_error}"
        )

    def _handshake(self) -> None:
        span = (
            self._session_span.context
            if self._session_span is not None else None
        )
        self._send(encode_hello_message(self.tenant, span=span))
        message = self._recv("handshake")
        if message[0] == "error":
            raise self._session_error(message[1])
        if message[0] != "welcome":
            raise DaemonError(
                f"expected welcome from daemon, got {message[0]!r}"
            )
        self.session_id = message[1]
        self._max_frame = min(self._max_frame, message[2])

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _send(self, payload: bytes) -> None:
        if len(payload) > self._max_frame:
            raise DaemonError(
                f"frame of {len(payload)} bytes exceeds the negotiated "
                f"{self._max_frame}-byte ceiling; lower batch_size"
            )
        self._sock.settimeout(self._remaining())
        try:
            write_frame(self._sock, payload)
        except socket.timeout:
            raise DeadlineExceeded("deadline passed while sending") from None
        except OSError as exc:
            raise DaemonError(f"connection to daemon lost: {exc}") from exc

    def _recv(self, doing: str) -> tuple:
        self._check_deadline(doing)
        self._sock.settimeout(self._remaining())
        try:
            frame = read_frame(self._sock, self._max_frame)
        except socket.timeout:
            raise DeadlineExceeded(
                f"deadline passed while {doing}"
            ) from None
        except (ProtocolError, OSError) as exc:
            raise DaemonError(
                f"connection to daemon lost while {doing}: {exc}"
            ) from exc
        if frame is None:
            raise DaemonError(
                f"daemon closed the connection while {doing}"
            )
        try:
            return decode_message(frame)
        except TraceDecodeError as exc:
            raise DaemonError(f"undecodable frame from daemon: {exc}") from exc

    def _session_error(self, message: str) -> DaemonError:
        if "rejected" in message or "draining" in message:
            return DaemonOverloaded(message)
        return DaemonError(message)

    # ------------------------------------------------------------------
    # Checking surface (WorkerPool-compatible)
    # ------------------------------------------------------------------
    @property
    def dispatched(self) -> int:
        """Traces acknowledged by the daemon so far (plus buffered)."""
        return self._dispatched + len(self._buffer)

    @property
    def sheds_seen(self) -> int:
        """Overload sheds this client absorbed (all retried)."""
        return self._sheds_seen

    def submit(self, trace: Trace) -> None:
        """Buffer one trace; ships when ``batch_size`` accumulate."""
        if self._closed:
            raise DaemonError("client is closed")
        self._buffer.append(trace)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Ship buffered traces now, riding out sheds with backoff."""
        if not self._buffer:
            return
        payload = encode_traces_binary(self._buffer)
        count = len(self._buffer)
        metrics = self._metrics
        timed = metrics is not None and metrics.full
        while True:
            started = time.perf_counter_ns() if timed else 0
            self._send(payload)
            if metrics is not None:
                metrics.counter("client.frames_sent").inc(1)
                metrics.counter("client.bytes_sent").inc(len(payload))
            message = self._recv("waiting for frame ack")
            kind = message[0]
            if kind == "sack":
                if timed:
                    # Round trip from send to ack: queueing at the
                    # daemon (rung 0 waits included) plus the wire.
                    metrics.histogram("client.frame_ns").record(
                        time.perf_counter_ns() - started
                    )
                self._dispatched += count
                self._buffer.clear()
                return
            if kind == "shed":
                # The daemon dropped the frame undecoded; resending the
                # identical bytes keeps sheds verdict-neutral.
                self._sheds_seen += 1
                if metrics is not None:
                    metrics.counter("client.sheds").inc(1)
                retry_after_ms, reason = message[1], message[2]
                self._sleep(
                    retry_after_ms / 1000.0,
                    f"backing off after shed ({reason})",
                )
                continue
            if kind == "error":
                raise self._session_error(message[1])
            raise DaemonError(f"unexpected {kind!r} frame during submit")

    def drain(self) -> TestResult:
        """Flush, then ask the daemon for the cumulative verdict."""
        if self._closed:
            if self._final is not None:
                return self._final
            raise DaemonError("client is closed")
        self.flush()
        drain_span: Optional[SpanHandle] = None
        if self._tracer is not None:
            drain_span = self._tracer.start_span(
                "client.drain",
                parent=(
                    self._session_span.context
                    if self._session_span is not None else None
                ),
                dispatched=self._dispatched,
            )
        span = drain_span.context if drain_span is not None else None
        try:
            self._send(encode_drain_message(span=span))
            while True:
                message = self._recv("waiting for verdict")
                kind = message[0]
                if kind == "verdict":
                    result, diagnostics = message[1], message[2]
                    result.diagnostics.extend(diagnostics)
                    if len(message) > 4 and message[4] is not None:
                        # The server ships its cumulative session-pool
                        # registry with every verdict; replace, never
                        # merge, or checkpointed drains double-count.
                        self._server_registry = message[4]
                    if drain_span is not None:
                        drain_span.finish(traces=result.traces_checked)
                        drain_span = None
                    return result
                if kind == "error":
                    raise self._session_error(message[1])
                raise DaemonError(
                    f"unexpected {kind!r} frame during drain"
                )
        finally:
            if drain_span is not None:
                drain_span.finish(error=True)

    def close(self) -> TestResult:
        """Drain, say goodbye, release the socket.  Idempotent."""
        if self._closed:
            if self._final is not None:
                return self._final
            raise DaemonError("client was closed without a final verdict")
        try:
            result = self.drain()
            try:
                self._send(encode_bye_message())
            except DaemonError:
                pass  # verdict already in hand; a lost bye is harmless
            self._final = result
            return result
        finally:
            self._closed = True
            self._sock.close()
            self._finish_session_span()

    def abort(self) -> None:
        """Drop the connection without draining (tests, error paths)."""
        self._closed = True
        self._sock.close()
        self._finish_session_span()

    def _finish_session_span(self) -> None:
        if self._session_span is not None:
            self._session_span.finish(
                dispatched=self._dispatched, sheds=self._sheds_seen
            )

    # ------------------------------------------------------------------
    # Telemetry surface
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Optional[MetricsRegistry]:
        """Client-side counters merged with the server-shipped registry.

        The server attaches its cumulative session-pool registry to
        every verdict (when it records metrics at all); this folds that
        into the client's own registry without mutating either.
        Returns ``None`` when neither side recorded anything.
        """
        if self._metrics is None and self._server_registry is None:
            return None
        merged = MetricsRegistry(
            level=(
                self._metrics.level
                if self._metrics is not None
                else self._server_registry.level
            )
        )
        merged.merge(self._metrics)
        merged.merge(self._server_registry)
        return merged

    def stats_once(self) -> dict:
        """Fetch one live-stats snapshot from the daemon."""
        if self._closed:
            raise DaemonError("client is closed")
        self._send(encode_stats_subscribe_message(0))
        message = self._recv("waiting for stats")
        if message[0] == "stats":
            return message[1]
        if message[0] == "error":
            raise self._session_error(message[1])
        raise DaemonError(f"unexpected {message[0]!r} frame during stats")

    def stats_stream(self, interval_ms: int = 1000):
        """Subscribe to the daemon's stats stream; yields payload dicts.

        The daemon keeps sending snapshots at (at least) its configured
        interval until the connection drops — break out and call
        :meth:`abort` to stop; the session cannot return to checking
        afterwards.
        """
        if self._closed:
            raise DaemonError("client is closed")
        self._send(encode_stats_subscribe_message(max(1, interval_ms)))
        while True:
            message = self._recv("waiting for stats")
            if message[0] == "stats":
                yield message[1]
                continue
            if message[0] == "error":
                raise self._session_error(message[1])
            raise DaemonError(
                f"unexpected {message[0]!r} frame during stats stream"
            )

    def fetch_flight(self) -> list:
        """Fetch the daemon's flight-recorder ring (oldest first)."""
        if self._closed:
            raise DaemonError("client is closed")
        self._send(encode_flight_request_message())
        message = self._recv("waiting for flight events")
        if message[0] == "flight":
            return message[1]
        if message[0] == "error":
            raise self._session_error(message[1])
        raise DaemonError(
            f"unexpected {message[0]!r} frame during flight fetch"
        )

    def __enter__(self) -> "CheckingClient":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()
