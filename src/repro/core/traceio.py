"""Trace serialization: record once, check offline, anywhere.

The paper's PMTest checks traces online, in the same process.  This
module adds the natural deployment mode for a trace-based tool: dump
captured traces to a file (JSON lines — one event per line, one blank
line between traces) and re-check them later, with different rules, or
on another machine.  It also enables corpus-style regression testing:
keep the trace that exposed a bug and assert the checker verdict
forever after.

Format (stable, versioned)::

    {"format": "pmtest-trace", "version": 1}          # header line
    {"trace": 0, "thread": "main"}                    # trace header
    {"op": "WRITE", "addr": 16, "size": 64, ...}      # events
    ...
    {"trace": 1, "thread": "main"}                    # next trace
    ...

Sites are preserved when present.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.column_arena import (
    DESCRIPTOR_TAG as _ARENA_TAG,
    ArenaError,
    ArenaShardRef,
    is_descriptor as _is_arena_descriptor,
    resolve_descriptor as _resolve_arena_descriptor,
)
from repro.core.columns import OPS_BY_VALUE, ColumnarTrace
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.reports import Level, Report, ReportCode, TestResult

FORMAT_NAME = "pmtest-trace"
FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """The file is not a valid PMTest trace dump."""


class TraceDecodeError(Exception):
    """A wire-encoded trace/result tuple is truncated or garbage.

    The process backend ships traces and results between processes as
    flattened tuples; a corrupted message must fail *here*, with a typed
    error naming what was malformed, rather than as an arbitrary
    exception from deep inside the checking engine.
    """


def dump_traces(traces: Iterable[Trace], destination: Union[str, Path, TextIO]) -> int:
    """Write traces to a file or file-like object; returns trace count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_traces(traces, handle)
    destination.write(
        json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION}) + "\n"
    )
    count = 0
    for trace in traces:
        destination.write(
            json.dumps({"trace": trace.trace_id, "thread": trace.thread_name})
            + "\n"
        )
        for event in trace.events:
            destination.write(json.dumps(_event_to_dict(event)) + "\n")
        count += 1
    return count


def load_traces(source: Union[str, Path, TextIO]) -> List[Trace]:
    """Read every trace from a dump produced by :func:`dump_traces`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_traces(handle)
    lines = iter(source)
    header = _parse_line(next(lines, ""))
    if header.get("format") != FORMAT_NAME:
        raise TraceFormatError("missing pmtest-trace header line")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    traces: List[Trace] = []
    current: Optional[Trace] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = _parse_line(line)
        if "trace" in record:
            current = Trace(record["trace"],
                            thread_name=record.get("thread", "main"))
            traces.append(current)
        elif "op" in record:
            if current is None:
                raise TraceFormatError("event before any trace header")
            current.append(_event_from_dict(record))
        else:
            raise TraceFormatError(f"unrecognized record: {record!r}")
    return traces


# ----------------------------------------------------------------------
def _event_to_dict(event: Event) -> dict:
    record = {"op": event.op.name}
    if event.size:
        record["addr"] = event.addr
        record["size"] = event.size
    if event.size2:
        record["addr2"] = event.addr2
        record["size2"] = event.size2
    if event.site is not None:
        record["site"] = [event.site.file, event.site.line,
                          event.site.function]
    return record


def _event_from_dict(record: dict) -> Event:
    try:
        op = Op[record["op"]]
    except KeyError as exc:
        raise TraceFormatError(f"unknown op {record.get('op')!r}") from exc
    site = None
    if "site" in record:
        file, line, function = record["site"]
        site = SourceSite(file, line, function)
    return Event(
        op,
        record.get("addr", 0),
        record.get("size", 0),
        record.get("addr2", 0),
        record.get("size2", 0),
        site,
    )


def _parse_line(line: str) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad JSON line: {line[:60]!r}") from exc
    if not isinstance(record, dict):
        raise TraceFormatError("trace lines must be JSON objects")
    return record


# ----------------------------------------------------------------------
# Compact wire encoding (cross-process IPC)
# ----------------------------------------------------------------------
# The process checking backend ships traces to worker processes and
# results back.  Pickling the dataclass object graph (one ``Event``
# instance per record, each holding an ``Op`` enum and an optional
# ``SourceSite``) costs far more than checking small traces does, so
# the wire format flattens everything to tuples of ints and strings:
#
#     event   = (op_value, addr, size, addr2, size2, site, seq)
#     trace   = (trace_id, thread_name, (event, ...))
#     report  = (level_value, code_value, message, site, rel_site,
#                trace_id, seq)
#     result  = ((report, ...), traces, events, checkers)
#
# where ``site`` is ``(file, line, function)`` or ``None``.  Tuples of
# primitives hit pickle's fast paths and decode without any per-field
# dispatch.  ``decode_*(encode_*(x)) == x`` is property-tested.

_WireSite = Optional[Tuple[str, int, str]]


def _encode_site(site: Optional[SourceSite]) -> _WireSite:
    if site is None:
        return None
    return (site.file, site.line, site.function)


def _decode_site(wire: _WireSite) -> Optional[SourceSite]:
    if wire is None:
        return None
    if (
        not isinstance(wire, (tuple, list))
        or len(wire) != 3
        or not isinstance(wire[0], str)
        or not isinstance(wire[1], int)
        or not isinstance(wire[2], str)
    ):
        raise TraceDecodeError(f"malformed source site: {wire!r}")
    return SourceSite(wire[0], wire[1], wire[2])


def _expect_tuple(wire, arity: int, what: str) -> tuple:
    if not isinstance(wire, (tuple, list)) or len(wire) != arity:
        raise TraceDecodeError(
            f"malformed wire {what}: expected a {arity}-tuple, "
            f"got {wire!r:.80}"
        )
    return tuple(wire)


def encode_event(event: Event) -> tuple:
    """Flatten one :class:`Event` to a picklable tuple."""
    return (
        event.op.value,
        event.addr,
        event.size,
        event.addr2,
        event.size2,
        _encode_site(event.site),
        event.seq,
    )


def decode_event(wire: tuple) -> Event:
    op, addr, size, addr2, size2, site, seq = _expect_tuple(wire, 7, "event")
    try:
        op = Op(op)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown op value {op!r}") from exc
    for name, value in (("addr", addr), ("size", size), ("addr2", addr2),
                        ("size2", size2), ("seq", seq)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceDecodeError(f"event {name} must be an int, got {value!r}")
    return Event(op, addr, size, addr2, size2, _decode_site(site), seq)


def encode_trace(trace: Union[Trace, ColumnarTrace]) -> tuple:
    """Flatten one :class:`Trace` (with event ``seq`` preserved).

    A :class:`~repro.core.columns.ColumnarTrace` flattens to the same
    3-tuple; an epoch *shard* gains a fourth ``check_from`` element so
    the shard boundary survives the wire (plain traces stay 3-tuples —
    existing consumers and golden encodings are unaffected).  An
    :class:`~repro.core.column_arena.ArenaShardRef` flattens to its O(1)
    5-tuple descriptor — segment name plus offsets, never the payload.
    """
    if isinstance(trace, ArenaShardRef):
        return trace.descriptor()
    if isinstance(trace, ColumnarTrace):
        base = (
            trace.trace_id,
            trace.thread_name,
            tuple(trace.event_tuples()),
        )
        if trace.is_shard or trace.check_from:
            return base + (trace.check_from,)
        return base
    return (
        trace.trace_id,
        trace.thread_name,
        tuple(encode_event(event) for event in trace.events),
    )


def decode_trace(wire: tuple) -> Union[Trace, ColumnarTrace]:
    """Decode a tuple-wire trace.

    3-tuples decode to object-form :class:`Trace`; 4-tuples (epoch
    shards) decode to a :class:`~repro.core.columns.ColumnarTrace`
    carrying its ``check_from`` mark, since only the columnar engine
    can replay a shard.  Arena shard descriptors (5-tuples tagged
    ``"PMCA"``) resolve into zero-copy column views over the named
    shared-memory segment; anything unresolvable fails typed.
    """
    if _is_arena_descriptor(wire):
        try:
            return _resolve_arena_descriptor(wire)
        except ArenaError as exc:
            raise TraceDecodeError(
                f"arena shard descriptor failed: {exc}"
            ) from exc
    if isinstance(wire, (tuple, list)) and len(wire) == 4:
        trace_id, thread_name, events, check_from = wire
        if (not isinstance(check_from, int) or isinstance(check_from, bool)
                or check_from < 0):
            raise TraceDecodeError(
                f"shard check_from must be a non-negative int, "
                f"got {check_from!r}"
            )
        trace = decode_trace((trace_id, thread_name, events))
        cols = ColumnarTrace.from_trace(trace)
        cols.check_from = check_from
        cols.is_shard = True
        return cols
    trace_id, thread_name, events = _expect_tuple(wire, 3, "trace")
    if not isinstance(trace_id, int) or isinstance(trace_id, bool):
        raise TraceDecodeError(f"trace id must be an int, got {trace_id!r}")
    if not isinstance(thread_name, str):
        raise TraceDecodeError(
            f"trace thread name must be a str, got {thread_name!r}"
        )
    if not isinstance(events, (tuple, list)):
        raise TraceDecodeError(f"trace events must be a sequence, got {events!r:.80}")
    trace = Trace(trace_id, thread_name=thread_name)
    # Bypass Trace.append: it would renumber seq, which the wire format
    # preserves verbatim.
    trace.events = [decode_event(event) for event in events]
    return trace


def encode_report(report: Report) -> tuple:
    return (
        report.level.value,
        report.code.value,
        report.message,
        _encode_site(report.site),
        _encode_site(report.related_site),
        report.trace_id,
        report.seq,
    )


def decode_report(wire: tuple) -> Report:
    level, code, message, site, related_site, trace_id, seq = _expect_tuple(
        wire, 7, "report"
    )
    try:
        level = Level(level)
        code = ReportCode(code)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown report level/code: {exc}") from exc
    if not isinstance(message, str):
        raise TraceDecodeError(f"report message must be a str, got {message!r}")
    return Report(
        level=level,
        code=code,
        message=message,
        site=_decode_site(site),
        related_site=_decode_site(related_site),
        trace_id=trace_id,
        seq=seq,
    )


def encode_result(result: TestResult) -> tuple:
    """Flatten one :class:`TestResult` to a picklable tuple."""
    return (
        tuple(encode_report(report) for report in result.reports),
        result.traces_checked,
        result.events_checked,
        result.checkers_evaluated,
    )


def decode_result(wire: tuple) -> TestResult:
    reports, traces_checked, events_checked, checkers_evaluated = _expect_tuple(
        wire, 4, "result"
    )
    if not isinstance(reports, (tuple, list)):
        raise TraceDecodeError(
            f"result reports must be a sequence, got {reports!r:.80}"
        )
    for name, value in (
        ("traces_checked", traces_checked),
        ("events_checked", events_checked),
        ("checkers_evaluated", checkers_evaluated),
    ):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceDecodeError(f"result {name} must be an int, got {value!r}")
    return TestResult(
        reports=[decode_report(report) for report in reports],
        traces_checked=traces_checked,
        events_checked=events_checked,
        checkers_evaluated=checkers_evaluated,
    )


def encode_registry(registry: "MetricsRegistry") -> tuple:
    """Flatten a :class:`~repro.core.metrics.MetricsRegistry` delta.

    Worker processes ship their registries back piggybacked on result
    messages; the same flat-tuple discipline as the rest of the wire
    format applies (primitives only, pickle fast path)::

        registry  = (level, counters, gauges, histograms)
        counters  = ((name, value), ...)
        gauges    = ((name, value), ...)
        histogram = (name, count, total, vmin, vmax, ((bucket, n), ...))
    """
    return (
        registry.level.value,
        tuple(sorted((n, c.value) for n, c in registry._counters.items())),
        tuple(sorted((n, g.value) for n, g in registry._gauges.items())),
        tuple(
            (
                name,
                h.count,
                h.total,
                h.vmin,
                h.vmax,
                tuple((i, n) for i, n in enumerate(h.counts) if n),
            )
            for name, h in sorted(registry._histograms.items())
        ),
    )


def decode_registry(wire: tuple) -> "MetricsRegistry":
    from repro.core.metrics import (
        NUM_BUCKETS,
        MetricsLevel,
        MetricsRegistry,
    )

    level, counters, gauges, histograms = _expect_tuple(wire, 4, "registry")
    try:
        level = MetricsLevel(level)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown metrics level {level!r}") from exc
    if level is MetricsLevel.OFF:
        raise TraceDecodeError("an OFF-level registry cannot travel the wire")
    for name, seq in (("counters", counters), ("gauges", gauges),
                      ("histograms", histograms)):
        if not isinstance(seq, (tuple, list)):
            raise TraceDecodeError(
                f"registry {name} must be a sequence, got {seq!r:.80}"
            )
    registry = MetricsRegistry(level)
    for entry in counters:
        name, value = _expect_tuple(entry, 2, "registry counter")
        _check_metric_name(name)
        _check_metric_int("counter value", value)
        registry.counter(name).inc(value)
    for entry in gauges:
        name, value = _expect_tuple(entry, 2, "registry gauge")
        _check_metric_name(name)
        _check_metric_int("gauge value", value)
        registry.gauge(name).observe(value)
    for entry in histograms:
        name, count, total, vmin, vmax, buckets = _expect_tuple(
            entry, 6, "registry histogram"
        )
        _check_metric_name(name)
        _check_metric_int("histogram count", count)
        _check_metric_int("histogram total", total)
        for bound_name, bound in (("min", vmin), ("max", vmax)):
            if bound is not None:
                _check_metric_int(f"histogram {bound_name}", bound)
        if not isinstance(buckets, (tuple, list)):
            raise TraceDecodeError(
                f"histogram buckets must be a sequence, got {buckets!r:.80}"
            )
        h = registry.histogram(name)
        h.count = count
        h.total = total
        h.vmin = vmin
        h.vmax = vmax
        for bucket in buckets:
            index, n = _expect_tuple(bucket, 2, "histogram bucket")
            _check_metric_int("bucket index", index)
            _check_metric_int("bucket count", n)
            if not 0 <= index < NUM_BUCKETS:
                raise TraceDecodeError(f"bucket index {index} out of range")
            h.counts[index] = n
    return registry


def _check_metric_name(name) -> None:
    if not isinstance(name, str) or not name:
        raise TraceDecodeError(f"metric name must be a non-empty str, got {name!r}")


def _check_metric_int(what: str, value) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise TraceDecodeError(f"{what} must be an int, got {value!r}")


def corrupt_wire(wire: tuple) -> tuple:
    """Deterministically mangle a wire-encoded trace (chaos CORRUPT fault).

    Truncates the first event tuple so decoding fails with
    :class:`TraceDecodeError` — the typed, recognizable failure the
    decode-validation layer guarantees for garbage in transit.

    An arena shard descriptor has no event payload to truncate, so it
    is pointed at a segment name that cannot exist: the attach fails
    and decode raises the same typed error.
    """
    if _is_arena_descriptor(wire):
        return (wire[0], "pmca-corrupted", wire[2], wire[3], wire[4])
    trace_id, thread_name, events = wire[0], wire[1], wire[2]
    if events:
        events = (events[0][:3],) + tuple(events[1:])
    else:
        events = (("garbage",),)
    # A shard's trailing check_from rides along untouched.
    return (trace_id, thread_name, events) + tuple(wire[3:])


# ----------------------------------------------------------------------
# Binary wire codec (struct-packed, versioned)
# ----------------------------------------------------------------------
# The tuple wire above still rides pickle, which spends 25-30 bytes per
# event on framing and memo bookkeeping.  The binary codec below packs
# the same information into a self-describing byte string:
#
#     message := magic "PMTB" | version u8 | kind u8
#                | string-table | body
#     string-table := uvarint count | (uvarint len | utf-8 bytes)*
#
# All integers are LEB128 varints (``uvarint``); signed fields use the
# zigzag mapping (``svarint``).  Strings (site files/functions, thread
# names, report messages) are interned once per message in the string
# table and referenced by index, so a batch of traces from one call
# site pays for its strings once.  Event records are flag-packed::
#
#     event := op u8 | flags u8
#              | [addr svarint | size svarint]      (flags & RANGE1)
#              | [addr2 svarint | size2 svarint]    (flags & RANGE2)
#              | [file ref | line svarint | fn ref] (flags & SITE)
#              | [seq svarint]                      (flags & SEQ, i.e.
#                 seq differs from the event's position in the trace)
#
# Versioning: the version byte is bumped on any layout change; decoders
# reject versions they do not understand with TraceDecodeError (never a
# silent misparse).  Message kinds share the framing so the process
# backend's task/ack/result/stop channel and the on-disk trace format
# are the same codec.

BINARY_MAGIC = b"PMTB"
BINARY_VERSION = 1

_KIND_TRACES = 1
_KIND_TASK = 2
_KIND_ACK = 3
_KIND_RESULT = 4
_KIND_STOP = 5
# Daemon session frames (repro.daemon): the checking service speaks the
# same codec over stream sockets, one length-prefixed message per frame.
_KIND_HELLO = 6
_KIND_WELCOME = 7
_KIND_DRAIN = 8
_KIND_VERDICT = 9
_KIND_SHED = 10
_KIND_ERROR = 11
_KIND_BYE = 12
_KIND_SESSION_ACK = 13
# Telemetry plane (streamed stats + flight recorder, repro.daemon).
_KIND_STATS_SUB = 14
_KIND_STATS = 15
_KIND_FLIGHT_REQ = 16
_KIND_FLIGHT = 17

_EV_RANGE1 = 0x01
_EV_RANGE2 = 0x02
_EV_SITE = 0x04
_EV_SEQ = 0x08
_EV_KNOWN = _EV_RANGE1 | _EV_RANGE2 | _EV_SITE | _EV_SEQ

_LEVEL_TAGS = {Level.FAIL: 0, Level.WARN: 1}
_TAG_LEVELS = {tag: level for level, tag in _LEVEL_TAGS.items()}

#: opcode used by the framing-preserving CORRUPT fault; no Op uses it.
_POISON_OP = 0xFF


class _UnknownOpError(TraceDecodeError):
    """Raised by event decode *after* the record's bytes are consumed,
    so a caller can skip the bad trace and keep decoding the batch."""


#: Precompiled message-head codec (magic | version u8 | kind u8): one
#: pack/unpack per message instead of per-byte assembly on every frame.
_HEAD = struct.Struct("<4sBB")


def _uv(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


class _BinWriter:
    """Accumulates a message body plus its per-message string table."""

    __slots__ = ("body", "_strings", "_refs")

    def __init__(self) -> None:
        self.body = bytearray()
        self._strings: List[str] = []
        self._refs: dict = {}

    def u8(self, value: int) -> None:
        self.body.append(value)

    def uvarint(self, value: int) -> None:
        _uv(self.body, value)

    def svarint(self, value: int) -> None:
        _uv(self.body, value * 2 if value >= 0 else -value * 2 - 1)

    def string(self, value: str) -> None:
        ref = self._refs.get(value)
        if ref is None:
            ref = self._refs[value] = len(self._strings)
            self._strings.append(value)
        _uv(self.body, ref)

    def finish(self, kind: int) -> bytes:
        head = bytearray(_HEAD.pack(BINARY_MAGIC, BINARY_VERSION, kind))
        _uv(head, len(self._strings))
        for value in self._strings:
            raw = value.encode("utf-8")
            _uv(head, len(raw))
            head += raw
        return bytes(head + self.body)


class _BinReader:
    """Cursor over one binary message; every misstep raises
    :class:`TraceDecodeError` naming the field being read."""

    __slots__ = ("buf", "pos", "kind", "strings")

    def __init__(self, data) -> None:
        # bytes and mmap objects are consumed in place (indexing yields
        # ints, slices decode); anything else buffer-like is wrapped in
        # a memoryview, so mmap-backed trace files never get copied into
        # a second heap-resident byte string.
        if isinstance(data, (bytes, mmap.mmap)):
            self.buf = data
        else:
            try:
                self.buf = memoryview(data)
            except TypeError:
                raise TraceDecodeError(
                    f"binary message must be bytes, got {type(data).__name__}"
                ) from None
        if len(self.buf) < 6 or bytes(self.buf[:4]) != BINARY_MAGIC:
            raise TraceDecodeError("missing PMTB magic: not a binary message")
        _magic, version, kind = _HEAD.unpack_from(self.buf, 0)
        if version != BINARY_VERSION:
            raise TraceDecodeError(
                f"unsupported binary format version {version}"
            )
        self.kind = kind
        self.pos = 6
        count = self.uvarint("string count")
        if count > len(self.buf):
            raise TraceDecodeError(f"string count {count} exceeds buffer")
        strings: List[str] = []
        for _ in range(count):
            length = self.uvarint("string length")
            raw = self.take(length, "string")
            try:
                strings.append(raw.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise TraceDecodeError(f"invalid utf-8 string: {exc}") from exc
        self.strings = strings

    def remaining(self) -> int:
        return len(self.buf) - self.pos

    def take(self, n: int, what: str) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise TraceDecodeError(f"truncated {what}: wanted {n} bytes")
        raw = self.buf[self.pos:end]
        self.pos = end
        return raw if isinstance(raw, bytes) else bytes(raw)

    def u8(self, what: str) -> int:
        if self.pos >= len(self.buf):
            raise TraceDecodeError(f"truncated {what}")
        value = self.buf[self.pos]
        self.pos += 1
        return value

    def uvarint(self, what: str) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.u8(what)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 128:
                raise TraceDecodeError(f"varint too long for {what}")

    def svarint(self, what: str) -> int:
        raw = self.uvarint(what)
        return raw >> 1 if not raw & 1 else -((raw + 1) >> 1)

    def string(self, what: str) -> str:
        ref = self.uvarint(what)
        if ref >= len(self.strings):
            raise TraceDecodeError(
                f"string ref {ref} out of table range for {what}"
            )
        return self.strings[ref]

    def count(self, what: str) -> int:
        """A list length, sanity-bounded by the bytes left (every
        element costs at least one byte, so anything larger is garbage
        and would otherwise drive a huge allocation)."""
        n = self.uvarint(what)
        if n > self.remaining():
            raise TraceDecodeError(f"{what} {n} exceeds buffer")
        return n


# --- events/traces ----------------------------------------------------
def _write_site(w: _BinWriter, site: SourceSite) -> None:
    w.string(site.file)
    w.svarint(site.line)
    w.string(site.function)


def _write_event_fields(
    w: _BinWriter,
    op_value: int,
    addr: int,
    size: int,
    addr2: int,
    size2: int,
    site: Optional[SourceSite],
    seq: int,
    implied_seq: int,
) -> None:
    flags = 0
    if addr or size:
        flags |= _EV_RANGE1
    if addr2 or size2:
        flags |= _EV_RANGE2
    if site is not None:
        flags |= _EV_SITE
    if seq != implied_seq:
        flags |= _EV_SEQ
    w.u8(op_value)
    w.u8(flags)
    if flags & _EV_RANGE1:
        w.svarint(addr)
        w.svarint(size)
    if flags & _EV_RANGE2:
        w.svarint(addr2)
        w.svarint(size2)
    if flags & _EV_SITE:
        _write_site(w, site)
    if flags & _EV_SEQ:
        w.svarint(seq)


def _write_trace_obj(w: _BinWriter, trace: Trace) -> None:
    w.svarint(trace.trace_id)
    w.string(trace.thread_name)
    w.uvarint(len(trace.events))
    for index, event in enumerate(trace.events):
        _write_event_fields(
            w, event.op.value, event.addr, event.size, event.addr2,
            event.size2, event.site, event.seq, index,
        )


def _write_trace_wire(w: _BinWriter, wire: tuple) -> None:
    """Encode a tuple-wire trace (the process backend keeps traces in
    tuple form for requeue); validates structure but *not* opcode
    membership, so the CORRUPT chaos fault can ship a poison opcode
    that fails typed at decode time."""
    trace_id, thread_name, events = _expect_tuple(wire, 3, "trace")
    if not isinstance(trace_id, int) or isinstance(trace_id, bool):
        raise TraceDecodeError(f"trace id must be an int, got {trace_id!r}")
    if not isinstance(thread_name, str):
        raise TraceDecodeError(
            f"trace thread name must be a str, got {thread_name!r}"
        )
    if not isinstance(events, (tuple, list)):
        raise TraceDecodeError(
            f"trace events must be a sequence, got {events!r:.80}"
        )
    w.svarint(trace_id)
    w.string(thread_name)
    w.uvarint(len(events))
    for index, event in enumerate(events):
        op, addr, size, addr2, size2, site, seq = _expect_tuple(
            event, 7, "event"
        )
        if (not isinstance(op, int) or isinstance(op, bool)
                or not 0 <= op <= 0xFF):
            raise TraceDecodeError(f"event op must fit one byte, got {op!r}")
        for name, value in (("addr", addr), ("size", size),
                            ("addr2", addr2), ("size2", size2),
                            ("seq", seq)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise TraceDecodeError(
                    f"event {name} must be an int, got {value!r}"
                )
        _write_event_fields(
            w, op, addr, size, addr2, size2, _decode_site(site), seq, index
        )


def _read_event(
    r: _BinReader, implied_seq: int, site_cache: Optional[dict] = None
) -> Event:
    op_value = r.u8("event op")
    flags = r.u8("event flags")
    if flags & ~_EV_KNOWN:
        raise TraceDecodeError(f"unknown event flag bits {flags:#04x}")
    addr = size = addr2 = size2 = 0
    if flags & _EV_RANGE1:
        addr = r.svarint("event addr")
        size = r.svarint("event size")
    if flags & _EV_RANGE2:
        addr2 = r.svarint("event addr2")
        size2 = r.svarint("event size2")
    site = None
    if flags & _EV_SITE:
        # Sites are interned per (file ref, line, fn ref) triple: the
        # string-table lookups (and SourceSite construction) run once
        # per distinct call site, not once per event.
        file_ref = r.uvarint("site file")
        line = r.svarint("site line")
        fn_ref = r.uvarint("site function")
        key = (file_ref, line, fn_ref)
        site = site_cache.get(key) if site_cache is not None else None
        if site is None:
            strings = r.strings
            if file_ref >= len(strings):
                raise TraceDecodeError(
                    f"string ref {file_ref} out of table range for site file"
                )
            if fn_ref >= len(strings):
                raise TraceDecodeError(
                    f"string ref {fn_ref} out of table range for "
                    "site function"
                )
            site = SourceSite(strings[file_ref], line, strings[fn_ref])
            if site_cache is not None:
                site_cache[key] = site
    seq = r.svarint("event seq") if flags & _EV_SEQ else implied_seq
    try:
        op = Op(op_value)
    except ValueError:
        # Raised only after the record's bytes are fully consumed: the
        # cursor is at the next record, so batch decoding can isolate
        # the poisoned trace instead of losing the whole message.
        raise _UnknownOpError(f"unknown op value {op_value}") from None
    return Event(op, addr, size, addr2, size2, site, seq)


def _read_trace(r: _BinReader) -> Trace:
    trace_id = r.svarint("trace id")
    thread_name = r.string("trace thread name")
    n = r.count("event count")
    events: List[Event] = []
    bad: Optional[_UnknownOpError] = None
    site_cache: dict = {}
    for index in range(n):
        try:
            events.append(_read_event(r, index, site_cache))
        except _UnknownOpError as exc:
            if bad is None:
                bad = exc
    if bad is not None:
        raise bad
    trace = Trace(trace_id, thread_name=thread_name)
    trace.events = events  # wire discipline: seq preserved verbatim
    return trace


def _read_trace_columnar(
    r: _BinReader, check_from: int = 0, is_shard: bool = False
) -> ColumnarTrace:
    """Decode one trace record straight into struct-of-arrays columns.

    This is the columnar engine's ingest hot path, so it is hand-inlined
    the way :func:`repro.core.canon.canonicalize` is: the varint loops
    run on local ``buf``/``pos`` with no per-field method calls, no
    per-event :class:`Event`/:class:`SourceSite` allocation (sites are
    interned per ``(file, line, function)`` ref triple), and column
    preallocation from the leading event count.  Field layout and error
    semantics mirror :func:`_read_event` — including the deferred
    :class:`_UnknownOpError` that lets a batch skip one poisoned trace.
    """
    buf = r.buf
    pos = r.pos
    limit = len(buf)
    strings = r.strings
    n_strings = len(strings)
    try:
        # trace id: svarint
        raw = 0
        shift = 0
        while True:
            byte = buf[pos]
            pos += 1
            raw |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 128:
                raise TraceDecodeError("varint too long for trace id")
        trace_id = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
        # thread name: string ref
        ref = 0
        shift = 0
        while True:
            byte = buf[pos]
            pos += 1
            ref |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 128:
                raise TraceDecodeError("varint too long for trace thread name")
        if ref >= n_strings:
            raise TraceDecodeError(
                f"string ref {ref} out of table range for trace thread name"
            )
        thread_name = strings[ref]
        # event count
        n = 0
        shift = 0
        while True:
            byte = buf[pos]
            pos += 1
            n |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 128:
                raise TraceDecodeError("varint too long for event count")
        if n > limit - pos:
            raise TraceDecodeError(f"event count {n} exceeds buffer")
        ops = bytearray(n)
        flag_col = bytearray(n)
        addrs = [0] * n
        sizes = [0] * n
        addr2s = [0] * n
        size2s = [0] * n
        site_idx = [-1] * n
        site_table: List[SourceSite] = []
        site_refs: dict = {}
        seqs: Optional[List[int]] = None
        bad_op = -1
        n_ops = len(OPS_BY_VALUE)
        for index in range(n):
            op_value = buf[pos]
            flags = buf[pos + 1]
            pos += 2
            if flags & ~_EV_KNOWN:
                raise TraceDecodeError(f"unknown event flag bits {flags:#04x}")
            ops[index] = op_value
            flag_col[index] = flags
            if flags & _EV_RANGE1:
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for event addr")
                addrs[index] = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for event size")
                sizes[index] = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
            if flags & _EV_RANGE2:
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for event addr2")
                addr2s[index] = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for event size2")
                size2s[index] = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
            if flags & _EV_SITE:
                file_ref = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    file_ref |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for site file")
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for site line")
                line = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
                fn_ref = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    fn_ref |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError(
                            "varint too long for site function"
                        )
                key = (file_ref, line, fn_ref)
                ref = site_refs.get(key)
                if ref is None:
                    if file_ref >= n_strings or fn_ref >= n_strings:
                        raise TraceDecodeError(
                            f"string ref {max(file_ref, fn_ref)} out of "
                            "table range for site"
                        )
                    ref = site_refs[key] = len(site_table)
                    site_table.append(
                        SourceSite(strings[file_ref], line, strings[fn_ref])
                    )
                site_idx[index] = ref
            if flags & _EV_SEQ:
                raw = 0
                shift = 0
                while True:
                    byte = buf[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 128:
                        raise TraceDecodeError("varint too long for event seq")
                seq = raw >> 1 if not raw & 1 else -((raw + 1) >> 1)
                if seqs is None:
                    seqs = list(range(index))
                seqs.append(seq)
            elif seqs is not None:
                seqs.append(index)
            if (op_value >= n_ops or OPS_BY_VALUE[op_value] is None) \
                    and bad_op < 0:
                bad_op = op_value
    except IndexError:
        r.pos = limit
        raise TraceDecodeError("truncated event") from None
    r.pos = pos
    if bad_op >= 0:
        # Deferred like _read_event: the cursor sits at the next record,
        # so the rest of a task batch survives one poisoned trace.
        raise _UnknownOpError(f"unknown op value {bad_op}")
    return ColumnarTrace(
        trace_id,
        thread_name,
        ops,
        flag_col,
        addrs,
        sizes,
        addr2s,
        size2s,
        site_idx,
        site_table,
        seqs,
        check_from,
        is_shard,
    )


# --- reports/results --------------------------------------------------
def _write_report(w: _BinWriter, report: Report) -> None:
    w.u8(_LEVEL_TAGS[report.level])
    w.string(report.code.value)
    w.string(report.message)
    flags = (1 if report.site is not None else 0) | (
        2 if report.related_site is not None else 0
    )
    w.u8(flags)
    if report.site is not None:
        _write_site(w, report.site)
    if report.related_site is not None:
        _write_site(w, report.related_site)
    w.svarint(report.trace_id)
    w.svarint(report.seq)


def _read_site(r: _BinReader) -> SourceSite:
    return SourceSite(
        r.string("site file"), r.svarint("site line"),
        r.string("site function"),
    )


def _read_report(r: _BinReader) -> Report:
    tag = r.u8("report level")
    level = _TAG_LEVELS.get(tag)
    if level is None:
        raise TraceDecodeError(f"unknown report level tag {tag}")
    code_value = r.string("report code")
    try:
        code = ReportCode(code_value)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown report code {code_value!r}") from exc
    message = r.string("report message")
    flags = r.u8("report site flags")
    if flags & ~3:
        raise TraceDecodeError(f"unknown report flag bits {flags:#04x}")
    site = _read_site(r) if flags & 1 else None
    related = _read_site(r) if flags & 2 else None
    return Report(
        level=level, code=code, message=message, site=site,
        related_site=related, trace_id=r.svarint("report trace id"),
        seq=r.svarint("report seq"),
    )


def _write_result(w: _BinWriter, result: TestResult) -> None:
    w.uvarint(len(result.reports))
    for report in result.reports:
        _write_report(w, report)
    w.svarint(result.traces_checked)
    w.svarint(result.events_checked)
    w.svarint(result.checkers_evaluated)


def _read_result(r: _BinReader) -> TestResult:
    n = r.count("report count")
    reports = [_read_report(r) for _ in range(n)]
    return TestResult(
        reports=reports,
        traces_checked=r.svarint("traces checked"),
        events_checked=r.svarint("events checked"),
        checkers_evaluated=r.svarint("checkers evaluated"),
    )


# --- metrics registries -----------------------------------------------
def _write_registry(w: _BinWriter, registry: "MetricsRegistry") -> None:
    from repro.core.metrics import MetricsLevel

    w.u8(2 if registry.level is MetricsLevel.FULL else 1)
    counters = sorted((n, c.value) for n, c in registry._counters.items())
    w.uvarint(len(counters))
    for name, value in counters:
        w.string(name)
        w.svarint(value)
    gauges = sorted((n, g.value) for n, g in registry._gauges.items())
    w.uvarint(len(gauges))
    for name, value in gauges:
        w.string(name)
        w.svarint(value)
    histograms = sorted(registry._histograms.items())
    w.uvarint(len(histograms))
    for name, h in histograms:
        w.string(name)
        w.svarint(h.count)
        w.svarint(h.total)
        flags = (1 if h.vmin is not None else 0) | (
            2 if h.vmax is not None else 0
        )
        w.u8(flags)
        if h.vmin is not None:
            w.svarint(h.vmin)
        if h.vmax is not None:
            w.svarint(h.vmax)
        buckets = [(i, n) for i, n in enumerate(h.counts) if n]
        w.uvarint(len(buckets))
        for index, count in buckets:
            w.uvarint(index)
            w.svarint(count)


def _read_registry(r: _BinReader) -> "MetricsRegistry":
    from repro.core.metrics import (
        NUM_BUCKETS,
        MetricsLevel,
        MetricsRegistry,
    )

    tag = r.u8("registry level")
    level = {1: MetricsLevel.BASIC, 2: MetricsLevel.FULL}.get(tag)
    if level is None:
        raise TraceDecodeError(f"unknown metrics level tag {tag}")
    registry = MetricsRegistry(level)
    for _ in range(r.count("counter count")):
        name = r.string("counter name")
        registry.counter(name).inc(r.svarint("counter value"))
    for _ in range(r.count("gauge count")):
        name = r.string("gauge name")
        registry.gauge(name).observe(r.svarint("gauge value"))
    for _ in range(r.count("histogram count")):
        h = registry.histogram(r.string("histogram name"))
        h.count = r.svarint("histogram count")
        h.total = r.svarint("histogram total")
        flags = r.u8("histogram bound flags")
        if flags & ~3:
            raise TraceDecodeError(
                f"unknown histogram flag bits {flags:#04x}"
            )
        h.vmin = r.svarint("histogram min") if flags & 1 else None
        h.vmax = r.svarint("histogram max") if flags & 2 else None
        for _ in range(r.count("bucket count")):
            index = r.uvarint("bucket index")
            if index >= NUM_BUCKETS:
                raise TraceDecodeError(f"bucket index {index} out of range")
            h.counts[index] = r.svarint("bucket value")
    return registry


# --- public binary API ------------------------------------------------
def encode_traces_binary(traces: Iterable[Trace]) -> bytes:
    """Encode :class:`Trace` objects to one binary ``traces`` message."""
    traces = list(traces)
    w = _BinWriter()
    w.uvarint(len(traces))
    for trace in traces:
        _write_trace_obj(w, trace)
    return w.finish(_KIND_TRACES)


def decode_traces_binary(data) -> List[Trace]:
    r = _BinReader(data)
    if r.kind != _KIND_TRACES:
        raise TraceDecodeError(f"expected a traces message, got kind {r.kind}")
    return [_read_trace(r) for _ in range(r.count("trace count"))]


def decode_traces_binary_columnar(data) -> List[ColumnarTrace]:
    """Decode a binary ``traces`` message straight into columns.

    Same wire format as :func:`decode_traces_binary`, but each trace
    lands as a :class:`ColumnarTrace` with no per-event allocation —
    the columnar engine's bulk ingest entry point.
    """
    r = _BinReader(data)
    if r.kind != _KIND_TRACES:
        raise TraceDecodeError(f"expected a traces message, got kind {r.kind}")
    return [_read_trace_columnar(r) for _ in range(r.count("trace count"))]


def encode_trace_binary(trace: Trace) -> bytes:
    """Encode a single trace (the shared-memory KernelFifo payload)."""
    return encode_traces_binary([trace])


def decode_trace_binary(data) -> Trace:
    traces = decode_traces_binary(data)
    if len(traces) != 1:
        raise TraceDecodeError(
            f"expected exactly one trace, got {len(traces)}"
        )
    return traces[0]


def dump_traces_binary(traces: Iterable[Trace],
                       destination: Union[str, Path]) -> int:
    """Write traces in the compact binary format; returns trace count.

    The binary dump is a single ``traces`` message — the same codec the
    process backend uses on the wire — so it is typically 5-10x smaller
    than the JSON-lines dump for site-free traces.
    """
    traces = list(traces)
    data = encode_traces_binary(traces)
    Path(destination).write_bytes(data)
    return len(traces)


def _file_decode_error(
    exc: TraceDecodeError,
    source: Optional[str],
    offset: int,
) -> TraceFormatError:
    """Wrap a decode failure from an on-disk PMTB file with context.

    The underlying :class:`TraceDecodeError` gains ``source``/``offset``
    attributes (path and byte position of the failing read), and the
    raised :class:`TraceFormatError` carries the same attributes plus a
    message naming both — so daemon logs and CLI errors say *which*
    file broke and *where*, not just that one did.
    """
    exc.source = source
    exc.offset = offset
    if source is not None:
        wrapped = TraceFormatError(
            f"bad binary trace file {source} at byte offset {offset}: {exc}"
        )
    else:
        wrapped = TraceFormatError(f"bad binary trace file: {exc}")
    wrapped.source = source
    wrapped.offset = offset
    return wrapped


def load_traces_binary(source: Union[str, Path]) -> List[Trace]:
    data = Path(source).read_bytes()
    r: Optional[_BinReader] = None
    try:
        r = _BinReader(data)
        if r.kind != _KIND_TRACES:
            raise TraceDecodeError(
                f"expected a traces message, got kind {r.kind}"
            )
        return [_read_trace(r) for _ in range(r.count("trace count"))]
    except TraceDecodeError as exc:
        raise _file_decode_error(
            exc, str(source), r.pos if r is not None else 0
        ) from exc


class LazyBinaryTraces:
    """A PMTB trace file decoded on demand, one trace at a time.

    Holds the raw message bytes and decodes lazily on each iteration,
    so checking a million-event dump never materializes the whole
    ``List[Trace]`` alongside the file bytes (the old 2x peak).  The
    header (magic, version, kind, string table, trace count) is
    validated eagerly in the constructor so a damaged file still fails
    at load time, like the eager loader; per-trace damage surfaces as
    :class:`TraceFormatError` during iteration.

    Re-iterable: every ``__iter__`` starts a fresh decode, so callers
    may make multiple passes (``repro stats`` does).  ``columnar=True``
    yields :class:`ColumnarTrace` columns instead of :class:`Trace`
    objects — the columnar engine's zero-object ingest path.
    """

    __slots__ = ("_data", "_count", "_columnar", "_source")

    def __init__(
        self,
        data: bytes,
        columnar: bool = False,
        source: Optional[Union[str, Path]] = None,
    ) -> None:
        self._source = str(source) if source is not None else None
        r: Optional[_BinReader] = None
        try:
            r = _BinReader(data)
            if r.kind != _KIND_TRACES:
                raise TraceDecodeError(
                    f"expected a traces message, got kind {r.kind}"
                )
            count = r.count("trace count")
        except TraceDecodeError as exc:
            raise _file_decode_error(
                exc, self._source, r.pos if r is not None else 0
            ) from exc
        self._data = data
        self._count = count
        self._columnar = columnar

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        r = _BinReader(self._data)
        read = _read_trace_columnar if self._columnar else _read_trace
        r.count("trace count")
        for _ in range(self._count):
            try:
                yield read(r)
            except TraceDecodeError as exc:
                raise _file_decode_error(exc, self._source, r.pos) from exc

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyBinaryTraces):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LazyBinaryTraces count={self._count} "
            f"bytes={len(self._data)}>"
        )


def load_traces_auto(source: Union[str, Path], columnar: bool = False):
    """Load a trace dump in either format, sniffing the magic bytes.

    JSON-lines dumps decode eagerly to ``List[Trace]``; binary (PMTB)
    dumps return a re-iterable :class:`LazyBinaryTraces` view that
    decodes per trace during iteration, keeping peak memory at one
    decoded trace instead of the whole list.  Binary files are mapped
    read-only (``mmap``) rather than read into a heap byte string, so
    the page cache backs the undecoded bytes and repeated passes touch
    only the pages they decode; the map falls back to ``read_bytes``
    on filesystems that cannot mmap.  ``columnar=True`` makes the lazy
    view yield :class:`ColumnarTrace` columns (binary dumps only; JSON
    dumps always yield :class:`Trace`).
    """
    path = Path(source)
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic == BINARY_MAGIC:
            try:
                data = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError):  # pragma: no cover - odd fs
                data = path.read_bytes()
            return LazyBinaryTraces(data, columnar=columnar, source=path)
    return load_traces(path)


# --- IPC messages (process-backend channels) --------------------------
def encode_task_message(batch: Iterable[Tuple[int, tuple]]) -> bytes:
    """Encode a task batch of ``(seq, tuple-wire trace)`` pairs.

    Each trace carries a leading *shard tag*: ``0`` for a plain trace,
    ``1`` for an arena shard descriptor (segment name + offsets, no
    payload), ``check_from + 2`` for an inline epoch shard (4-tuple
    wire) — one varint byte in the common case, and the tag travels
    outside the trace record so the columnar decoder stays oblivious
    to it.
    """
    batch = list(batch)
    w = _BinWriter()
    w.uvarint(len(batch))
    for seq, wire in batch:
        w.svarint(seq)
        if _is_arena_descriptor(wire):
            _tag, name, trace_id, end, check_from = wire
            if not isinstance(name, str):
                raise TraceDecodeError(
                    f"arena descriptor name must be a str, got {name!r}"
                )
            if not isinstance(trace_id, int) or isinstance(trace_id, bool):
                raise TraceDecodeError(
                    f"arena descriptor trace id must be an int, "
                    f"got {trace_id!r}"
                )
            for what, value in (("end", end), ("check_from", check_from)):
                if (not isinstance(value, int) or isinstance(value, bool)
                        or value < 0):
                    raise TraceDecodeError(
                        f"arena descriptor {what} must be a non-negative "
                        f"int, got {value!r}"
                    )
            w.uvarint(1)
            w.string(name)
            w.svarint(trace_id)
            w.uvarint(end)
            w.uvarint(check_from)
        elif isinstance(wire, (tuple, list)) and len(wire) == 4:
            check_from = wire[3]
            if (not isinstance(check_from, int)
                    or isinstance(check_from, bool) or check_from < 0):
                raise TraceDecodeError(
                    f"shard check_from must be a non-negative int, "
                    f"got {check_from!r}"
                )
            w.uvarint(check_from + 2)
            _write_trace_wire(w, tuple(wire[:3]))
        else:
            w.uvarint(0)
            _write_trace_wire(w, wire)
    return w.finish(_KIND_TASK)


def encode_ack_message(worker: int, seqs: Iterable[int]) -> bytes:
    seqs = list(seqs)
    w = _BinWriter()
    w.uvarint(worker)
    w.uvarint(len(seqs))
    for seq in seqs:
        w.svarint(seq)
    return w.finish(_KIND_ACK)


def encode_result_message(
    worker: int,
    items: Iterable[Tuple[int, Optional[TestResult], Optional[str]]],
    registry: "Optional[MetricsRegistry]" = None,
    spans: Optional[List[dict]] = None,
) -> bytes:
    """Encode a result batch: ``(seq, result-or-None, error-or-None)``
    triples plus optional piggybacked deltas — a metrics registry and/or
    a batch of Chrome span events the worker recorded (both cleared on
    the sending side after the ship, so each delta travels once)."""
    items = list(items)
    w = _BinWriter()
    w.uvarint(worker)
    w.u8((1 if registry is not None else 0) | (2 if spans else 0))
    w.uvarint(len(items))
    for seq, result, error in items:
        w.svarint(seq)
        if error is not None:
            w.u8(1)
            w.string(error)
        else:
            w.u8(0)
            _write_result(w, result)
    if registry is not None:
        _write_registry(w, registry)
    if spans:
        w.string(json.dumps(spans, sort_keys=True, separators=(",", ":")))
    return w.finish(_KIND_RESULT)


def encode_stop_message() -> bytes:
    return _BinWriter().finish(_KIND_STOP)


# --- daemon session messages (repro.daemon) ---------------------------
def _write_span_context(w: _BinWriter, span: "object") -> None:
    """Two uvarints: ``(trace_id, span_id)`` of a tracing SpanContext."""
    trace_id, span_id = span.to_pair()
    w.uvarint(trace_id)
    w.uvarint(span_id)


def _read_span_context(r: _BinReader, what: str) -> "object":
    from repro.core.tracing import SpanContext

    return SpanContext(
        r.uvarint(f"{what} trace id"), r.uvarint(f"{what} span id")
    )


def _read_optional_span(r: _BinReader, what: str) -> "Optional[object]":
    """Decode the optional trailing span context of a session frame.

    Frames encoded before span propagation simply end here — decoders
    consume exact fields, so ``remaining() == 0`` means "old frame, no
    context" and keeps the wire backward compatible without a version
    bump.
    """
    if not r.remaining():
        return None
    flag = r.u8(f"{what} span flag")
    if flag == 0:
        return None
    if flag != 1:
        raise TraceDecodeError(f"bad {what} span flag {flag}")
    return _read_span_context(r, what)


def encode_hello_message(
    tenant: str,
    options: Optional[Dict[str, str]] = None,
    span: "Optional[object]" = None,
) -> bytes:
    """Session opener: tenant identity plus free-form string options.

    ``span`` (a :class:`~repro.core.tracing.SpanContext`) is the
    client-side session span; the server parents its own session span
    under it so the cross-process timeline links up.  Omitted, the
    frame is byte-identical to the pre-telemetry encoding.
    """
    w = _BinWriter()
    w.string(tenant)
    options = dict(options or {})
    w.uvarint(len(options))
    for key in sorted(options):
        w.string(key)
        w.string(options[key])
    if span is not None:
        w.u8(1)
        _write_span_context(w, span)
    return w.finish(_KIND_HELLO)


def encode_welcome_message(session_id: int, max_frame: int) -> bytes:
    """Server's handshake reply: session id and frame size ceiling."""
    w = _BinWriter()
    w.uvarint(session_id)
    w.uvarint(max_frame)
    return w.finish(_KIND_WELCOME)


def encode_drain_message(span: "Optional[object]" = None) -> bytes:
    """Client request: check everything submitted, send the verdict.

    ``span`` is the client's drain span context; the server parents its
    server-side drain span under it."""
    w = _BinWriter()
    if span is not None:
        w.u8(1)
        _write_span_context(w, span)
    return w.finish(_KIND_DRAIN)


def encode_verdict_message(
    result: TestResult,
    diagnostics: Iterable[str] = (),
    span: "Optional[object]" = None,
    registry: "Optional[MetricsRegistry]" = None,
) -> bytes:
    """A drain's answer.  ``TestResult`` wire form excludes diagnostics
    by design, so recovery lines travel alongside, explicitly.

    Optional trailers (flag-gated, absent on pre-telemetry frames):
    the server-side drain span context and the session pool's merged
    metrics snapshot, which the client folds into its own registry so
    ``repro submit --metrics-json`` sees server-side stage timings."""
    w = _BinWriter()
    _write_result(w, result)
    diagnostics = list(diagnostics)
    w.uvarint(len(diagnostics))
    for line in diagnostics:
        w.string(line)
    if span is not None or registry is not None:
        w.u8((1 if span is not None else 0)
             | (2 if registry is not None else 0))
        if span is not None:
            _write_span_context(w, span)
        if registry is not None:
            _write_registry(w, registry)
    return w.finish(_KIND_VERDICT)


def encode_shed_message(retry_after_ms: int, reason: str) -> bytes:
    """Overload rung 1: the frame was dropped; resend after the hint."""
    w = _BinWriter()
    w.uvarint(retry_after_ms)
    w.string(reason)
    return w.finish(_KIND_SHED)


def encode_error_message(message: str) -> bytes:
    """Fatal session error; the server closes after sending it."""
    w = _BinWriter()
    w.string(message)
    return w.finish(_KIND_ERROR)


def encode_bye_message() -> bytes:
    """Orderly session close (either direction)."""
    return _BinWriter().finish(_KIND_BYE)


def encode_session_ack_message(accepted: int) -> bytes:
    """Per-frame flow control: cumulative traces accepted this session."""
    w = _BinWriter()
    w.uvarint(accepted)
    return w.finish(_KIND_SESSION_ACK)


def encode_stats_subscribe_message(interval_ms: int = 0) -> bytes:
    """Client request: stream stats snapshots every ``interval_ms``.

    ``0`` asks for exactly one snapshot (the poll form ``repro stats
    --connect`` and deterministic tests use); any positive interval
    turns the session into a stats stream until the client hangs up.
    """
    w = _BinWriter()
    w.uvarint(interval_ms)
    return w.finish(_KIND_STATS_SUB)


def encode_stats_message(payload: dict) -> bytes:
    """One stats snapshot (server -> client), as canonical JSON.

    Stats are an observability payload, not a checking artifact: the
    schema evolves freely, nothing byte-sensitive consumes it, so JSON
    through the codec's string table beats hand-packing every field.
    """
    w = _BinWriter()
    w.string(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    return w.finish(_KIND_STATS)


def encode_flight_request_message() -> bytes:
    """Client request: dump the daemon's flight recorder."""
    return _BinWriter().finish(_KIND_FLIGHT_REQ)


def encode_flight_message(events: List[dict]) -> bytes:
    """The flight recorder's recent structured events, as JSON."""
    w = _BinWriter()
    w.string(json.dumps(events, sort_keys=True, separators=(",", ":")))
    return w.finish(_KIND_FLIGHT)


def _read_json(r: _BinReader, what: str, expect: type) -> object:
    raw = r.string(what)
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise TraceDecodeError(f"bad {what} JSON: {exc}") from exc
    if not isinstance(payload, expect):
        raise TraceDecodeError(
            f"{what} must decode to {expect.__name__}, "
            f"got {type(payload).__name__}"
        )
    return payload


def decode_message(data, columnar: bool = False) -> tuple:
    """Decode any binary message; the first element names its kind.

    Returns one of::

        ("traces", [Trace, ...])
        ("task", [(seq, Trace | ColumnarTrace | TraceDecodeError), ...])
        ("ack", worker, [seq, ...])
        ("res", worker, [(seq, TestResult|None, error|None), ...],
         registry | None)
        ("stop",)
        ("hello", tenant, {option: value, ...}, span | None)
        ("welcome", session_id, max_frame)
        ("drain", span | None)
        ("verdict", TestResult, [diagnostic, ...], span | None,
         registry | None)
        ("shed", retry_after_ms, reason)
        ("error", message)
        ("bye",)
        ("sack", accepted)
        ("stats_sub", interval_ms)
        ("stats", {payload})
        ("flight_req",)
        ("flight", [event, ...])

    ``columnar=True`` decodes task/traces payloads straight into
    :class:`ColumnarTrace` columns (no per-event objects) — the fast
    ingest path for the columnar engine.  Epoch shards (non-zero shard
    tag in a task batch) always decode columnar, since only the
    columnar engine replays them; arena shard descriptors (tag ``1``)
    skip decode entirely and resolve to zero-copy views over the named
    shared-memory column arena.

    A poisoned trace inside a task batch (unknown opcode — the CORRUPT
    chaos fault) decodes to its per-seq :class:`TraceDecodeError` while
    the rest of the batch survives; framing damage fails the whole
    message with :class:`TraceDecodeError`.
    """
    r = _BinReader(data)
    if r.kind == _KIND_TRACES:
        if columnar:
            return ("traces", [_read_trace_columnar(r)
                               for _ in range(r.count("trace count"))])
        return ("traces", [_read_trace(r) for _ in range(r.count("trace count"))])
    if r.kind == _KIND_TASK:
        pairs: List[Tuple[int, object]] = []
        for _ in range(r.count("task count")):
            seq = r.svarint("task seq")
            tag = r.uvarint("task shard tag")
            if tag == 1:  # arena shard descriptor: resolve, zero decode
                name = r.string("arena name")
                trace_id = r.svarint("arena trace id")
                end = r.uvarint("arena end")
                check_from = r.uvarint("arena check_from")
                try:
                    pairs.append((seq, _resolve_arena_descriptor(
                        (_ARENA_TAG, name, trace_id, end, check_from)
                    )))
                except ArenaError as exc:
                    # Isolated per entry like a poisoned trace: the rest
                    # of the batch survives one unresolvable descriptor.
                    pairs.append((seq, TraceDecodeError(
                        f"arena shard descriptor failed: {exc}"
                    )))
                continue
            try:
                if tag or columnar:
                    pairs.append((seq, _read_trace_columnar(
                        r,
                        check_from=tag - 2 if tag else 0,
                        is_shard=bool(tag),
                    )))
                else:
                    pairs.append((seq, _read_trace(r)))
            except _UnknownOpError as exc:
                # Hand callers the plain base class: _UnknownOpError is
                # an internal cursor-is-still-consistent marker, and
                # worker error strings are built from repr(), which
                # should show the stable TraceDecodeError name.
                pairs.append((seq, TraceDecodeError(str(exc))))
        return ("task", pairs)
    if r.kind == _KIND_ACK:
        worker = r.uvarint("ack worker")
        return ("ack", worker,
                [r.svarint("ack seq") for _ in range(r.count("ack count"))])
    if r.kind == _KIND_RESULT:
        worker = r.uvarint("result worker")
        flags = r.u8("result delta flags")
        if flags > 3:
            raise TraceDecodeError(f"bad result delta flags {flags}")
        items: List[Tuple[int, Optional[TestResult], Optional[str]]] = []
        for _ in range(r.count("result count")):
            seq = r.svarint("result seq")
            tag = r.u8("result tag")
            if tag == 0:
                items.append((seq, _read_result(r), None))
            elif tag == 1:
                items.append((seq, None, r.string("result error")))
            else:
                raise TraceDecodeError(f"unknown result tag {tag}")
        registry = _read_registry(r) if flags & 1 else None
        spans = (
            _read_json(r, "result spans", list) if flags & 2 else None
        )
        return ("res", worker, items, registry, spans)
    if r.kind == _KIND_STOP:
        return ("stop",)
    if r.kind == _KIND_HELLO:
        tenant = r.string("hello tenant")
        options: Dict[str, str] = {}
        for _ in range(r.count("hello option count")):
            key = r.string("hello option key")
            options[key] = r.string("hello option value")
        return ("hello", tenant, options, _read_optional_span(r, "hello"))
    if r.kind == _KIND_WELCOME:
        return (
            "welcome",
            r.uvarint("welcome session id"),
            r.uvarint("welcome max frame"),
        )
    if r.kind == _KIND_DRAIN:
        return ("drain", _read_optional_span(r, "drain"))
    if r.kind == _KIND_VERDICT:
        result = _read_result(r)
        diagnostics = [
            r.string("verdict diagnostic")
            for _ in range(r.count("verdict diagnostic count"))
        ]
        span = None
        registry = None
        if r.remaining():
            flags = r.u8("verdict trailer flags")
            if flags > 3:
                raise TraceDecodeError(f"bad verdict trailer flags {flags}")
            if flags & 1:
                span = _read_span_context(r, "verdict")
            if flags & 2:
                registry = _read_registry(r)
        return ("verdict", result, diagnostics, span, registry)
    if r.kind == _KIND_SHED:
        return (
            "shed",
            r.uvarint("shed retry-after"),
            r.string("shed reason"),
        )
    if r.kind == _KIND_ERROR:
        return ("error", r.string("error message"))
    if r.kind == _KIND_BYE:
        return ("bye",)
    if r.kind == _KIND_SESSION_ACK:
        return ("sack", r.uvarint("session ack count"))
    if r.kind == _KIND_STATS_SUB:
        return ("stats_sub", r.uvarint("stats interval"))
    if r.kind == _KIND_STATS:
        return ("stats", _read_json(r, "stats payload", dict))
    if r.kind == _KIND_FLIGHT_REQ:
        return ("flight_req",)
    if r.kind == _KIND_FLIGHT:
        return ("flight", _read_json(r, "flight events", list))
    raise TraceDecodeError(f"unknown binary message kind {r.kind}")


def corrupt_wire_framed(wire: tuple) -> tuple:
    """CORRUPT chaos fault for binary-codec transports.

    :func:`corrupt_wire` truncates a tuple, which the binary encoder
    would reject at *encode* time — the wrong side.  This variant keeps
    the tuple well-formed but swaps the first event's opcode for a
    value no :class:`Op` member uses, so the trace encodes fine and
    fails with :class:`TraceDecodeError` at decode, exercising the
    corruption-in-transit path end to end.  Arena shard descriptors
    frame fine either way, so they get the same cannot-exist segment
    name as :func:`corrupt_wire` and fail typed at resolve time.
    """
    if _is_arena_descriptor(wire):
        return (wire[0], "pmca-corrupted", wire[2], wire[3], wire[4])
    trace_id, thread_name, events = wire[0], wire[1], wire[2]
    if events:
        first = (_POISON_OP,) + tuple(events[0])[1:]
        events = (first,) + tuple(events[1:])
    else:
        events = ((_POISON_OP, 0, 0, 0, 0, None, 0),)
    return (trace_id, thread_name, events) + tuple(wire[3:])


class TraceRecorder:
    """A trace sink that archives instead of checking.

    Point a :class:`~repro.core.api.PMTestSession` at it (the ``sink``
    parameter) to capture traces for later offline checking::

        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        ... run the program ...
        dump_traces(recorder.traces, "run.pmtrace")

    ``drain``/``close`` return an empty result — recording performs no
    checking by design.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []

    @property
    def dispatched(self) -> int:
        return len(self.traces)

    def submit(self, trace: Trace) -> None:
        self.traces.append(trace)

    def drain(self):
        from repro.core.reports import TestResult

        return TestResult()

    def close(self):
        return self.drain()
