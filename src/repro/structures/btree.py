"""A B-tree with top-down splits: the "B-Tree" microbenchmark.

Modelled on PMDK's ``btree_map`` example (order 4: up to 3 items and 4
children per node).  Insertion splits full nodes on the way down;
deletion refills underful nodes on the way down by borrowing from a
sibling (``rotate_left``/``rotate_right``) or merging.

The two *historical* PMDK bugs of paper Table 6 live in this structure,
reproducible by name:

``split-no-log``
    ``create_split_node`` clears the moved items of the old node
    **without logging them first** — the paper's new correctness bug
    (btree_map.c:201, fixed by Intel in pmem/pmdk@25f5e4f6): after a
    crash the cleared items cannot be restored.
``rotate-dup-log``
    ``rotate_left`` snapshots the destination node even though the
    ``insert_item`` helper it calls already snapshotted it — the paper's
    new performance bug (btree_map.c:367, fixed in pmem/pmdk@b9232407).
``no-log-count``
    The element count is modified without a snapshot (synthetic).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.pmdk.objects import ArrayField, PStruct, U64Field
from repro.pmdk.pool import PMPool
from repro.pmem.memory import PMImage
from repro.structures.base import PersistentMap, ValueBuffer

#: Maximum children per node (PMDK uses 8; 4 keeps splits frequent).
ORDER = 4
MAX_ITEMS = ORDER - 1  # 3
MIN_ITEMS = 1


class BTreeRoot(PStruct):
    root = U64Field()
    count = U64Field()


class BTreeNode(PStruct):
    n = U64Field()
    leaf = U64Field()
    keys = ArrayField(MAX_ITEMS)
    values = ArrayField(MAX_ITEMS)
    children = ArrayField(ORDER)


class BTree(PersistentMap):
    """Transactional order-4 B-tree."""

    NAME = "btree"

    KNOWN_FAULTS = frozenset(
        {"split-no-log", "rotate-dup-log", "no-log-count", "replace-no-log"}
    )

    def __init__(self, pool: PMPool, root_slot: int = 0, value_size: int = 64,
                 faults=()) -> None:
        super().__init__(pool, root_slot, value_size, faults)
        addr = pool.read_root(root_slot)
        if addr:
            self.meta = BTreeRoot(pool, addr)
        else:
            with pool.tx.transaction():
                self.meta = BTreeRoot.alloc(pool)
            pool.write_root(root_slot, self.meta.addr)

    # ------------------------------------------------------------------
    # Node content helpers: read/modify/write with precise logging
    # ------------------------------------------------------------------
    def _read_node(self, node: BTreeNode):
        n = node.n
        keys = [node.keys[i] for i in range(n)]
        values = [node.values[i] for i in range(n)]
        children = [] if node.leaf else [node.children[i] for i in range(n + 1)]
        return keys, values, children

    def _write_node(
        self,
        node: BTreeNode,
        keys: List[int],
        values: List[int],
        children: List[int],
        log: bool = True,
    ) -> None:
        """Rewrite a node's used item area, snapshotting exactly the
        ranges being written (the TX_ADD discipline of btree_map)."""
        tx = self.pool.tx
        n = len(keys)
        if n > MAX_ITEMS or (children and len(children) != n + 1):
            raise AssertionError("btree node invariant violated")
        if log:
            tx.add_field_once(node, "n")
            if n:
                tx.add_once(node.keys.addr(0), n * 8)
                tx.add_once(node.values.addr(0), n * 8)
            if children:
                tx.add_once(node.children.addr(0), len(children) * 8)
        for i, key in enumerate(keys):
            node.keys[i] = key
        for i, value in enumerate(values):
            node.values[i] = value
        for i, child in enumerate(children):
            node.children[i] = child
        node.n = n

    def _alloc_node(self, leaf: bool) -> BTreeNode:
        node = BTreeNode.alloc(self.pool)
        node.leaf = 1 if leaf else 0
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, payload: Optional[bytes] = None) -> None:
        payload = payload if payload is not None else self.default_payload(key)
        tx = self.pool.tx
        with tx.transaction():
            buf = ValueBuffer.create(self.pool, payload)
            if self.meta.root == 0:
                node = self._alloc_node(leaf=True)
                self._write_node(node, [key], [buf.addr], [], log=False)
                tx.add_field(self.meta, "root")
                self.meta.root = node.addr
                self._bump_count(+1)
                return
            root = BTreeNode(self.pool, self.meta.root)
            if root.n == MAX_ITEMS:
                new_root = self._alloc_node(leaf=False)
                new_root.children[0] = root.addr
                new_root.n = 0
                self._split_child(new_root, 0)
                tx.add_field(self.meta, "root")
                self.meta.root = new_root.addr
                root = new_root
            if self._insert_nonfull(root, key, buf.addr):
                self._bump_count(+1)

    def _insert_nonfull(self, node: BTreeNode, key: int, value: int) -> bool:
        """Insert below a non-full node; returns False on in-place update."""
        while True:
            keys, values, children = self._read_node(node)
            if key in keys:
                index = keys.index(key)
                self.pool.tx.add_once(*node.values.range_of(index))
                node.values[index] = value
                return False
            index = _position(keys, key)
            if node.leaf:
                self._insert_item(node, index, key, value)
                return True
            child = BTreeNode(self.pool, children[index])
            if child.n == MAX_ITEMS:
                self._split_child(node, index)
                continue  # re-examine this node: the median moved up
            node = child

    def _insert_item(self, node: BTreeNode, index: int, key: int,
                     value: int) -> None:
        """``btree_map_insert_item``: snapshot the node, then shift in the
        item (paper Figure 13c, left)."""
        keys, values, children = self._read_node(node)
        keys.insert(index, key)
        values.insert(index, value)
        self._write_node(node, keys, values, children)

    def _split_child(self, parent: BTreeNode, index: int) -> None:
        """``create_split_node`` + parent update.

        Moves the upper third of the full child into a fresh node,
        promotes the median into the parent, and clears the moved items
        in the old child.  Under the ``split-no-log`` fault the clearing
        writes are issued without their snapshot — the Table 6
        correctness bug.
        """
        tx = self.pool.tx
        child = BTreeNode(self.pool, parent.children[index])
        keys, values, children = self._read_node(child)
        right = self._alloc_node(leaf=bool(child.leaf))
        right_children = children[2:] if children else []
        self._write_node(right, keys[2:], values[2:], right_children, log=False)
        median_key, median_value = keys[1], values[1]
        # Shrink the old child and clear the moved item slots
        # (node->items[c - 1] = EMPTY_ITEM in the original).
        if not self._fault("split-no-log"):
            tx.add_field_once(child, "n")
            tx.add_once(child.keys.addr(1), 2 * 8)
            tx.add_once(child.values.addr(1), 2 * 8)
        for i in (1, 2):
            child.keys[i] = 0
            child.values[i] = 0
        child.n = 1
        # Insert the median into the parent.
        pkeys, pvalues, pchildren = self._read_node(parent)
        pkeys.insert(index, median_key)
        pvalues.insert(index, median_value)
        pchildren.insert(index + 1, right.addr)
        self._write_node(parent, pkeys, pvalues, pchildren)

    # ------------------------------------------------------------------
    # Lookup / iteration
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[bytes]:
        cursor = self.meta.root
        while cursor:
            node = BTreeNode(self.pool, cursor)
            keys, values, children = self._read_node(node)
            if key in keys:
                value = values[keys.index(key)]
                return ValueBuffer(self.pool, value).read()
            if node.leaf:
                return None
            cursor = children[_position(keys, key)]
        return None

    def items(self) -> Iterator[Tuple[int, bytes]]:
        def walk(addr: int) -> Iterator[Tuple[int, bytes]]:
            node = BTreeNode(self.pool, addr)
            keys, values, children = self._read_node(node)
            if node.leaf:
                for key, value in zip(keys, values):
                    yield key, ValueBuffer(self.pool, value).read()
                return
            for i, (key, value) in enumerate(zip(keys, values)):
                yield from walk(children[i])
                yield key, ValueBuffer(self.pool, value).read()
            yield from walk(children[-1])

        if self.meta.root:
            yield from walk(self.meta.root)

    # ------------------------------------------------------------------
    # Deletion (top-down refill)
    # ------------------------------------------------------------------
    def remove(self, key: int) -> bool:
        if self.meta.root == 0:
            return False
        tx = self.pool.tx
        with tx.transaction():
            removed = self._remove_from(BTreeNode(self.pool, self.meta.root), key)
            root = BTreeNode(self.pool, self.meta.root)
            if root.n == 0 and not root.leaf:
                # The root emptied after a merge: shrink the tree.
                tx.add_field(self.meta, "root")
                self.meta.root = root.children[0]
                self.pool.free(root.addr)
            elif root.n == 0 and root.leaf:
                tx.add_field(self.meta, "root")
                self.meta.root = 0
                self.pool.free(root.addr)
            if removed:
                self._bump_count(-1)
            return removed

    def _remove_from(self, node: BTreeNode, key: int) -> bool:
        keys, values, children = self._read_node(node)
        if key in keys:
            index = keys.index(key)
            if node.leaf:
                del keys[index], values[index]
                self._write_node(node, keys, values, [])
                return True
            left = BTreeNode(self.pool, children[index])
            right = BTreeNode(self.pool, children[index + 1])
            if left.n > MIN_ITEMS:
                pk, pv = self._max_item(left)
                self._replace_item(node, index, pk, pv)
                return self._remove_from(left, pk)
            if right.n > MIN_ITEMS:
                sk, sv = self._min_item(right)
                self._replace_item(node, index, sk, sv)
                return self._remove_from(right, sk)
            merged = self._merge(node, index)
            return self._remove_from(merged, key)
        if node.leaf:
            return False
        index = _position(keys, key)
        child = BTreeNode(self.pool, children[index])
        if child.n <= MIN_ITEMS:
            child = self._fill(node, index)
        return self._remove_from(child, key)

    def _replace_item(self, node: BTreeNode, index: int, key: int,
                      value: int) -> None:
        tx = self.pool.tx
        if not self._fault("replace-no-log"):
            tx.add_once(*node.keys.range_of(index))
            tx.add_once(*node.values.range_of(index))
        node.keys[index] = key
        node.values[index] = value

    def _max_item(self, node: BTreeNode) -> Tuple[int, int]:
        while not node.leaf:
            node = BTreeNode(self.pool, node.children[node.n])
        return node.keys[node.n - 1], node.values[node.n - 1]

    def _min_item(self, node: BTreeNode) -> Tuple[int, int]:
        while not node.leaf:
            node = BTreeNode(self.pool, node.children[0])
        return node.keys[0], node.values[0]

    def _fill(self, parent: BTreeNode, index: int) -> BTreeNode:
        """Ensure child ``index`` has more than MIN_ITEMS items."""
        keys, values, children = self._read_node(parent)
        if index > 0:
            left = BTreeNode(self.pool, children[index - 1])
            if left.n > MIN_ITEMS:
                return self._rotate_right(parent, index)
        if index < len(children) - 1:
            right = BTreeNode(self.pool, children[index + 1])
            if right.n > MIN_ITEMS:
                return self._rotate_left(parent, index)
        merge_at = index if index < len(children) - 1 else index - 1
        return self._merge(parent, merge_at)

    def _rotate_left(self, parent: BTreeNode, index: int) -> BTreeNode:
        """Borrow from the right sibling (paper Figure 13c, right).

        ``insert_item`` already snapshots the destination node; under the
        ``rotate-dup-log`` fault this function snapshots it *again*,
        reproducing the duplicate-log performance bug.
        """
        tx = self.pool.tx
        child = BTreeNode(self.pool, parent.children[index])
        sibling = BTreeNode(self.pool, parent.children[index + 1])
        # The insert_item helper snapshots the destination node itself...
        ckeys, cvalues, cchildren = self._read_node(child)
        ckeys.append(parent.keys[index])
        cvalues.append(parent.values[index])
        if cchildren:
            cchildren.append(sibling.children[0])
        self._write_node(child, ckeys, cvalues, cchildren)
        # ...so this second snapshot is redundant (the historical bug).
        if self._fault("rotate-dup-log"):
            tx.add_field(child, "n")  # TX_ADD(node) again
        self._replace_item(parent, index, sibling.keys[0], sibling.values[0])
        skeys, svalues, schildren = self._read_node(sibling)
        del skeys[0], svalues[0]
        if schildren:
            del schildren[0]
        self._write_node(sibling, skeys, svalues, schildren)
        return child

    def _rotate_right(self, parent: BTreeNode, index: int) -> BTreeNode:
        """Borrow from the left sibling."""
        tx = self.pool.tx
        child = BTreeNode(self.pool, parent.children[index])
        sibling = BTreeNode(self.pool, parent.children[index - 1])
        ckeys, cvalues, cchildren = self._read_node(child)
        ckeys.insert(0, parent.keys[index - 1])
        cvalues.insert(0, parent.values[index - 1])
        if cchildren:
            cchildren.insert(0, sibling.children[sibling.n])
        self._write_node(child, ckeys, cvalues, cchildren)
        self._replace_item(
            parent, index - 1, sibling.keys[sibling.n - 1],
            sibling.values[sibling.n - 1]
        )
        skeys, svalues, schildren = self._read_node(sibling)
        del skeys[-1], svalues[-1]
        if schildren:
            del schildren[-1]
        self._write_node(sibling, skeys, svalues, schildren)
        return child

    def _merge(self, parent: BTreeNode, index: int) -> BTreeNode:
        """Merge child ``index``, the separator, and child ``index+1``."""
        child = BTreeNode(self.pool, parent.children[index])
        sibling = BTreeNode(self.pool, parent.children[index + 1])
        ckeys, cvalues, cchildren = self._read_node(child)
        skeys, svalues, schildren = self._read_node(sibling)
        pkeys, pvalues, pchildren = self._read_node(parent)
        ckeys = ckeys + [pkeys[index]] + skeys
        cvalues = cvalues + [pvalues[index]] + svalues
        cchildren = cchildren + schildren
        self._write_node(child, ckeys, cvalues, cchildren)
        del pkeys[index], pvalues[index], pchildren[index + 1]
        self._write_node(parent, pkeys, pvalues, pchildren)
        self.pool.free(sibling.addr)
        return child

    # ------------------------------------------------------------------
    def _bump_count(self, delta: int) -> None:
        if not self._fault("no-log-count"):
            self.pool.tx.add_field(self.meta, "count")
        self.meta.count = self.meta.count + delta


def _position(keys: List[int], key: int) -> int:
    """Index of the child subtree (or item slot) for ``key``."""
    index = 0
    while index < len(keys) and keys[index] < key:
        index += 1
    return index


def validate_image(image: PMImage, root_addr_value: int) -> bool:
    """Crash-image consistency: sorted keys, child counts, value buffers
    present, and the stored count matching the reachable items."""
    if root_addr_value == 0:
        return True
    root = image.read_u64(root_addr_value)
    count = image.read_u64(root_addr_value + 8)
    if root == 0:
        return count == 0
    total = 0
    stack = [(root, 0, 1 << 64)]
    seen = set()
    while stack:
        addr, lo, hi = stack.pop()
        if addr in seen or addr + BTreeNode.SIZE > len(image):
            return False
        seen.add(addr)
        n = image.read_u64(addr)
        leaf = image.read_u64(addr + 8)
        if n == 0 or n > MAX_ITEMS:
            return False
        keys = [image.read_u64(addr + 16 + i * 8) for i in range(n)]
        values = [image.read_u64(addr + 16 + (MAX_ITEMS + i) * 8) for i in range(n)]
        if keys != sorted(keys) or len(set(keys)) != n:
            return False
        if any(not lo <= k < hi for k in keys):
            return False
        if any(v == 0 for v in values):
            return False
        total += n
        if not leaf:
            base = addr + 16 + 2 * MAX_ITEMS * 8
            children = [image.read_u64(base + i * 8) for i in range(n + 1)]
            if any(c == 0 for c in children):
                return False
            bounds = [lo] + keys + [hi]
            for i, child in enumerate(children):
                stack.append((child, bounds[i], bounds[i + 1]))
    return total == count
