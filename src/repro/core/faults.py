"""Deterministic chaos injection for the checking pipeline.

The decoupled runtime (paper Section 4.3-4.5) is only trustworthy if the
checking *infrastructure* survives its own faults: a crashed worker must
not silently drop traces, a stalled queue must not park ``drain``
forever, and none of that recovery may change a verdict.  This module
provides the fault model those guarantees are tested against.

A :class:`FaultPlan` is a deterministic, seed-derivable schedule of
faults.  Components that can fail consult the plan at **named fault
points** (:class:`FaultPoint`) on their hot paths; the plan answers with
a :class:`FaultRule` when that particular hit should misbehave.  Because
the plan is plain data (picklable, no clocks, no global state), the same
seed reproduces the same fault schedule in every backend, in worker
processes, and across reruns — chaos runs are replayable bug reports.

Fault kinds and where they strike:

======================  ================================================
``CRASH``               a worker dies abruptly (``os._exit`` for process
                        workers, silent thread exit for thread workers)
``HANG``                a worker stops making progress (sleeps until the
                        watchdog or ``close`` intervenes)
``SLOW``                a worker sleeps ``delay`` seconds, then proceeds
``STALL``               the submitting side sleeps before a queue put
``CORRUPT``             the wire encoding of a trace is mangled in
                        transit (exercises typed decode validation)
``FAIL``                the operation raises :class:`FaultError`
                        (e.g. backend spawn failure)
======================  ================================================

Recovery policy (how the pipeline responds) lives with the backends in
:mod:`repro.core.backends`; this module only decides *what goes wrong
when*.  Respawned workers are never re-injected: a plan applies to the
first generation of workers only, so a single ``CRASH`` rule cannot
crash-loop its own recovery.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class FaultError(RuntimeError):
    """An injected infrastructure failure (not a checking verdict)."""


class FaultKind(Enum):
    CRASH = "crash"
    HANG = "hang"
    SLOW = "slow"
    STALL = "stall"
    CORRUPT = "corrupt"
    FAIL = "fail"

    def __str__(self) -> str:
        return self.value


class FaultPoint:
    """Named places where the pipeline consults the fault plan."""

    #: a checking worker about to validate a batch (thread and process)
    WORKER_BATCH = "worker.batch"
    #: backend construction / worker-pool spawn
    SPAWN = "backend.spawn"
    #: the submitting side pushing a batch onto the task queue
    QUEUE_PUT = "queue.put"
    #: a trace being flattened to the wire encoding
    WIRE_ENCODE = "wire.encode"
    #: the kernel-FIFO producer (simulated kernel module) enqueueing
    KFIFO_PUT = "kfifo.put"
    #: the checking daemon accepting a new client connection
    DAEMON_ACCEPT = "daemon.accept"
    #: the daemon decoding one framed message from a session socket
    DAEMON_SESSION_DECODE = "daemon.session_decode"
    #: the daemon's admission ladder deciding whether to shed a frame
    DAEMON_SHED = "daemon.shed"

    ALL = (WORKER_BATCH, SPAWN, QUEUE_PUT, WIRE_ENCODE, KFIFO_PUT,
           DAEMON_ACCEPT, DAEMON_SESSION_DECODE, DAEMON_SHED)


#: Kinds the pipeline is expected to recover from without changing the
#: aggregate verdict.  Seed-derived plans draw only from these, so a
#: chaos CI run still demands a green suite.
RECOVERABLE_KINDS = frozenset({FaultKind.CRASH, FaultKind.SLOW, FaultKind.STALL})

#: How long a HANG sleeps when no explicit delay is given — effectively
#: forever relative to any watchdog.
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultRule:
    """Fire ``kind`` on hits ``[at, at + count)`` of ``point``.

    ``worker`` restricts the rule to one worker index (``None`` matches
    any); hit counters are kept per ``(point, worker)`` pair, so "crash
    worker 0 on its second batch" is expressible and deterministic.
    """

    point: str
    kind: FaultKind
    at: int = 0
    count: int = 1
    delay: float = 0.0
    worker: Optional[int] = None

    def matches(self, point: str, hit: int, worker: Optional[int]) -> bool:
        if point != self.point:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        return self.at <= hit < self.at + self.count


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, consulted at fault points.

    The plan is plain picklable data; each process that holds a copy
    advances its own hit counters, so worker-side points count per
    worker process (deterministic regardless of scheduling).
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: Optional[int] = None
    _hits: Dict[Tuple[str, Optional[int]], int] = field(
        default_factory=dict, repr=False
    )

    def fire(self, point: str, worker: Optional[int] = None) -> Optional[FaultRule]:
        """Record one hit of ``point`` and return the rule to apply, if any."""
        key = (point, worker)
        hit = self._hits.get(key, 0)
        self._hits[key] = hit + 1
        for rule in self.rules:
            if rule.matches(point, hit, worker):
                return rule
        return None

    def sleep_if_told(self, point: str, worker: Optional[int] = None) -> None:
        """Convenience for points that only honour SLOW/STALL delays."""
        rule = self.fire(point, worker)
        if rule is not None and rule.kind in (FaultKind.SLOW, FaultKind.STALL):
            time.sleep(rule.delay)

    def reset(self) -> None:
        """Forget hit counters (a fresh run of the same schedule)."""
        self._hits.clear()


def _seeded_point_rules(point: str, seed: int) -> List[FaultRule]:
    """The canonical seeded rule(s) for one fault point.

    Each point draws from its own ``Random(f"{seed}:{point}")`` stream,
    so the schedule a point gets is independent of which *other* points
    were requested — ``points=["daemon.shed"]`` fires the same shed as
    ``points=FaultPoint.ALL`` with the same seed.
    """
    rng = random.Random(f"{seed}:{point}")
    if point == FaultPoint.WORKER_BATCH:
        return [
            FaultRule(point, FaultKind.CRASH, at=rng.randint(0, 2), worker=0),
            FaultRule(
                point,
                FaultKind.SLOW,
                at=rng.randint(0, 4),
                count=2,
                delay=rng.uniform(0.001, 0.01),
                worker=rng.randint(0, 3),
            ),
        ]
    if point == FaultPoint.SPAWN:
        return [FaultRule(point, FaultKind.FAIL, at=0)]
    if point == FaultPoint.QUEUE_PUT:
        return [
            FaultRule(
                point,
                FaultKind.STALL,
                at=rng.randint(0, 3),
                delay=rng.uniform(0.001, 0.005),
            )
        ]
    if point == FaultPoint.WIRE_ENCODE:
        return [FaultRule(point, FaultKind.CORRUPT, at=rng.randint(0, 3))]
    if point == FaultPoint.KFIFO_PUT:
        return [
            FaultRule(
                point,
                FaultKind.STALL,
                at=rng.randint(0, 3),
                count=2,
                delay=rng.uniform(0.0005, 0.002),
            )
        ]
    if point == FaultPoint.DAEMON_ACCEPT:
        return [
            FaultRule(
                point,
                FaultKind.SLOW,
                at=rng.randint(0, 1),
                delay=rng.uniform(0.001, 0.01),
            )
        ]
    if point == FaultPoint.DAEMON_SESSION_DECODE:
        return [FaultRule(point, FaultKind.CRASH, at=rng.randint(1, 3))]
    if point == FaultPoint.DAEMON_SHED:
        return [FaultRule(point, FaultKind.FAIL, at=rng.randint(0, 2))]
    raise AssertionError(f"no seeded rule for fault point {point!r}")


def plan_from_seed(
    seed: Optional[int], points: Optional[List[str]] = None
) -> Optional[FaultPlan]:
    """Derive a *recoverable-only* chaos plan from a seed.

    This is what ``--chaos-seed`` and ``PMTEST_CHAOS_SEED`` install: one
    early worker crash (recovered by respawn + requeue), a couple of
    slow-worker and queue-stall hiccups, and kernel-FIFO producer
    starvation.  Every fault is in :data:`RECOVERABLE_KINDS`, so a run
    under this plan must produce results bit-identical to a fault-free
    run — which is exactly what the chaos CI job asserts by running the
    ordinary test suite under it.

    ``points`` restricts the plan to an explicit allowlist of fault
    point names drawn from :data:`FaultPoint.ALL` — including the
    daemon points ``daemon.accept`` (slow accept), ``daemon.session_decode``
    (a session killed mid-stream) and ``daemon.shed`` (a forced shed;
    the client's retry machinery recovers).  Point names outside the
    allowlist raise :class:`ValueError` rather than silently never
    firing; rules are generated in :data:`FaultPoint.ALL` order from
    per-point rng streams, so each point's schedule is the same whether
    it is requested alone or with others.  Note that with an explicit
    allowlist, ``backend.spawn`` draws a spawn failure (recovered by
    the fallback chain) and ``wire.encode`` draws an in-transit
    corruption (surfaced as a typed decode error) — faults the default
    plan deliberately omits.
    """
    if points is not None:
        points = list(points)
        unknown = sorted(set(points) - set(FaultPoint.ALL))
        if unknown:
            raise ValueError(
                f"unknown fault point name(s): {', '.join(unknown)}; "
                f"valid points: {', '.join(FaultPoint.ALL)}"
            )
    if seed is None:
        return None
    if points is not None:
        wanted = set(points)
        rules: List[FaultRule] = []
        for point in FaultPoint.ALL:
            if point in wanted:
                rules.extend(_seeded_point_rules(point, seed))
        return FaultPlan(rules=rules, seed=seed)
    rng = random.Random(seed)
    rules = [
        FaultRule(
            FaultPoint.WORKER_BATCH,
            FaultKind.CRASH,
            at=rng.randint(0, 2),
            worker=0,
        ),
        FaultRule(
            FaultPoint.WORKER_BATCH,
            FaultKind.SLOW,
            at=rng.randint(0, 4),
            count=2,
            delay=rng.uniform(0.001, 0.01),
            worker=rng.randint(0, 3),
        ),
        FaultRule(
            FaultPoint.QUEUE_PUT,
            FaultKind.STALL,
            at=rng.randint(0, 3),
            delay=rng.uniform(0.001, 0.005),
        ),
        FaultRule(
            FaultPoint.KFIFO_PUT,
            FaultKind.STALL,
            at=rng.randint(0, 3),
            count=2,
            delay=rng.uniform(0.0005, 0.002),
        ),
    ]
    return FaultPlan(rules=rules, seed=seed)


@dataclass(frozen=True)
class Resilience:
    """Recovery policy for the checking pipeline.

    ``check_timeout``
        Per-drain watchdog: if no trace completes for this many seconds,
        the backend first requeues everything outstanding once, and if
        that brings no progress either, declares itself unhealthy
        (``None`` waits forever, the historical behaviour).
    ``max_retries``
        Worker respawns (process) / thread restarts tolerated per
        backend before it is declared unhealthy.
    ``backoff_base``
        Base of the exponential backoff between respawns
        (``backoff_base * 2**retry`` seconds).
    ``fallback``
        Degrade along the backend chain (process -> thread -> inline)
        when spawn fails or the backend is declared unhealthy mid-run,
        instead of surfacing ``CheckingFailed``.
    """

    check_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    fallback: bool = True

    @property
    def supervised(self) -> bool:
        """Whether any recovery bookkeeping is needed at all."""
        return (
            self.check_timeout is not None
            or self.max_retries > 0
            or self.fallback
        )


#: The default policy: bounded respawns and degradation on, no watchdog
#: (a watchdog default would put a clock on legitimate long checks).
DEFAULT_RESILIENCE = Resilience()
