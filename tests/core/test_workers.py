"""Tests for the master/worker checking runtime (paper Figure 8)."""

import threading

import pytest

from repro.core.events import Event, Op, Trace
from repro.core.reports import ReportCode
from repro.core.workers import WorkerPool


def bad_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, 0, 8))
    trace.append(Event(Op.CHECK_PERSIST, 0, 8))
    return trace


def good_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.WRITE, 0, 8))
    trace.append(Event(Op.CLWB, 0, 8))
    trace.append(Event(Op.SFENCE))
    trace.append(Event(Op.CHECK_PERSIST, 0, 8))
    return trace


class TestSynchronousMode:
    def test_inline_checking(self):
        pool = WorkerPool(num_workers=0)
        pool.submit(bad_trace(0))
        result = pool.close()
        assert result.count(ReportCode.NOT_PERSISTED) == 1
        assert pool.synchronous


class TestWorkerDispatch:
    def test_round_robin(self):
        # Explicit thread backend: round-robin dispatch is its contract
        # (the process backend self-schedules, so counts are load-based).
        with WorkerPool(num_workers=3, backend="thread") as pool:
            for i in range(7):
                pool.submit(good_trace(i))
            pool.drain()
            assert pool.worker_trace_counts() == [3, 2, 2]

    def test_results_merged_across_workers(self):
        with WorkerPool(num_workers=4) as pool:
            for i in range(10):
                pool.submit(bad_trace(i))
            result = pool.drain()
        assert result.traces_checked == 10
        assert result.count(ReportCode.NOT_PERSISTED) == 10

    def test_drain_blocks_until_done(self):
        with WorkerPool(num_workers=2) as pool:
            for i in range(50):
                pool.submit(good_trace(i))
            result = pool.drain()
            assert result.traces_checked == 50

    def test_drain_is_cumulative_snapshot(self):
        with WorkerPool(num_workers=1) as pool:
            pool.submit(bad_trace(0))
            first = pool.drain()
            pool.submit(bad_trace(1))
            second = pool.drain()
        assert first.traces_checked == 1
        assert second.traces_checked == 2

    def test_trace_ids_preserved_in_reports(self):
        with WorkerPool(num_workers=2) as pool:
            pool.submit(bad_trace(7))
            result = pool.drain()
        assert result.reports[0].trace_id == 7

    def test_submit_after_close_rejected(self):
        pool = WorkerPool(num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(good_trace(0))

    def test_concurrent_submitters(self):
        with WorkerPool(num_workers=2) as pool:
            def producer(base):
                for i in range(20):
                    pool.submit(good_trace(base + i))

            threads = [
                threading.Thread(target=producer, args=(k * 100,)) for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            result = pool.drain()
        assert result.traces_checked == 80
        assert not result.failures

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=-1)


def malformed_trace(trace_id: int) -> Trace:
    trace = Trace(trace_id)
    trace.append(Event(Op.TX_END))  # TX_END without TX_BEGIN raises
    return trace


class TestIdempotentClose:
    """Satellite regression: close() is safe to call repeatedly, even
    after a drain that raised CheckingFailed."""

    def test_close_twice_replays_the_result(self):
        pool = WorkerPool(num_workers=2, backend="thread")
        pool.submit(bad_trace(0))
        first = pool.close()
        second = pool.close()
        assert second is first
        assert first.count(ReportCode.NOT_PERSISTED) == 1

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_close_after_failed_drain_replays_the_error(self, backend):
        from repro.core.backends import CheckingFailed

        pool = WorkerPool(num_workers=1, backend=backend)
        pool.submit(malformed_trace(0))
        with pytest.raises(CheckingFailed):
            pool.close()
        # Workers are stopped; a second close must replay the cached
        # error instead of draining dead queues (which would hang).
        with pytest.raises(CheckingFailed):
            pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(bad_trace(1))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_stop_is_idempotent(self, backend):
        pool = WorkerPool(num_workers=1, backend=backend)
        pool.submit(good_trace(0))
        result = pool.close()
        assert result.traces_checked == 1
        # close() already stopped the backend; more stops are no-ops.
        pool._backend.stop()
        pool._backend.stop()
