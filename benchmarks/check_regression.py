#!/usr/bin/env python
"""Perf-regression gate: compare a fresh benchmark JSON to the
committed baselines.

The bench suite dumps derived performance *ratios* (engine speedup,
sharded scaling, zero-copy dispatch speedup, wire-byte ratios) next to
the raw mean runtimes.  Ratios divide out host speed, so a smoke-scale
CI run is comparable against the committed full-scale baselines in
``benchmarks/results/`` — what cannot be divided out is jitter, hence
the tolerance band.

Usage::

    PMTEST_BENCH_JSON=/tmp/fresh.json pytest benchmarks/... (smoke)
    python benchmarks/check_regression.py /tmp/fresh.json

Exits 1 when any tracked ratio regresses more than ``--tolerance``
(default 25%) below its committed value.  Tracked keys missing on
either side are reported and skipped — a partial bench run checks only
what it measured.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Higher-is-better ratios the gate tracks.  Dotted paths descend into
#: nested dicts.
TRACKED_RATIOS = [
    "engine_replay_speedup_columnar_vs_object",
    "engine_best_speedup_columnar_vs_object",
    "shadow_validate_speedup_array_vs_object",
    "shadow_best_speedup_array_vs_object",
    "sharded_checking_scaling_vs_1_worker.process/4-workers",
    "transport_drain_speedup_vs_queue_pickle.shm+binary",
    "wire_bytes_ratio_pickle_over_binary",
    "verdict_cache_speedup",
    "zerocopy_dispatch_speedup_arena_vs_payload",
    "zerocopy_sharded_scaling_vs_1_worker.process/4-workers",
]


def _lookup(payload: dict, dotted: str):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def load_committed(baseline_dir: Path) -> dict:
    """Tracked values from every committed baseline file, merged.

    Each derived ratio is produced by exactly one bench module, so the
    committed files never disagree on a key; if they ever did, the
    newest file wins and the gate still checks a committed number.
    """
    committed: dict = {}
    for path in sorted(baseline_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"warning: unreadable baseline {path}: {exc}")
            continue
        for key in TRACKED_RATIOS:
            value = _lookup(payload, key)
            if value is not None:
                committed[key] = (value, path.name)
    return committed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="benchmark JSON from the fresh (smoke) run")
    parser.add_argument("--baseline-dir", type=Path, default=RESULTS_DIR,
                        help="directory of committed baseline JSONs")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args(argv)

    try:
        fresh = json.loads(args.fresh.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read fresh results {args.fresh}: {exc}")
        return 2
    committed = load_committed(args.baseline_dir)
    if not committed:
        print(f"error: no tracked ratios in {args.baseline_dir}")
        return 2

    failures = []
    checked = 0
    width = max(len(key) for key in TRACKED_RATIOS)
    print(f"{'tracked ratio':{width}s} {'committed':>10s} {'fresh':>10s} "
          f"{'floor':>10s}  verdict")
    for key in TRACKED_RATIOS:
        if key not in committed:
            print(f"{key:{width}s} {'-':>10s} {'-':>10s} {'-':>10s}  "
                  "no committed baseline, skipped")
            continue
        base, origin = committed[key]
        value = _lookup(fresh, key)
        if value is None:
            print(f"{key:{width}s} {base:10.4f} {'-':>10s} {'-':>10s}  "
                  "not measured in this run, skipped")
            continue
        floor = base * (1.0 - args.tolerance)
        checked += 1
        ok = value >= floor
        print(f"{key:{width}s} {base:10.4f} {value:10.4f} {floor:10.4f}  "
              f"{'ok' if ok else f'REGRESSION (baseline {origin})'}")
        if not ok:
            failures.append(key)

    if not checked:
        print("error: fresh run measured none of the tracked ratios")
        return 2
    if failures:
        print(f"\n{len(failures)} tracked ratio(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nall {checked} measured ratio(s) within {args.tolerance:.0%} "
          "of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
