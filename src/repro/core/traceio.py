"""Trace serialization: record once, check offline, anywhere.

The paper's PMTest checks traces online, in the same process.  This
module adds the natural deployment mode for a trace-based tool: dump
captured traces to a file (JSON lines — one event per line, one blank
line between traces) and re-check them later, with different rules, or
on another machine.  It also enables corpus-style regression testing:
keep the trace that exposed a bug and assert the checker verdict
forever after.

Format (stable, versioned)::

    {"format": "pmtest-trace", "version": 1}          # header line
    {"trace": 0, "thread": "main"}                    # trace header
    {"op": "WRITE", "addr": 16, "size": 64, ...}      # events
    ...
    {"trace": 1, "thread": "main"}                    # next trace
    ...

Sites are preserved when present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.reports import Level, Report, ReportCode, TestResult

FORMAT_NAME = "pmtest-trace"
FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """The file is not a valid PMTest trace dump."""


class TraceDecodeError(Exception):
    """A wire-encoded trace/result tuple is truncated or garbage.

    The process backend ships traces and results between processes as
    flattened tuples; a corrupted message must fail *here*, with a typed
    error naming what was malformed, rather than as an arbitrary
    exception from deep inside the checking engine.
    """


def dump_traces(traces: Iterable[Trace], destination: Union[str, Path, TextIO]) -> int:
    """Write traces to a file or file-like object; returns trace count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_traces(traces, handle)
    destination.write(
        json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION}) + "\n"
    )
    count = 0
    for trace in traces:
        destination.write(
            json.dumps({"trace": trace.trace_id, "thread": trace.thread_name})
            + "\n"
        )
        for event in trace.events:
            destination.write(json.dumps(_event_to_dict(event)) + "\n")
        count += 1
    return count


def load_traces(source: Union[str, Path, TextIO]) -> List[Trace]:
    """Read every trace from a dump produced by :func:`dump_traces`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_traces(handle)
    lines = iter(source)
    header = _parse_line(next(lines, ""))
    if header.get("format") != FORMAT_NAME:
        raise TraceFormatError("missing pmtest-trace header line")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    traces: List[Trace] = []
    current: Optional[Trace] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = _parse_line(line)
        if "trace" in record:
            current = Trace(record["trace"],
                            thread_name=record.get("thread", "main"))
            traces.append(current)
        elif "op" in record:
            if current is None:
                raise TraceFormatError("event before any trace header")
            current.append(_event_from_dict(record))
        else:
            raise TraceFormatError(f"unrecognized record: {record!r}")
    return traces


# ----------------------------------------------------------------------
def _event_to_dict(event: Event) -> dict:
    record = {"op": event.op.name}
    if event.size:
        record["addr"] = event.addr
        record["size"] = event.size
    if event.size2:
        record["addr2"] = event.addr2
        record["size2"] = event.size2
    if event.site is not None:
        record["site"] = [event.site.file, event.site.line,
                          event.site.function]
    return record


def _event_from_dict(record: dict) -> Event:
    try:
        op = Op[record["op"]]
    except KeyError as exc:
        raise TraceFormatError(f"unknown op {record.get('op')!r}") from exc
    site = None
    if "site" in record:
        file, line, function = record["site"]
        site = SourceSite(file, line, function)
    return Event(
        op,
        record.get("addr", 0),
        record.get("size", 0),
        record.get("addr2", 0),
        record.get("size2", 0),
        site,
    )


def _parse_line(line: str) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad JSON line: {line[:60]!r}") from exc
    if not isinstance(record, dict):
        raise TraceFormatError("trace lines must be JSON objects")
    return record


# ----------------------------------------------------------------------
# Compact wire encoding (cross-process IPC)
# ----------------------------------------------------------------------
# The process checking backend ships traces to worker processes and
# results back.  Pickling the dataclass object graph (one ``Event``
# instance per record, each holding an ``Op`` enum and an optional
# ``SourceSite``) costs far more than checking small traces does, so
# the wire format flattens everything to tuples of ints and strings:
#
#     event   = (op_value, addr, size, addr2, size2, site, seq)
#     trace   = (trace_id, thread_name, (event, ...))
#     report  = (level_value, code_value, message, site, rel_site,
#                trace_id, seq)
#     result  = ((report, ...), traces, events, checkers)
#
# where ``site`` is ``(file, line, function)`` or ``None``.  Tuples of
# primitives hit pickle's fast paths and decode without any per-field
# dispatch.  ``decode_*(encode_*(x)) == x`` is property-tested.

_WireSite = Optional[Tuple[str, int, str]]


def _encode_site(site: Optional[SourceSite]) -> _WireSite:
    if site is None:
        return None
    return (site.file, site.line, site.function)


def _decode_site(wire: _WireSite) -> Optional[SourceSite]:
    if wire is None:
        return None
    if (
        not isinstance(wire, (tuple, list))
        or len(wire) != 3
        or not isinstance(wire[0], str)
        or not isinstance(wire[1], int)
        or not isinstance(wire[2], str)
    ):
        raise TraceDecodeError(f"malformed source site: {wire!r}")
    return SourceSite(wire[0], wire[1], wire[2])


def _expect_tuple(wire, arity: int, what: str) -> tuple:
    if not isinstance(wire, (tuple, list)) or len(wire) != arity:
        raise TraceDecodeError(
            f"malformed wire {what}: expected a {arity}-tuple, "
            f"got {wire!r:.80}"
        )
    return tuple(wire)


def encode_event(event: Event) -> tuple:
    """Flatten one :class:`Event` to a picklable tuple."""
    return (
        event.op.value,
        event.addr,
        event.size,
        event.addr2,
        event.size2,
        _encode_site(event.site),
        event.seq,
    )


def decode_event(wire: tuple) -> Event:
    op, addr, size, addr2, size2, site, seq = _expect_tuple(wire, 7, "event")
    try:
        op = Op(op)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown op value {op!r}") from exc
    for name, value in (("addr", addr), ("size", size), ("addr2", addr2),
                        ("size2", size2), ("seq", seq)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceDecodeError(f"event {name} must be an int, got {value!r}")
    return Event(op, addr, size, addr2, size2, _decode_site(site), seq)


def encode_trace(trace: Trace) -> tuple:
    """Flatten one :class:`Trace` (with event ``seq`` preserved)."""
    return (
        trace.trace_id,
        trace.thread_name,
        tuple(encode_event(event) for event in trace.events),
    )


def decode_trace(wire: tuple) -> Trace:
    trace_id, thread_name, events = _expect_tuple(wire, 3, "trace")
    if not isinstance(trace_id, int) or isinstance(trace_id, bool):
        raise TraceDecodeError(f"trace id must be an int, got {trace_id!r}")
    if not isinstance(thread_name, str):
        raise TraceDecodeError(
            f"trace thread name must be a str, got {thread_name!r}"
        )
    if not isinstance(events, (tuple, list)):
        raise TraceDecodeError(f"trace events must be a sequence, got {events!r:.80}")
    trace = Trace(trace_id, thread_name=thread_name)
    # Bypass Trace.append: it would renumber seq, which the wire format
    # preserves verbatim.
    trace.events = [decode_event(event) for event in events]
    return trace


def encode_report(report: Report) -> tuple:
    return (
        report.level.value,
        report.code.value,
        report.message,
        _encode_site(report.site),
        _encode_site(report.related_site),
        report.trace_id,
        report.seq,
    )


def decode_report(wire: tuple) -> Report:
    level, code, message, site, related_site, trace_id, seq = _expect_tuple(
        wire, 7, "report"
    )
    try:
        level = Level(level)
        code = ReportCode(code)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown report level/code: {exc}") from exc
    if not isinstance(message, str):
        raise TraceDecodeError(f"report message must be a str, got {message!r}")
    return Report(
        level=level,
        code=code,
        message=message,
        site=_decode_site(site),
        related_site=_decode_site(related_site),
        trace_id=trace_id,
        seq=seq,
    )


def encode_result(result: TestResult) -> tuple:
    """Flatten one :class:`TestResult` to a picklable tuple."""
    return (
        tuple(encode_report(report) for report in result.reports),
        result.traces_checked,
        result.events_checked,
        result.checkers_evaluated,
    )


def decode_result(wire: tuple) -> TestResult:
    reports, traces_checked, events_checked, checkers_evaluated = _expect_tuple(
        wire, 4, "result"
    )
    if not isinstance(reports, (tuple, list)):
        raise TraceDecodeError(
            f"result reports must be a sequence, got {reports!r:.80}"
        )
    for name, value in (
        ("traces_checked", traces_checked),
        ("events_checked", events_checked),
        ("checkers_evaluated", checkers_evaluated),
    ):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceDecodeError(f"result {name} must be an int, got {value!r}")
    return TestResult(
        reports=[decode_report(report) for report in reports],
        traces_checked=traces_checked,
        events_checked=events_checked,
        checkers_evaluated=checkers_evaluated,
    )


def encode_registry(registry: "MetricsRegistry") -> tuple:
    """Flatten a :class:`~repro.core.metrics.MetricsRegistry` delta.

    Worker processes ship their registries back piggybacked on result
    messages; the same flat-tuple discipline as the rest of the wire
    format applies (primitives only, pickle fast path)::

        registry  = (level, counters, gauges, histograms)
        counters  = ((name, value), ...)
        gauges    = ((name, value), ...)
        histogram = (name, count, total, vmin, vmax, ((bucket, n), ...))
    """
    return (
        registry.level.value,
        tuple(sorted((n, c.value) for n, c in registry._counters.items())),
        tuple(sorted((n, g.value) for n, g in registry._gauges.items())),
        tuple(
            (
                name,
                h.count,
                h.total,
                h.vmin,
                h.vmax,
                tuple((i, n) for i, n in enumerate(h.counts) if n),
            )
            for name, h in sorted(registry._histograms.items())
        ),
    )


def decode_registry(wire: tuple) -> "MetricsRegistry":
    from repro.core.metrics import (
        NUM_BUCKETS,
        MetricsLevel,
        MetricsRegistry,
    )

    level, counters, gauges, histograms = _expect_tuple(wire, 4, "registry")
    try:
        level = MetricsLevel(level)
    except ValueError as exc:
        raise TraceDecodeError(f"unknown metrics level {level!r}") from exc
    if level is MetricsLevel.OFF:
        raise TraceDecodeError("an OFF-level registry cannot travel the wire")
    for name, seq in (("counters", counters), ("gauges", gauges),
                      ("histograms", histograms)):
        if not isinstance(seq, (tuple, list)):
            raise TraceDecodeError(
                f"registry {name} must be a sequence, got {seq!r:.80}"
            )
    registry = MetricsRegistry(level)
    for entry in counters:
        name, value = _expect_tuple(entry, 2, "registry counter")
        _check_metric_name(name)
        _check_metric_int("counter value", value)
        registry.counter(name).inc(value)
    for entry in gauges:
        name, value = _expect_tuple(entry, 2, "registry gauge")
        _check_metric_name(name)
        _check_metric_int("gauge value", value)
        registry.gauge(name).observe(value)
    for entry in histograms:
        name, count, total, vmin, vmax, buckets = _expect_tuple(
            entry, 6, "registry histogram"
        )
        _check_metric_name(name)
        _check_metric_int("histogram count", count)
        _check_metric_int("histogram total", total)
        for bound_name, bound in (("min", vmin), ("max", vmax)):
            if bound is not None:
                _check_metric_int(f"histogram {bound_name}", bound)
        if not isinstance(buckets, (tuple, list)):
            raise TraceDecodeError(
                f"histogram buckets must be a sequence, got {buckets!r:.80}"
            )
        h = registry.histogram(name)
        h.count = count
        h.total = total
        h.vmin = vmin
        h.vmax = vmax
        for bucket in buckets:
            index, n = _expect_tuple(bucket, 2, "histogram bucket")
            _check_metric_int("bucket index", index)
            _check_metric_int("bucket count", n)
            if not 0 <= index < NUM_BUCKETS:
                raise TraceDecodeError(f"bucket index {index} out of range")
            h.counts[index] = n
    return registry


def _check_metric_name(name) -> None:
    if not isinstance(name, str) or not name:
        raise TraceDecodeError(f"metric name must be a non-empty str, got {name!r}")


def _check_metric_int(what: str, value) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise TraceDecodeError(f"{what} must be an int, got {value!r}")


def corrupt_wire(wire: tuple) -> tuple:
    """Deterministically mangle a wire-encoded trace (chaos CORRUPT fault).

    Truncates the first event tuple so decoding fails with
    :class:`TraceDecodeError` — the typed, recognizable failure the
    decode-validation layer guarantees for garbage in transit.
    """
    trace_id, thread_name, events = wire
    if events:
        events = (events[0][:3],) + tuple(events[1:])
    else:
        events = (("garbage",),)
    return (trace_id, thread_name, events)


class TraceRecorder:
    """A trace sink that archives instead of checking.

    Point a :class:`~repro.core.api.PMTestSession` at it (the ``sink``
    parameter) to capture traces for later offline checking::

        recorder = TraceRecorder()
        session = PMTestSession(workers=0, sink=recorder)
        ... run the program ...
        dump_traces(recorder.traces, "run.pmtrace")

    ``drain``/``close`` return an empty result — recording performs no
    checking by design.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []

    @property
    def dispatched(self) -> int:
        return len(self.traces)

    def submit(self, trace: Trace) -> None:
        self.traces.append(trace)

    def drain(self):
        from repro.core.reports import TestResult

        return TestResult()

    def close(self):
        return self.drain()
