"""Epoch-sharded replay: split one big trace, merge back bit-identically.

The contract under test (DESIGN.md §10): when ``shard_min_events`` is
set on a columnar pool, a large trace is cut at fence-delimited epoch
boundaries into per-worker shards.  Each shard silently replays its
prefix to reconstruct shadow state and checks only its own range; the
pool folds shard results in shard order before the ordinary
deterministic merge.  The outcome — the wire-encoded
:class:`TestResult` — must be byte-identical to unsharded replay on a
single worker, for any worker count, backend, and under chaos-injected
worker crashes; only the (non-verdict) ``epoch_shards`` metadata key
betrays that sharding happened.
"""

import pytest

from repro.core.columns import ColumnarTrace
from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.faults import FaultKind, FaultPlan, FaultPoint, FaultRule
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.traceio import encode_result
from repro.core.workers import SHARD_ENV_VAR, WorkerPool


def big_trace(trace_id: int = 1, epochs: int = 60) -> Trace:
    """One multi-epoch trace mixing passes, failures and transactions.

    Every fourth epoch omits its fence so the following ``isPersist``
    fails, and every fifth epoch wraps its writes in a logged
    transaction with a checker scope — the shard cutter must keep
    those blocks intact.
    """
    trace = Trace(trace_id)
    seq = 0

    def emit(op, *args, site=None):
        nonlocal seq
        trace.append(Event(op, *args, site=site, seq=seq))
        seq += 1

    for e in range(epochs):
        base = 0x1000 + (e % 16) * 0x40
        site = SourceSite("store.c", e, "commit")
        if e % 5 == 0:
            emit(Op.TX_CHECK_START)
            emit(Op.TX_BEGIN)
            emit(Op.TX_ADD, base, 0x20)
            emit(Op.WRITE, base, 16, site=site)
            emit(Op.WRITE, base + 4, 4)  # dead sub-write
            emit(Op.CLWB, base, 16)
            emit(Op.SFENCE)
            emit(Op.TX_END)
            emit(Op.TX_CHECK_END)
            emit(Op.CHECK_PERSIST, base, 16)
        else:
            emit(Op.WRITE, base, 8, site=site)
            emit(Op.CLWB, base, 8)
            if e % 4 != 0:
                emit(Op.SFENCE)
            emit(Op.CHECK_PERSIST, base, 8)
    return trace


def reference_wire(trace) -> bytes:
    with WorkerPool(num_workers=0, engine="columnar") as pool:
        pool.submit(trace)
        return encode_result(pool.drain())


def object_reference_wire(trace) -> bytes:
    with WorkerPool(num_workers=0, engine="object") as pool:
        pool.submit(trace)
        return encode_result(pool.drain())


def run_sharded(trace, **pool_kwargs) -> tuple:
    pool = WorkerPool(engine="columnar", shard_min_events=1, **pool_kwargs)
    try:
        pool.submit(trace)
        result = pool.drain()
        return encode_result(result), result.metadata
    finally:
        pool._backend.stop()


class TestShardEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_pool_bit_identical(self, workers):
        trace = big_trace()
        wire, metadata = run_sharded(trace, num_workers=workers,
                                     backend="thread")
        assert wire == reference_wire(big_trace())
        if workers >= 2:
            assert metadata["epoch_shards"] == workers

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_shm_pool_bit_identical(self, workers):
        trace = big_trace()
        wire, metadata = run_sharded(
            trace, num_workers=workers, backend="process",
            transport="shm", codec="binary",
        )
        assert wire == reference_wire(big_trace())
        assert metadata["epoch_shards"] == workers

    def test_sharded_equals_object_engine(self):
        """The full chain: epoch-sharded columnar == plain object."""
        wire, _ = run_sharded(big_trace(), num_workers=4, backend="thread")
        assert wire == object_reference_wire(big_trace())

    def test_single_worker_pool_does_not_shard(self):
        trace = big_trace()
        wire, metadata = run_sharded(trace, num_workers=1, backend="thread")
        assert "epoch_shards" not in metadata
        assert wire == reference_wire(big_trace())

    def test_mixed_sizes_only_large_traces_shard(self):
        small = Trace(9)
        small.append(Event(Op.WRITE, 0x40, 8, seq=0))
        small.append(Event(Op.CLWB, 0x40, 8, seq=1))
        small.append(Event(Op.SFENCE, seq=2))
        small.append(Event(Op.CHECK_PERSIST, 0x40, 8, seq=3))
        big = big_trace(2)
        pool = WorkerPool(num_workers=2, backend="thread", engine="columnar",
                          shard_min_events=50)
        try:
            pool.submit(small)
            pool.submit(big)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert result.metadata["epoch_shards"] == 2
        with WorkerPool(num_workers=0, engine="columnar") as ref:
            ref.submit(small)
            ref.submit(big_trace(2))
            assert encode_result(result) == encode_result(ref.drain())


class TestShardMergeMetadata:
    def test_metadata_merge_is_deterministic(self):
        """Repeated sharded runs produce identical metadata (modulo
        nothing: the keyed merge cannot depend on completion order)."""
        runs = [
            run_sharded(big_trace(), num_workers=4, backend="thread")[1]
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_shard_counters(self):
        registry = MetricsRegistry(MetricsLevel.BASIC)
        pool = WorkerPool(num_workers=4, backend="thread", engine="columnar",
                          shard_min_events=1, metrics=registry)
        try:
            pool.submit(big_trace())
            pool.drain()
        finally:
            pool._backend.stop()
        assert registry.counter_value("shard.traces") == 1
        assert registry.counter_value("shard.shards") == 4


class TestShardChaos:
    def test_worker_crash_mid_shard_is_bit_identical(self):
        """A chaos-killed process worker loses its shard; supervision
        requeues and respawns, and the folded result is unchanged."""
        plan = FaultPlan(
            rules=[FaultRule(FaultPoint.WORKER_BATCH, FaultKind.CRASH, at=0)]
        )
        wire, metadata = run_sharded(
            big_trace(), num_workers=2, backend="process",
            batch_size=1, check_timeout=10.0, faults=plan,
        )
        assert wire == reference_wire(big_trace())
        assert metadata["epoch_shards"] == 2

    def test_chaos_seed_env_matches_reference(self, monkeypatch):
        """The CI chaos matrix path: a seeded random fault plan from
        ``PMTEST_CHAOS_SEED`` leaves sharded verdicts bit-identical."""
        monkeypatch.setenv("PMTEST_CHAOS_SEED", "3")
        wire, _ = run_sharded(
            big_trace(), num_workers=2, backend="process",
            batch_size=1, check_timeout=10.0,
        )
        assert wire == reference_wire(big_trace())


class TestShardGuards:
    def test_shard_without_columnar_engine_rejected(self):
        with pytest.raises(ValueError, match="requires engine='columnar'"):
            WorkerPool(num_workers=2, backend="thread", engine="object",
                       shard_min_events=1)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            WorkerPool(num_workers=2, backend="thread", engine="columnar",
                       shard_min_events=0)

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "1")
        trace = big_trace()
        pool = WorkerPool(num_workers=2, backend="thread", engine="columnar")
        try:
            pool.submit(trace)
            result = pool.drain()
        finally:
            pool._backend.stop()
        assert result.metadata["epoch_shards"] == 2
        assert encode_result(result) == reference_wire(big_trace())

    def test_split_respects_epoch_boundaries(self):
        cols = ColumnarTrace.from_trace(big_trace())
        shards = cols.split(4)
        assert len(shards) == 4
        assert shards[0].check_from == 0
        total = 0
        for shard in shards:
            assert shard.is_shard
            checked = len(shard) - shard.check_from
            assert checked > 0
            total += checked
            if shard.check_from:
                # every cut lands just after an epoch-closing fence
                assert shard.ops[shard.check_from - 1] == Op.SFENCE.value
        assert total == len(cols)
