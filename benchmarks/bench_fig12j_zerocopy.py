"""Figure 12j: zero-copy shard dispatch ablation.

The zero-copy shard plane (DESIGN.md §13) changes *how* epoch shards
reach process workers: instead of re-encoding each shard's columns into
the tuple wire and copying the payload through the transport, the
submitter lays the trace out once in a shared-memory column arena and
ships an O(1) descriptor per shard.  This module measures exactly that
delta on the fig12h-shaped workload (a few large multi-epoch traces,
process + shm + binary):

* ``payload`` row — arena building disabled (the pre-arena behaviour:
  every shard re-encoded and copied through the ring);
* ``arena`` row — the default zero-copy dispatch;
* a deterministic wire-byte check: descriptor bytes per shard must not
  grow with trace size (the O(1) claim, asserted via the codec byte
  counters, so it holds on any host);
* the scaling gate: 4-worker sharded process+shm throughput vs the
  1-worker serial drain, compared against the committed fig12h
  baseline ratio (``benchmarks/results/fig12_backends.json``).
"""

import json
import os
from pathlib import Path

import pytest

from _harness import (
    RESULTS,
    ZEROCOPY,
    env_int,
    make_checking_traces,
    pedantic,
    record,
)
from repro.core.column_arena import ArenaOverflow
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.workers import WorkerPool
import repro.core.workers as workers_mod

#: the fig12h sharded shape: few large traces, so sharding dominates
N_TRACES = 8
TX_PER_TRACE = 400
DISPATCH_MODES = ("payload", "arena")

#: committed baseline for the scaling gate
BASELINE_JSON = Path(__file__).parent / "results" / "fig12_backends.json"


def _fail_build(cols):
    raise ArenaOverflow("fig12j payload-dispatch ablation")


def prepare_shard_drain(n_workers: int, dispatch: str = "arena"):
    """Timed body: drain the sharded workload through process+shm.

    ``dispatch='payload'`` disables arena building (shards take the
    overflow fallback: re-encode + copy), isolating the zero-copy
    delta with everything else — engine, transport, codec, shard
    boundaries — held fixed.
    """
    n_traces = env_int("PMTEST_BENCH_TRACES", N_TRACES)
    traces = make_checking_traces(n_traces, tx_per_trace=TX_PER_TRACE)
    pool = WorkerPool(
        num_workers=n_workers,
        backend="process",
        transport="shm",
        codec="binary",
        engine="columnar",
        shard_min_events=1,
    )
    original = workers_mod.build_arena

    def execute() -> None:
        if dispatch == "payload":
            workers_mod.build_arena = _fail_build
        try:
            for trace in traces:
                pool.submit(trace)
            result = pool.drain()
            assert result.traces_checked == len(traces)
        finally:
            workers_mod.build_arena = original
            pool.close()

    return execute


@pytest.mark.parametrize("dispatch", DISPATCH_MODES)
def test_fig12j_dispatch_ablation(benchmark, bench_rounds, dispatch):
    """Payload-shipping vs arena-descriptor shard dispatch, 4 workers."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_shard_drain(4, dispatch=dispatch),
    )
    record("fig12j", (dispatch,), benchmark)


@pytest.mark.parametrize("workers", [1, 4])
def test_fig12j_sharded_scaling(benchmark, bench_rounds, workers):
    """Zero-copy sharded drain at 1 and 4 workers (the scaling gate)."""
    pedantic(
        benchmark,
        bench_rounds,
        lambda: prepare_shard_drain(workers),
    )
    record("fig12j-shard", ("process", workers), benchmark)


def _dispatch_bytes(tx_per_trace: int) -> dict:
    """Shard-dispatch task bytes for one trace of ``tx_per_trace``
    transactions (4 events each), measured from the codec counters of
    a process+shm pool."""
    registry = MetricsRegistry(MetricsLevel.FULL)
    [trace] = make_checking_traces(1, tx_per_trace=tx_per_trace)
    n_events = len(trace.events)
    with WorkerPool(num_workers=2, backend="process", transport="shm",
                    codec="binary", engine="columnar", shard_min_events=1,
                    metrics=registry) as pool:
        pool.submit(trace)
        result = pool.drain()
        assert result.traces_checked == 1
        snap = pool.metrics_snapshot()
    assert snap.counter_value("shard.arenas") == 1
    return {
        "events": n_events,
        "task_bytes": snap.counter_value("codec.task_bytes"),
        "shards": 2,
    }


def test_fig12j_wire_bytes_are_constant(benchmark):
    """The O(1) claim: quadrupling the trace does not grow the shard
    dispatch wire.  Deterministic byte counts — holds on any host."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = _dispatch_bytes(200)
    large = _dispatch_bytes(800)
    assert large["events"] == pytest.approx(4 * small["events"], rel=0.01)
    # A descriptor is a segment name plus three varints; the only
    # size-dependent part is the varint of the event offsets, so allow
    # single bytes of growth — never payload-proportional growth.
    assert large["task_bytes"] <= small["task_bytes"] + 8
    assert small["task_bytes"] < 120
    per_shard = large["task_bytes"] / large["shards"]
    ZEROCOPY.update(
        dispatch_bytes_small_trace=small["task_bytes"],
        dispatch_bytes_large_trace=large["task_bytes"],
        dispatch_bytes_per_shard=per_shard,
        events_large_trace=large["events"],
    )
    # and the whole dispatch is orders of magnitude below the payload:
    # one event encodes to >= 4 bytes, a shard descriptor to ~18
    assert per_shard * large["shards"] < large["events"]


def _committed_scaling_baseline():
    """The committed fig12h process/4-worker scaling ratio, if any."""
    try:
        payload = json.loads(BASELINE_JSON.read_text())
    except (OSError, ValueError):
        return None
    scaling = payload.get("sharded_checking_scaling_vs_1_worker", {})
    return scaling.get("process/4-workers")


def test_fig12j_scaling_gate(benchmark):
    """The perf gate: zero-copy sharded dispatch must improve the
    4-vs-1-worker drain ratio over the committed payload-era baseline,
    and on a real multi-core host parallel must beat serial outright.
    On fewer than 4 cores the parallel-beats-serial half is skipped
    (with the measured ratio) — worker processes time-share one core,
    so only the baseline comparison is meaningful there."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial = RESULTS.get(("fig12j-shard", ("process", 1)))
    parallel = RESULTS.get(("fig12j-shard", ("process", 4)))
    if not serial or not parallel:
        pytest.skip("fig12j scaling benchmarks did not run")
    ratio = serial / parallel
    baseline = _committed_scaling_baseline()
    if baseline is not None:
        assert ratio > baseline, (
            f"zero-copy sharded scaling {ratio:.4f}x regressed below the "
            f"committed payload-dispatch baseline {baseline:.4f}x"
        )
    if (os.cpu_count() or 1) >= 4:
        assert ratio > 1.0, (
            f"4-worker sharded drain must beat serial on a multi-core "
            f"host; measured {ratio:.4f}x"
        )
    else:
        pytest.skip(
            f"only {os.cpu_count()} core(s): zero-copy sharded scaling "
            f"measured {ratio:.4f}x (committed baseline "
            f"{baseline if baseline is not None else 'n/a'}); the "
            ">1x parallel-beats-serial assertion needs a multi-core host"
        )
