"""Checking backends: where submitted traces actually get validated.

The paper's runtime (Section 4.4, Figure 8) decouples the program under
test from the checkers so validation proceeds in parallel with
execution.  How much parallelism that buys depends on *where* the
checking runs, so the pool's execution strategy is a pluggable backend:

``inline``
    Traces are checked synchronously inside ``submit`` on the calling
    thread.  Fully deterministic; what unit tests use (``workers=0``).
``thread``
    The paper's master/worker architecture with Python worker threads:
    round-robin dispatch to per-worker queues.  Checking overlaps
    program I/O and keeps ``submit`` cheap, but the GIL serializes the
    CPU-bound engine, so throughput does not scale with workers.
``process``
    Worker *processes*: traces are flattened to the compact wire
    encoding (:mod:`repro.core.traceio`), shipped in batches over a
    ``multiprocessing`` queue, checked in true parallel, and the
    results merged back.  This is the backend that reproduces the
    paper's Fig. 12 worker-scaling claim on multi-core hosts.

Every backend aggregates results in **submission order**: each trace's
result is tagged with its submit sequence number, and ``drain`` merges
them sorted by that tag.  Scheduling never leaks into the aggregate, so
all three backends produce bit-identical :class:`TestResult`\\ s for the
same trace stream (the cross-backend equivalence test asserts this over
the whole bug corpus).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.engine import CheckingEngine
from repro.core.events import Trace
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.traceio import (
    decode_result,
    decode_trace,
    encode_result,
    encode_trace,
)

#: Names accepted by :func:`make_backend` (and every ``backend=`` knob).
BACKEND_NAMES = ("inline", "thread", "process")

#: Traces per IPC message for the process backend.  Batching amortizes
#: the per-message queue/pickle overhead; the ablation bench sweeps it.
DEFAULT_BATCH_SIZE = 8

#: ``(submit_seq, result)`` — the unit every backend aggregates.
_SeqResult = Tuple[int, TestResult]


class CheckingFailed(RuntimeError):
    """A worker raised while checking a trace.

    Raised from ``drain``/``close`` on the submitting side, carrying the
    original error's description.  (Inline checking raises the original
    exception directly from ``submit``.)
    """


@runtime_checkable
class CheckingBackend(Protocol):
    """What the :class:`~repro.core.workers.WorkerPool` facade drives."""

    #: backend name, one of :data:`BACKEND_NAMES`
    name: str

    @property
    def num_workers(self) -> int: ...

    @property
    def dispatched(self) -> int: ...

    def worker_trace_counts(self) -> List[int]: ...

    def submit(self, trace: Trace) -> None: ...

    def drain(self) -> TestResult: ...

    def close(self) -> TestResult: ...


def make_backend(
    name: Optional[str],
    rules: Optional[PersistencyRules] = None,
    num_workers: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    thread_name: str = "pmtest",
) -> "CheckingBackend":
    """Build a backend by name.

    ``name=None`` keeps the historical behaviour of the ``workers=``
    knob: ``0`` means inline, anything else the thread pool.
    """
    if name is None:
        name = "inline" if num_workers == 0 else "thread"
    if name == "inline":
        return InlineBackend(rules)
    if name == "thread":
        return ThreadBackend(rules, max(num_workers, 1), name=thread_name)
    if name == "process":
        return ProcessBackend(rules, max(num_workers, 1), batch_size=batch_size)
    raise ValueError(
        f"unknown checking backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def _merge_ordered(pairs: List[_SeqResult]) -> TestResult:
    """Aggregate per-trace results in submission order."""
    snapshot = TestResult()
    for _, result in sorted(pairs, key=lambda pair: pair[0]):
        snapshot.merge(result)
    return snapshot


# ----------------------------------------------------------------------
# Inline
# ----------------------------------------------------------------------
class InlineBackend:
    """Synchronous checking on the submitting thread (``workers=0``)."""

    name = "inline"

    def __init__(self, rules: Optional[PersistencyRules] = None) -> None:
        self._engine = CheckingEngine(rules)
        self._lock = threading.Lock()
        self._results: List[_SeqResult] = []
        self._dispatched = 0

    @property
    def num_workers(self) -> int:
        return 0

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        return []

    def submit(self, trace: Trace) -> None:
        with self._lock:
            seq = self._dispatched
            self._dispatched += 1
            self._results.append((seq, self._engine.check_trace(trace)))

    def drain(self) -> TestResult:
        with self._lock:
            return _merge_ordered(self._results)

    def close(self) -> TestResult:
        return self.drain()


# ----------------------------------------------------------------------
# Threads
# ----------------------------------------------------------------------
class ThreadBackend:
    """The paper's worker pool: round-robin dispatch to worker threads.

    ``submit`` takes the lock only for round-robin index bookkeeping;
    each worker appends results to a list it alone writes, and ``drain``
    aggregates those per-worker lists after the queues go idle.  The
    checked results themselves never cross the lock.
    """

    name = "thread"

    #: Sentinel pushed to a worker's queue to ask it to exit.
    _STOP = None

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        name: str = "pmtest",
    ) -> None:
        if num_workers < 1:
            raise ValueError("thread backend needs at least one worker")
        self._engine = CheckingEngine(rules)
        self._num_workers = num_workers
        self._lock = threading.Lock()
        self._next_worker = 0
        self._dispatched = 0
        self._per_worker_counts = [0] * num_workers
        #: per-worker result/error lists, written only by their worker
        self._worker_results: List[List[_SeqResult]] = [
            [] for _ in range(num_workers)
        ]
        self._worker_errors: List[List[Tuple[int, BaseException]]] = [
            [] for _ in range(num_workers)
        ]
        self._queues: List["queue.Queue[Any]"] = []
        self._threads: List[threading.Thread] = []
        for i in range(num_workers):
            q: "queue.Queue[Any]" = queue.Queue()
            self._queues.append(q)
            thread = threading.Thread(
                target=self._worker_loop,
                args=(i, q),
                name=f"{name}-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        return list(self._per_worker_counts)

    def submit(self, trace: Trace) -> None:
        with self._lock:
            index = self._next_worker
            self._next_worker = (index + 1) % self._num_workers
            seq = self._dispatched
            self._dispatched += 1
            self._per_worker_counts[index] += 1
        self._queues[index].put((seq, trace))

    def drain(self) -> TestResult:
        for q in self._queues:
            q.join()
        errors = [pair for worker in self._worker_errors for pair in worker]
        if errors:
            seq, error = min(errors, key=lambda pair: pair[0])
            raise CheckingFailed(
                f"checking trace (submit #{seq}) failed: {error!r}"
            ) from error
        pairs = [pair for worker in self._worker_results for pair in worker]
        return _merge_ordered(pairs)

    def close(self) -> TestResult:
        try:
            return self.drain()
        finally:
            # Stop workers even when drain() surfaces a checking error.
            for q in self._queues:
                q.put(self._STOP)
            for thread in self._threads:
                thread.join()

    def _worker_loop(self, index: int, q: "queue.Queue[Any]") -> None:
        engine = self._engine
        results = self._worker_results[index]
        errors = self._worker_errors[index]
        while True:
            item = q.get()
            if item is self._STOP:
                q.task_done()
                return
            seq, trace = item
            try:
                results.append((seq, engine.check_trace(trace)))
            except BaseException as exc:  # surfaced from drain()
                errors.append((seq, exc))
            finally:
                q.task_done()


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
def _process_worker(index: int, task_q, result_q, rules) -> None:
    """Worker-process main: decode, check, encode, repeat."""
    engine = CheckingEngine(rules)
    while True:
        batch = task_q.get()
        if batch is None:
            return
        out = []
        for seq, wire in batch:
            try:
                result = engine.check_trace(decode_trace(wire))
            except BaseException as exc:
                out.append((seq, None, repr(exc)))
            else:
                out.append((seq, encode_result(result), None))
        result_q.put((index, out))


class ProcessBackend:
    """True multi-core checking over a ``multiprocessing`` worker pool.

    Traces are flattened with the compact wire encoding and grouped
    ``batch_size`` per IPC message; workers pull batches from one shared
    task queue (self-scheduling, no round-robin imbalance) and push
    encoded results back.  A collector thread on the submitting side
    decodes results as they arrive, so ``drain`` only has to wait for
    the outstanding count to hit zero and merge.
    """

    name = "process"

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if num_workers < 1:
            raise ValueError("process backend needs at least one worker")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._num_workers = num_workers
        self._batch_size = batch_size
        # fork (where available) shares the already-imported modules;
        # spawn works too since the worker fn and rules are picklable.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._processes = [
            ctx.Process(
                target=_process_worker,
                args=(i, self._task_q, self._result_q, rules),
                name=f"pmtest-checker-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for process in self._processes:
            process.start()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._dispatched = 0
        self._completed = 0
        self._pending: List[Tuple[int, tuple]] = []  # unflushed batch
        self._results: List[_SeqResult] = []
        self._errors: List[Tuple[int, str]] = []
        self._per_worker_counts = [0] * num_workers
        self._collector = threading.Thread(
            target=self._collect, name="pmtest-collector", daemon=True
        )
        self._collector.start()

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        """Traces checked per worker (self-scheduled, so load-dependent)."""
        with self._lock:
            return list(self._per_worker_counts)

    def submit(self, trace: Trace) -> None:
        wire = encode_trace(trace)
        with self._lock:
            seq = self._dispatched
            self._dispatched += 1
            self._pending.append((seq, wire))
            if len(self._pending) >= self._batch_size:
                batch, self._pending = self._pending, []
            else:
                return
        self._task_q.put(batch)

    def drain(self) -> TestResult:
        with self._done:
            if self._pending:
                batch, self._pending = self._pending, []
                self._task_q.put(batch)
            self._done.wait_for(lambda: self._completed >= self._dispatched)
            if self._errors:
                seq, error = min(self._errors, key=lambda pair: pair[0])
                raise CheckingFailed(
                    f"checking trace (submit #{seq}) failed in worker "
                    f"process: {error}"
                )
            return _merge_ordered(self._results)

    def close(self) -> TestResult:
        try:
            return self.drain()
        finally:
            # Stop workers even when drain() surfaces a checking error.
            for _ in self._processes:
                self._task_q.put(None)
            for process in self._processes:
                process.join(timeout=10)
            self._result_q.put(None)  # stop the collector
            self._collector.join(timeout=10)
            self._task_q.close()
            self._result_q.close()

    def _collect(self) -> None:
        while True:
            message = self._result_q.get()
            if message is None:
                return
            index, batch = message
            decoded = [
                (seq, None if wire is None else decode_result(wire), error)
                for seq, wire, error in batch
            ]
            with self._done:
                for seq, result, error in decoded:
                    if error is not None:
                        self._errors.append((seq, error))
                    else:
                        self._results.append((seq, result))
                self._per_worker_counts[index] += len(decoded)
                self._completed += len(decoded)
                self._done.notify_all()
