"""Soundness of PMTest's interval inference against crash ground truth.

The paper's speed claim rests on *inferring* persist orderings instead
of enumerating them; these property tests establish that the inference
is sound on the simulated machine, for random programs:

* **Durability soundness** — if ``isPersist(range)`` passes, then every
  reachable crash state already contains the range's final contents.
* **Durability completeness** — if it fails, some reachable crash state
  differs from the final contents (the checker never cries wolf on this
  machine model).
* **Ordering soundness** — if ``isOrderedBefore(A, B)`` passes and the
  final values differ from the initial ones, then no reachable crash
  state contains B's final data while missing A's.

Together with the per-structure crash tests these close the loop the
paper could not close cheaply on real hardware.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.crash import CrashEnumerator
from repro.pmem.machine import PMMachine

MEM = 512
STATE_BUDGET = 2048
SAMPLES = 96

_slot = st.integers(0, 5)  # six 64-byte slots -> six cache lines

_program = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _slot),
        st.tuples(st.just("flush"), _slot),
        st.tuples(st.just("fence"), st.just(0)),
    ),
    min_size=1,
    max_size=14,
)


def _run_program(ops):
    """Execute a random program; returns (machine, session, written).

    Every write stores a *unique* value: PMTest reasons about locations
    and orderings, not values, so re-writing an identical value would
    make the (value-based) ground truth accept states the checker must
    conservatively reject.
    """
    session = PMTestSession(workers=0)
    session.thread_init()
    session.start()
    machine = PMMachine(MEM)
    runtime = PMRuntime(machine=machine, session=session)
    written = set()
    for serial, (kind, slot) in enumerate(ops, start=1):
        addr = slot * 64
        if kind == "write":
            runtime.store(addr, bytes([serial]) * 8)
            written.add(slot)
        elif kind == "flush":
            runtime.clwb(addr, 8)
        else:
            runtime.sfence()
    return machine, runtime, session, sorted(written)


def _images(machine):
    enumerator = CrashEnumerator(machine)
    if enumerator.count() <= STATE_BUDGET:
        return list(enumerator.iter_images())
    return list(enumerator.sample(random.Random(0), SAMPLES))


class TestDurabilityAgainstGroundTruth:
    @given(_program)
    @settings(max_examples=120, deadline=None)
    def test_persist_verdict_matches_enumeration(self, ops):
        machine, runtime, session, written = _run_program(ops)
        if not written:
            session.exit()
            return
        # Ask PMTest about every written slot.
        for slot in written:
            session.is_persist(slot * 64, 8)
        result = session.exit()
        failed_slots = {
            report.site  # unused; match on the message range instead
            for report in result.failures
        }
        failed_ranges = {
            int(report.message.split("[")[1].split(",")[0], 16) // 64
            for report in result.failures
        }
        final = {slot: machine.volatile.read(slot * 64, 8) for slot in written}
        images = _images(machine)
        exhaustive = (
            CrashEnumerator(machine).count() <= STATE_BUDGET
        )
        for slot in written:
            always_present = all(
                image.read(slot * 64, 8) == final[slot] for image in images
            )
            if slot not in failed_ranges:
                # PMTest says persisted: soundness must hold on every
                # enumerated state (sampled states included).
                assert always_present, (
                    f"slot {slot}: PMTest passed but some crash state "
                    "lacks the data"
                )
            elif exhaustive:
                # PMTest says not guaranteed: with full enumeration there
                # must be a state missing the data (completeness).
                assert not always_present, (
                    f"slot {slot}: PMTest failed but every crash state "
                    "has the data"
                )


class TestOrderingAgainstGroundTruth:
    @given(_program)
    @settings(max_examples=100, deadline=None)
    def test_ordering_verdict_is_sound(self, ops):
        machine, runtime, session, written = _run_program(ops)
        if len(written) < 2:
            session.exit()
            return
        a, b = written[0], written[1]
        session.is_ordered_before(a * 64, 8, b * 64, 8)
        result = session.exit()
        if result.failures:
            return  # only soundness of a PASS verdict is claimed
        final_a = machine.volatile.read(a * 64, 8)
        final_b = machine.volatile.read(b * 64, 8)
        zero = b"\0" * 8
        if final_a == zero or final_b == zero:
            return  # overwritten back to initial: vacuous
        for image in _images(machine):
            has_b = image.read(b * 64, 8) == final_b
            has_a = image.read(a * 64, 8) == final_a
            if has_b:
                assert has_a, (
                    "ordering passed but a crash state has B's data "
                    "without A's"
                )
