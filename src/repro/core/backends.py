"""Checking backends: where submitted traces actually get validated.

The paper's runtime (Section 4.4, Figure 8) decouples the program under
test from the checkers so validation proceeds in parallel with
execution.  How much parallelism that buys depends on *where* the
checking runs, so the pool's execution strategy is a pluggable backend:

``inline``
    Traces are checked synchronously inside ``submit`` on the calling
    thread.  Fully deterministic; what unit tests use (``workers=0``).
``thread``
    The paper's master/worker architecture with Python worker threads:
    round-robin dispatch to per-worker queues.  Checking overlaps
    program I/O and keeps ``submit`` cheap, but the GIL serializes the
    CPU-bound engine, so throughput does not scale with workers.
``process``
    Worker *processes*: traces are flattened to the compact wire
    encoding (:mod:`repro.core.traceio`), shipped in batches over a
    ``multiprocessing`` queue, checked in true parallel, and the
    results merged back.  This is the backend that reproduces the
    paper's Fig. 12 worker-scaling claim on multi-core hosts.

Every backend aggregates results in **submission order**: each trace's
result is tagged with its submit sequence number, and ``drain`` merges
them sorted by that tag.  Scheduling never leaks into the aggregate, so
all three backends produce bit-identical :class:`TestResult`\\ s for the
same trace stream (the cross-backend equivalence test asserts this over
the whole bug corpus).

Fault tolerance
---------------
``PMTest_GET_RESULT`` must never hang forever and a dead worker must
never silently drop traces, so the thread and process backends are
*supervised* (policy in :class:`~repro.core.faults.Resilience`):

* every submitted trace is retained (thread: the trace, process: its
  wire encoding) until its result arrives, so outstanding work is
  always requeueable;
* worker liveness is monitored during ``drain``; a dead worker is
  respawned (bounded by ``max_retries``, with exponential backoff) and
  its undrained traces are requeued — sequence-number merge plus
  de-duplication by sequence number make replay order- and
  duplicate-safe, so recovery cannot change a verdict;
* a ``check_timeout`` watchdog bounds drains: after that long with no
  completed trace, everything outstanding is requeued once, and if that
  brings no progress either the backend raises
  :class:`BackendUnhealthy` carrying its partial results and unchecked
  traces so the :class:`~repro.core.workers.WorkerPool` can degrade to
  the next backend in the chain (process -> thread -> inline);
* ``close``/``stop`` are idempotent and safe after a failed drain.

Chaos injection (:mod:`repro.core.faults`) drives these paths
deterministically: workers consult the session's fault plan at
``worker.batch``, the submitter at ``wire.encode``/``queue.put``, and
``make_backend`` at ``backend.spawn``.  Respawned workers are never
re-injected.  The inline backend is the deterministic reference and has
no fault points.

Transports and codecs
---------------------
*How* batches cross the process boundary is independent of the
supervision above and is selected per :data:`TRANSPORT_NAMES`:

``queue`` (default)
    ``multiprocessing.Queue`` — a feeder thread pickles each message
    into a pipe.  Pairs with either codec: ``pickle`` (the tuple wire
    as-is) or ``binary`` (the struct-packed codec from
    :mod:`repro.core.traceio`, 3-5x fewer bytes per trace).
``shm``
    Shared-memory ring buffers (:mod:`repro.core.shm_ring`): one task
    ring, one result ring, messages always in the binary codec.  No
    feeder threads, no pickling — a batch is one ``bytes`` copy in and
    one copy out.

Either way the backend retains the *tuple* wire of every outstanding
trace, so requeue/replay and the corrupted-in-transit diagnosis work
identically across transports, and batch size adapts to backpressure
(:class:`AdaptiveBatch`) unless pinned with an explicit ``batch_size``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import queue
from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.core.engine import CheckingEngine
from repro.core.engine_columnar import make_engine, resolve_engine_name
from repro.core.interval_array import resolve_shadow_name
from repro.core.events import Trace
from repro.core.faults import (
    DEFAULT_RESILIENCE,
    FaultError,
    FaultKind,
    FaultPlan,
    FaultPoint,
    HANG_SECONDS,
    Resilience,
)
from repro.core.column_arena import ensure_tracker, release_attached
from repro.core.metrics import MetricsLevel, MetricsRegistry
from repro.core.recovery import RecoveryEvent, render_events
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.shm_ring import DEFAULT_RING_BYTES, RingClosed, ShmRing
from repro.core.tracing import SpanContext, Tracer, TracingError
from repro.core.verdict_cache import VerdictCache, resolve_cache_size
from repro.core.traceio import (
    TraceDecodeError,
    corrupt_wire,
    corrupt_wire_framed,
    decode_message,
    decode_registry,
    decode_result,
    decode_trace,
    encode_ack_message,
    encode_registry,
    encode_result,
    encode_result_message,
    encode_task_message,
    encode_trace,
)

#: Names accepted by :func:`make_backend` (and every ``backend=`` knob).
BACKEND_NAMES = ("inline", "thread", "process")

#: Transports for the process backend's task/result channels.
TRANSPORT_NAMES = ("queue", "shm")

#: Wire codecs for the process backend (``shm`` implies ``binary``).
CODEC_NAMES = ("pickle", "binary")

#: The degradation ladder: who picks up the work when a backend cannot
#: be spawned or is declared unhealthy mid-run.
FALLBACK_CHAIN = {"process": "thread", "thread": "inline", "inline": None}

#: Initial traces per IPC message for the process backend.  Batching
#: amortizes the per-message transport overhead; by default the size
#: then adapts between 1 and :data:`MAX_BATCH_SIZE` (an explicit
#: ``batch_size=`` pins it).
DEFAULT_BATCH_SIZE = 8

#: Upper bound for adaptive batch growth.
MAX_BATCH_SIZE = 64

#: Supervision poll interval while a drain is waiting (seconds).
_POLL = 0.02

#: ``(submit_seq, result)`` — the unit every backend aggregates.
_SeqResult = Tuple[int, TestResult]


class CheckingFailed(RuntimeError):
    """A worker raised while checking a trace.

    Raised from ``drain``/``close`` on the submitting side, carrying the
    original error's description.  (Inline checking raises the original
    exception directly from ``submit``.)
    """


class BackendUnhealthy(RuntimeError):
    """The backend cannot finish its work and should be replaced.

    Raised from ``drain`` when recovery is exhausted (respawn budget
    spent, or the watchdog fired twice without progress).  Carries
    everything the pool needs to degrade honestly: the per-trace results
    already salvaged (``pairs``), the traces that were never checked
    (``unchecked``), and the typed recovery events accumulated so far
    (``events``; ``diagnostics`` is their legacy string rendering).
    """

    def __init__(
        self,
        message: str,
        pairs: Tuple[_SeqResult, ...] = (),
        unchecked: Tuple[Tuple[int, Trace], ...] = (),
        events: Tuple[RecoveryEvent, ...] = (),
    ) -> None:
        super().__init__(message)
        self.pairs: List[_SeqResult] = list(pairs)
        self.unchecked: List[Tuple[int, Trace]] = list(unchecked)
        self.events: List[RecoveryEvent] = list(events)

    @property
    def diagnostics(self) -> List[str]:
        return render_events(self.events)


@runtime_checkable
class CheckingBackend(Protocol):
    """What the :class:`~repro.core.workers.WorkerPool` facade drives."""

    #: backend name, one of :data:`BACKEND_NAMES`
    name: str

    #: typed infrastructure events (respawns, requeues, watchdog sweeps)
    events: List[RecoveryEvent]

    @property
    def diagnostics(self) -> List[str]: ...

    @property
    def num_workers(self) -> int: ...

    @property
    def dispatched(self) -> int: ...

    def worker_trace_counts(self) -> List[int]: ...

    def metrics_registries(self) -> List[MetricsRegistry]: ...

    def backlog(self) -> int: ...

    def submit(self, trace: Trace) -> None: ...

    def drain_pairs(self) -> List[_SeqResult]: ...

    def drain(self) -> TestResult: ...

    def close(self) -> TestResult: ...

    def stop(self) -> None: ...


class AdaptiveBatch:
    """Batch-size controller for the process backend.

    Constructed with an explicit size it is *pinned* (the historical
    fixed ``batch_size`` behaviour); constructed with ``None`` it
    adapts multiplicatively between 1 and :data:`MAX_BATCH_SIZE`:

    * **backpressure** (more unconsumed batches in the task channel
      than ``2 x workers``): submissions outrun the workers, so double
      the batch to amortize per-message transport cost;
    * **starvation** (the channel is empty the moment we flush):
      workers are waiting on us, so halve the batch to cut the latency
      between a trace being submitted and a worker seeing it.

    ``observe`` is called after each flush with a racy channel-depth
    estimate — precision is irrelevant, the signal only has to point
    in the right direction often enough for the size to settle.
    """

    __slots__ = ("size", "fixed")

    def __init__(self, size: Optional[int] = None) -> None:
        if size is not None and size < 1:
            raise ValueError("batch_size must be >= 1")
        self.fixed = size is not None
        self.size = size if size is not None else DEFAULT_BATCH_SIZE

    def observe(self, backlog: int, workers: int) -> None:
        if self.fixed:
            return
        if backlog > 2 * max(workers, 1):
            self.size = min(self.size * 2, MAX_BATCH_SIZE)
        elif backlog == 0:
            self.size = max(self.size // 2, 1)


def resolve_transport_name(name: Optional[str]) -> str:
    """Resolve the process-backend transport, honouring the
    ``PMTEST_TRANSPORT`` environment override when the caller did not
    choose one explicitly."""
    if name is None:
        name = os.environ.get("PMTEST_TRANSPORT") or "queue"
    if name not in TRANSPORT_NAMES:
        raise ValueError(
            f"unknown transport {name!r}; expected one of {TRANSPORT_NAMES}"
        )
    return name


def make_backend(
    name: Optional[str],
    rules: Optional[PersistencyRules] = None,
    num_workers: int = 1,
    batch_size: Optional[int] = None,
    thread_name: str = "pmtest",
    resilience: Optional[Resilience] = None,
    faults: Optional[FaultPlan] = None,
    metrics: Optional[MetricsRegistry] = None,
    transport: Optional[str] = None,
    codec: Optional[str] = None,
    cache_size: Optional[int] = None,
    engine: Optional[str] = None,
    shadow: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    span_context: Optional[SpanContext] = None,
) -> "CheckingBackend":
    """Build a backend by name.

    ``name=None`` keeps the historical behaviour of the ``workers=``
    knob: ``0`` means inline, anything else the thread pool.  A
    ``backend.spawn`` FAIL fault (or a real spawn error) propagates to
    the caller; :func:`make_backend_with_fallback` turns it into
    degradation along :data:`FALLBACK_CHAIN`.

    ``metrics`` is the caller-owned submit-side registry; workers get
    registries of their own (see ``metrics_registries``).

    ``transport``/``codec`` select the process backend's IPC channel
    and wire encoding (``None``: ``PMTEST_TRANSPORT`` or the
    defaults); both are ignored by the in-process backends, which move
    zero wire bytes by construction.

    ``cache_size`` is the per-worker verdict-cache capacity (0
    disables it; ``None``: resolve the ``PMTEST_VERDICT_CACHE``
    environment knob, default on).

    ``engine`` selects the replay engine every worker builds —
    ``"object"`` (per-event dispatch, the default) or ``"columnar"``
    (struct-of-arrays batch replay); ``None`` resolves the
    ``PMTEST_ENGINE`` environment knob.  Resolved here, once, so all
    workers of one backend run the same engine even if the environment
    changes later.

    ``shadow`` selects the shadow-memory interval store every worker's
    engine builds — ``"object"`` (the default ``IntervalMap``) or
    ``"array"`` (struct-of-arrays ``ArrayIntervalMap``); ``None``
    resolves the ``PMTEST_SHADOW`` environment knob.  Verdict-neutral,
    like ``engine``.

    ``tracer``/``span_context`` opt the backend's workers into span
    recording: worker batch spans parent under ``span_context`` and
    land in ``tracer`` (the process backend ships its workers' events
    back piggybacked on result messages).  The inline backend ignores
    both — its work already happens inside the caller's spans.
    """
    name = resolve_backend_name(name, num_workers)
    engine = resolve_engine_name(engine)
    shadow = resolve_shadow_name(shadow)
    if cache_size is None:
        cache_size = resolve_cache_size()
    if name == "inline":
        return InlineBackend(
            rules, metrics=metrics, cache_size=cache_size, engine=engine,
            shadow=shadow,
        )
    if faults is not None:
        rule = faults.fire(FaultPoint.SPAWN)
        if rule is not None and rule.kind is FaultKind.FAIL:
            raise FaultError(f"injected spawn failure for {name!r} backend")
    if name == "thread":
        return ThreadBackend(
            rules,
            max(num_workers, 1),
            name=thread_name,
            resilience=resilience,
            faults=faults,
            metrics=metrics,
            cache_size=cache_size,
            engine=engine,
            shadow=shadow,
            tracer=tracer,
            span_context=span_context,
        )
    if name == "process":
        return ProcessBackend(
            rules,
            max(num_workers, 1),
            batch_size=batch_size,
            resilience=resilience,
            faults=faults,
            metrics=metrics,
            transport=transport,
            codec=codec,
            cache_size=cache_size,
            engine=engine,
            shadow=shadow,
            tracer=tracer,
            span_context=span_context,
        )
    raise ValueError(
        f"unknown checking backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def resolve_backend_name(name: Optional[str], num_workers: int) -> str:
    """Resolve the historical ``workers=`` knob to a backend name."""
    if name is None:
        return "inline" if num_workers == 0 else "thread"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown checking backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return name


def make_backend_with_fallback(
    name: Optional[str],
    rules: Optional[PersistencyRules] = None,
    num_workers: int = 1,
    batch_size: Optional[int] = None,
    thread_name: str = "pmtest",
    resilience: Optional[Resilience] = None,
    faults: Optional[FaultPlan] = None,
    metrics: Optional[MetricsRegistry] = None,
    transport: Optional[str] = None,
    codec: Optional[str] = None,
    cache_size: Optional[int] = None,
    engine: Optional[str] = None,
    shadow: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    span_context: Optional[SpanContext] = None,
) -> Tuple["CheckingBackend", List[RecoveryEvent]]:
    """Build a backend, degrading along the chain when spawning fails.

    Returns ``(backend, events)`` where the typed
    :class:`~repro.core.recovery.RecoveryEvent` list records every
    degradation step taken.  With ``resilience.fallback`` off, spawn
    errors propagate unchanged.
    """
    resilience = resilience or DEFAULT_RESILIENCE
    current = resolve_backend_name(name, num_workers)
    events: List[RecoveryEvent] = []
    while True:
        try:
            backend = make_backend(
                current,
                rules,
                num_workers=num_workers,
                batch_size=batch_size,
                thread_name=thread_name,
                resilience=resilience,
                faults=faults,
                metrics=metrics,
                transport=transport,
                codec=codec,
                cache_size=cache_size,
                engine=engine,
                shadow=shadow,
                tracer=tracer,
                span_context=span_context,
            )
            return backend, events
        except ValueError:
            raise
        except Exception as exc:
            nxt = FALLBACK_CHAIN.get(current)
            if not resilience.fallback or nxt is None:
                raise
            events.append(RecoveryEvent.spawn_fallback(current, exc, nxt))
            current = nxt


def _merge_ordered(pairs: List[_SeqResult]) -> TestResult:
    """Aggregate per-trace results in submission order."""
    snapshot = TestResult()
    for _, result in sorted(pairs, key=lambda pair: pair[0]):
        snapshot.merge(result)
    return snapshot


# ----------------------------------------------------------------------
# Inline
# ----------------------------------------------------------------------
class InlineBackend:
    """Synchronous checking on the submitting thread (``workers=0``).

    The deterministic reference backend: no workers, no fault points,
    and the last rung of the degradation ladder (it must never fail to
    spawn).
    """

    name = "inline"

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache_size: int = 0,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
    ) -> None:
        cache = VerdictCache(cache_size) if cache_size > 0 else None
        self.engine_name = resolve_engine_name(engine)
        self.shadow_name = resolve_shadow_name(shadow)
        self._engine = make_engine(
            self.engine_name, rules, metrics, cache=cache,
            shadow=self.shadow_name,
        )
        self._metrics = metrics
        self._lock = threading.Lock()
        self._results: List[_SeqResult] = []
        self._dispatched = 0
        self.events: List[RecoveryEvent] = []

    @property
    def diagnostics(self) -> List[str]:
        return render_events(self.events)

    @property
    def num_workers(self) -> int:
        return 0

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        return []

    def metrics_registries(self) -> List[MetricsRegistry]:
        # The inline engine records straight into the caller's registry;
        # there is nothing worker-owned to merge.
        return []

    def backlog(self) -> int:
        """Traces submitted but not yet checked (always 0: inline
        checking completes inside ``submit``)."""
        return 0

    def submit(self, trace: Trace) -> None:
        metrics = self._metrics
        if metrics is not None:
            # Inline has no ingest cost by construction (no encoding, no
            # queue); only the handoff count is meaningful.
            metrics.counter("stage.trace_ingest.count").inc(1)
        with self._lock:
            seq = self._dispatched
            self._dispatched += 1
            self._results.append((seq, self._engine.check_trace(trace)))

    def drain_pairs(self) -> List[_SeqResult]:
        with self._lock:
            return list(self._results)

    def drain(self) -> TestResult:
        result = _merge_ordered(self.drain_pairs())
        result.diagnostics.extend(self.diagnostics)
        return result

    def close(self) -> TestResult:
        return self.drain()

    def stop(self) -> None:
        pass


# ----------------------------------------------------------------------
# Threads
# ----------------------------------------------------------------------
class ThreadBackend:
    """The paper's worker pool: round-robin dispatch to worker threads.

    ``submit`` takes the lock only for round-robin index bookkeeping;
    each worker appends results to a list it alone writes, and ``drain``
    aggregates those per-worker lists once every submitted sequence
    number is accounted for.  The checked results themselves never cross
    the lock.

    Supervision: each submitted trace is retained in ``_incomplete``
    until checked, workers publish a per-slot heartbeat and in-flight
    sequence number, and ``drain`` polls worker liveness.  A dead worker
    thread is replaced on the same queue (its queued work survives; only
    the in-flight trace needs requeueing); a hung worker's queue is
    redistributed by the watchdog sweep.  Duplicate results from replays
    are dropped by sequence number before merging.
    """

    name = "thread"

    #: Sentinel pushed to a worker's queue to ask it to exit.
    _STOP = None

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        name: str = "pmtest",
        resilience: Optional[Resilience] = None,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache_size: int = 0,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        span_context: Optional[SpanContext] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("thread backend needs at least one worker")
        self._rules = rules
        self._metrics = metrics
        #: shared tracer for worker batch spans (threads record straight
        #: into it; all spans parent under ``span_context``)
        self._tracer = tracer
        self._span_ctx = span_context
        self.engine_name = resolve_engine_name(engine)
        self.shadow_name = resolve_shadow_name(shadow)
        #: per-worker verdict-cache capacity (0: no cache); each worker
        #: builds its own cache so no synchronisation is needed
        self._cache_size = cache_size
        self._metrics_level: Optional[MetricsLevel] = (
            metrics.level if metrics is not None else None
        )
        #: per-spawned-worker registries (each written only by its
        #: worker thread; appended on worker startup)
        self._worker_registries: List[MetricsRegistry] = []
        self._resilience = resilience or DEFAULT_RESILIENCE
        self._num_workers = num_workers
        self._thread_name = name
        self._lock = threading.Lock()
        self._next_worker = 0
        self._dispatched = 0
        self._per_worker_counts = [0] * num_workers
        #: per-worker result/error lists, written only by their worker
        self._worker_results: List[List[_SeqResult]] = [
            [] for _ in range(num_workers)
        ]
        self._worker_errors: List[List[Tuple[int, BaseException]]] = [
            [] for _ in range(num_workers)
        ]
        #: seq -> trace for everything not yet checked (requeue source)
        self._incomplete: Dict[int, Trace] = {}
        #: per-slot in-flight seq (written by the worker, read by drain)
        self._current: List[Optional[int]] = [None] * num_workers
        self._heartbeat: List[float] = [time.monotonic()] * num_workers
        self._progress = threading.Event()
        self._stopping = threading.Event()
        self._respawns = 0
        self._stopped = False
        self._final: Optional[Tuple[str, Any]] = None
        self.events: List[RecoveryEvent] = []
        self._queues: List["queue.Queue[Any]"] = []
        self._threads: List[threading.Thread] = []
        for i in range(num_workers):
            q: "queue.Queue[Any]" = queue.Queue()
            self._queues.append(q)
            self._threads.append(self._spawn(i, q, faults))

    @property
    def diagnostics(self) -> List[str]:
        return render_events(self.events)

    def metrics_registries(self) -> List[MetricsRegistry]:
        return list(self._worker_registries)

    def _spawn(
        self, index: int, q: "queue.Queue[Any]", faults: Optional[FaultPlan]
    ) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker_loop,
            args=(index, q, faults),
            name=f"{self._thread_name}-worker-{index}",
            daemon=True,
        )
        thread.start()
        return thread

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        return list(self._per_worker_counts)

    def heartbeats(self) -> List[float]:
        """Monotonic timestamp of each worker's last completed trace."""
        return list(self._heartbeat)

    def backlog(self) -> int:
        """Estimated traces submitted but not yet checked.

        Computed as dispatched minus results appended so far; requeue
        replays can briefly overstate completion, so the value is a
        backpressure signal, not an exact count.
        """
        done = sum(len(results) for results in self._worker_results)
        return max(0, self._dispatched - done)

    def submit(self, trace: Trace) -> None:
        metrics = self._metrics
        if metrics is not None and metrics.full:
            start = perf_counter_ns()
            index, seq = self._submit_bookkeeping(trace)
            q = self._queues[index]
            # Depth seen by the enqueued trace: how many items wait
            # ahead of it on its worker's queue.
            metrics.histogram("thread.queue_depth").record(q.qsize())
            # The third element timestamps the enqueue so the worker can
            # attribute queue wait (requeue paths stay 2-tuples).
            q.put((seq, trace, perf_counter_ns()))
            counter = metrics.counter
            counter("stage.trace_ingest.ns").inc(perf_counter_ns() - start)
            counter("stage.trace_ingest.count").inc(1)
            return
        if metrics is not None:
            metrics.counter("stage.trace_ingest.count").inc(1)
        index, seq = self._submit_bookkeeping(trace)
        self._queues[index].put((seq, trace))

    def _submit_bookkeeping(self, trace: Trace) -> Tuple[int, int]:
        with self._lock:
            index = self._next_worker
            self._next_worker = (index + 1) % self._num_workers
            seq = self._dispatched
            self._dispatched += 1
            self._per_worker_counts[index] += 1
            self._incomplete[seq] = trace
        return index, seq

    # ------------------------------------------------------------------
    def _collected(
        self,
    ) -> Tuple[Dict[int, TestResult], List[Tuple[int, BaseException]]]:
        """Snapshot worker output, de-duplicated by sequence number."""
        pairs: Dict[int, TestResult] = {}
        errors: List[Tuple[int, BaseException]] = []
        for worker in self._worker_results:
            for seq, result in list(worker):
                if seq not in pairs:
                    pairs[seq] = result
        for worker in self._worker_errors:
            errors.extend(list(worker))
        return pairs, errors

    def drain_pairs(self) -> List[_SeqResult]:
        res = self._resilience
        last_progress = time.monotonic()
        last_done = -1
        swept = False
        while True:
            pairs, errors = self._collected()
            done: Set[int] = set(pairs)
            done.update(seq for seq, _ in errors)
            for seq in done:
                self._incomplete.pop(seq, None)
            if errors:
                seq, error = min(errors, key=lambda pair: pair[0])
                raise CheckingFailed(
                    f"checking trace (submit #{seq}) failed: {error!r}"
                ) from error
            if len(done) >= self._dispatched:
                return sorted(pairs.items())
            now = time.monotonic()
            if len(done) != last_done:
                last_done = len(done)
                last_progress = now
                swept = False
            self._supervise(done, pairs)
            if (
                res.check_timeout is not None
                and now - last_progress > res.check_timeout
            ):
                if not swept:
                    n = self._redistribute(done)
                    self.events.append(
                        RecoveryEvent.watchdog_redistribute(
                            res.check_timeout, n
                        )
                    )
                    swept = True
                    last_progress = now
                else:
                    self._unhealthy(
                        pairs,
                        done,
                        f"watchdog timeout: no checking progress for "
                        f"{res.check_timeout:g}s after redistributing "
                        f"outstanding traces",
                    )
            self._progress.wait(_POLL)
            self._progress.clear()

    def _supervise(self, done: Set[int], pairs: Dict[int, TestResult]) -> None:
        """Respawn dead worker threads and requeue their in-flight trace."""
        if self._stopping.is_set():
            return
        res = self._resilience
        for index in range(self._num_workers):
            if self._threads[index].is_alive():
                continue
            inflight = self._current[index]
            if self._respawns >= res.max_retries:
                self._unhealthy(
                    pairs,
                    done,
                    f"checking worker thread {index} died and the retry "
                    f"budget ({res.max_retries}) is exhausted",
                )
            self._respawns += 1
            time.sleep(res.backoff_base * (2 ** (self._respawns - 1)))
            # Respawned workers are never re-injected (faults=None); the
            # same queue is reused, so queued work survives the death.
            self._threads[index] = self._spawn(index, self._queues[index], None)
            requeued = 0
            if inflight is not None and inflight not in done:
                trace = self._incomplete.get(inflight)
                if trace is not None:
                    self._current[index] = None
                    self._queues[index].put((inflight, trace))
                    requeued = 1
            self.events.append(
                RecoveryEvent.respawn_thread(
                    index, requeued, self._respawns, res.max_retries
                )
            )

    def _redistribute(self, done: Set[int]) -> int:
        """Watchdog sweep: resend every outstanding trace to live workers."""
        alive = [
            i for i in range(self._num_workers) if self._threads[i].is_alive()
        ]
        if not alive:
            return 0
        # Prefer idle workers; a hung worker has its in-flight seq set.
        targets = [i for i in alive if self._current[i] is None] or alive
        n = 0
        for seq, trace in sorted(self._incomplete.items()):
            if seq in done:
                continue
            self._queues[targets[n % len(targets)]].put((seq, trace))
            n += 1
        return n

    def _unhealthy(
        self, pairs: Dict[int, TestResult], done: Set[int], message: str
    ) -> None:
        unchecked = [
            (seq, trace)
            for seq, trace in sorted(self._incomplete.items())
            if seq not in done
        ]
        raise BackendUnhealthy(
            message,
            pairs=tuple(sorted(pairs.items())),
            unchecked=tuple(unchecked),
            events=tuple(self.events),
        )

    # ------------------------------------------------------------------
    def drain(self) -> TestResult:
        result = _merge_ordered(self.drain_pairs())
        result.diagnostics.extend(self.diagnostics)
        return result

    def close(self) -> TestResult:
        if self._final is not None:
            kind, value = self._final
            if kind == "err":
                raise value
            return value
        try:
            result = self.drain()
        except BaseException as exc:
            self._final = ("err", exc)
            raise
        else:
            self._final = ("ok", result)
            return result
        finally:
            # Stop workers even when drain() surfaces a checking error.
            self.stop()

    def stop(self) -> None:
        """Stop all workers without draining.  Idempotent, never raises."""
        if self._stopped:
            return
        self._stopped = True
        self._stopping.set()
        for q in self._queues:
            q.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def _worker_loop(
        self, index: int, q: "queue.Queue[Any]", faults: Optional[FaultPlan]
    ) -> None:
        # Each spawned worker owns its engine and (when metrics are on)
        # its registry — recording never crosses threads; aggregation is
        # a commutative registry merge at snapshot time.
        registry = None
        wait_hist = None
        if self._metrics_level is not None:
            registry = MetricsRegistry(self._metrics_level)
            self._worker_registries.append(registry)
            if registry.full:
                wait_hist = registry.histogram("thread.queue_wait_ns")
        cache = (
            VerdictCache(self._cache_size) if self._cache_size > 0 else None
        )
        engine = make_engine(
            self.engine_name, self._rules, registry, cache=cache,
            shadow=self.shadow_name,
        )
        results = self._worker_results[index]
        errors = self._worker_errors[index]
        while True:
            item = q.get()
            if item is self._STOP:
                return
            seq, trace = item[0], item[1]
            if wait_hist is not None and len(item) > 2:
                wait_hist.record(perf_counter_ns() - item[2])
            self._current[index] = seq
            if faults is not None:
                rule = faults.fire(FaultPoint.WORKER_BATCH, worker=index)
                if rule is not None:
                    if rule.kind is FaultKind.CRASH:
                        return  # die with the trace in flight
                    if rule.kind is FaultKind.HANG:
                        deadline = time.monotonic() + (
                            rule.delay or HANG_SECONDS
                        )
                        while (
                            not self._stopping.is_set()
                            and time.monotonic() < deadline
                        ):
                            time.sleep(0.01)
                    elif rule.kind is FaultKind.SLOW:
                        time.sleep(rule.delay)
                    elif rule.kind is FaultKind.FAIL:
                        errors.append((seq, FaultError("injected worker failure")))
                        self._current[index] = None
                        self._heartbeat[index] = time.monotonic()
                        self._progress.set()
                        continue
            span = None
            if self._tracer is not None:
                try:
                    span = self._tracer.start_span(
                        "worker.check", parent=self._span_ctx,
                        worker=index, seq=seq,
                    )
                except TracingError:  # tracer flushed mid-shutdown
                    span = None
            try:
                results.append((seq, engine.check_trace(trace)))
            except BaseException as exc:  # surfaced from drain()
                errors.append((seq, exc))
            if span is not None:
                span.finish()
            self._current[index] = None
            self._heartbeat[index] = time.monotonic()
            self._progress.set()


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
def _process_worker(*args, **kwargs) -> None:
    """Worker-process entry: run the loop, then detach shard arenas.

    The arena detach must happen while the interpreter is healthy: at
    shutdown, GC may finalize a ``SharedMemory`` before the column
    views pinning its buffer and spew ``BufferError`` noise from
    ``__del__``.  Crash exits (``os._exit``) skip this by design — the
    creator's unlink still reclaims the segment.
    """
    try:
        _process_worker_loop(*args, **kwargs)
    finally:
        release_attached()


def _process_worker_loop(
    index: int, task_ch, result_ch, rules, faults, metrics_level=None,
    transport: str = "queue", codec: str = "pickle", cache_size: int = 0,
    engine_name: str = "object",
    trace_ctx: Optional[Tuple[int, int]] = None,
    shadow_name: str = "object",
) -> None:
    """Worker-process main: ack, decode, check, encode, repeat.

    The ack message doubles as a heartbeat and tells the supervisor
    which sequence numbers this worker holds, so a crash mid-batch can
    be recovered by requeueing exactly the acked-but-unfinished traces.

    With ``metrics_level`` set (a :class:`MetricsLevel` value string)
    the worker records into a local registry and ships it as a *delta*
    piggybacked on each result message, clearing afterwards — the
    submitting side merges deltas, so worker metrics survive everything
    short of a crash between checking and sending.

    ``trace_ctx`` (a ``(trace_id, span_id)`` pair) opts the worker into
    span recording: batch spans parent under the pool-side span the
    pair names and their rendered Chrome events ship piggybacked on
    result messages (drained after each send, so events travel exactly
    once and carry this process's own pid).

    ``task_ch``/``result_ch`` are ``multiprocessing`` queues for the
    ``queue`` transport or :class:`~repro.core.shm_ring.ShmRing`\\ s for
    ``shm``; with the ``binary`` codec every message is one ``bytes``
    value of :func:`~repro.core.traceio.decode_message`'s format.
    """
    registry = None
    if metrics_level is not None:
        registry = MetricsRegistry(MetricsLevel(metrics_level))
    tracer = None
    if trace_ctx is not None:
        tracer = Tracer(
            process_name=f"pmtest-worker-{index}",
            root=SpanContext(trace_ctx[0], trace_ctx[1]),
        )
    cache = VerdictCache(cache_size) if cache_size > 0 else None
    engine = make_engine(
        engine_name, rules, registry, cache=cache, shadow=shadow_name
    )
    binary = codec == "binary"
    # The columnar engine decodes binary batches straight into columns
    # (zero per-event objects); epoch shards in a task batch decode
    # columnar regardless, which is safe because only columnar pools
    # ever ship shards.
    columnar = engine_name == "columnar"

    def ship(message) -> None:
        if transport == "shm":
            try:
                result_ch.push(message)
            except RingClosed:  # backend is stopping; vanish quietly
                os._exit(0)
        else:
            result_ch.put(message)

    def count_sent(nbytes: int) -> None:
        if registry is not None:
            registry.counter("codec.worker_result_bytes").inc(nbytes)

    while True:
        if transport == "shm":
            try:
                raw = task_ch.pop()
            except RingClosed:
                return
        else:
            raw = task_ch.get()
            if raw is None:
                return
        if binary:
            try:
                message = decode_message(raw, columnar=columnar)
            except TraceDecodeError:
                # Framing damage: no sequence numbers to report against.
                # Drop the message; the watchdog requeues its traces.
                if registry is not None:
                    registry.counter("codec.task_decode_errors").inc(1)
                continue
            if message[0] == "stop":
                return
            if message[0] != "task":
                continue
            pairs = message[1]  # [(seq, Trace | TraceDecodeError), ...]
            if registry is not None:
                registry.counter("codec.worker_task_bytes").inc(len(raw))
        else:
            pairs = raw  # [(seq, tuple wire), ...]
        seqs = [seq for seq, _ in pairs]
        if binary:
            ack = encode_ack_message(index, seqs)
            count_sent(len(ack))
            ship(ack)
        else:
            ship(("ack", index, seqs))
        if registry is not None:
            registry.counter("process.worker_batches").inc(1)
            if registry.full:
                registry.histogram("process.batch_traces").record(len(pairs))
        if faults is not None:
            rule = faults.fire(FaultPoint.WORKER_BATCH, worker=index)
            if rule is not None:
                if rule.kind is FaultKind.CRASH:
                    os._exit(17)
                if rule.kind is FaultKind.HANG:
                    time.sleep(rule.delay or HANG_SECONDS)
                elif rule.kind is FaultKind.SLOW:
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.FAIL:
                    failed = [
                        (seq, None, "FaultError('injected worker failure')")
                        for seq in seqs
                    ]
                    if binary:
                        data = encode_result_message(index, failed)
                        count_sent(len(data))
                        ship(data)
                    else:
                        ship(("res", index, failed))
                    continue
        batch_span = (
            tracer.start_span("worker.batch", worker=index,
                              traces=len(pairs))
            if tracer is not None else None
        )
        out = []
        for seq, item in pairs:
            try:
                if binary:
                    if isinstance(item, TraceDecodeError):
                        raise item
                    result = engine.check_trace(item)
                else:
                    result = engine.check_trace(decode_trace(item))
            except BaseException as exc:
                out.append((seq, None, repr(exc)))
            else:
                out.append((seq, result if binary else encode_result(result),
                            None))
        if batch_span is not None:
            batch_span.finish(checked=len(out))
        spans = tracer.drain_events() if tracer is not None else None
        delta = registry if registry is not None and registry else None
        if binary:
            data = encode_result_message(index, out, delta, spans)
            if delta is not None:
                registry.clear()
            # Counted after the clear: this message's own size rides the
            # *next* shipped delta, so the worker-side echo undercounts
            # by the final message.  codec.result_bytes (collector side)
            # is the authoritative total.
            count_sent(len(data))
            ship(data)
        elif delta is not None or spans:
            ship(("res", index, out,
                  encode_registry(delta) if delta is not None else None,
                  spans))
            if delta is not None:
                registry.clear()
        else:
            ship(("res", index, out))


class ProcessBackend:
    """True multi-core checking over a ``multiprocessing`` worker pool.

    Traces are flattened with the compact wire encoding and grouped
    into batches per IPC message (adaptive size unless pinned; see
    :class:`AdaptiveBatch`); workers pull batches from one shared task
    channel (self-scheduling, no round-robin imbalance) and push
    results back.  A collector thread on the submitting side decodes
    results as they arrive, so ``drain`` only has to wait for the
    outstanding count to hit zero and merge.

    The channels are ``multiprocessing`` queues (``transport="queue"``)
    or shared-memory rings (``transport="shm"``); with the ``binary``
    codec (always on for ``shm``) batches travel as struct-packed byte
    strings instead of pickled tuples.  Outstanding traces are retained
    as *tuple* wires in every combination, so requeueing and the
    corrupted-in-transit diagnosis below are transport-independent.

    Supervision: wires are retained in ``_incomplete`` until their
    results arrive, workers announce the sequence numbers of every batch
    they pick up (the ack doubles as a heartbeat), and ``drain``
    monitors process liveness.  A dead worker is respawned (bounded by
    ``max_retries``, exponential backoff) and its acked-but-unfinished
    traces requeued; the ``check_timeout`` watchdog requeues *all*
    outstanding traces once (covering a crash in the unobservable window
    between dequeue and ack, and hung workers) before declaring the
    backend unhealthy.  The collector drops duplicate results by
    sequence number, so replays cannot change the aggregate.
    """

    name = "process"

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        batch_size: Optional[int] = None,
        resilience: Optional[Resilience] = None,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        transport: Optional[str] = None,
        codec: Optional[str] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        cache_size: int = 0,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        span_context: Optional[SpanContext] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("process backend needs at least one worker")
        self._cache_size = cache_size
        #: pool-side tracer worker span events are absorbed into (the
        #: collector folds shipped events in as they arrive); workers
        #: get the ``(trace_id, span_id)`` wire pair to parent under
        self._tracer = tracer
        parent = span_context if span_context is not None else (
            tracer.root if tracer is not None else None
        )
        self._trace_ctx: Optional[Tuple[int, int]] = (
            parent.to_pair()
            if tracer is not None and parent is not None else None
        )
        self.engine_name = resolve_engine_name(engine)
        self.shadow_name = resolve_shadow_name(shadow)
        self._batch = AdaptiveBatch(batch_size)
        self._transport = resolve_transport_name(transport)
        if codec is None:
            codec = "binary" if self._transport == "shm" else "pickle"
        if codec not in CODEC_NAMES:
            raise ValueError(
                f"unknown wire codec {codec!r}; expected one of {CODEC_NAMES}"
            )
        if self._transport == "shm" and codec != "binary":
            raise ValueError("the shm transport requires the binary codec")
        self._codec = codec
        self._rules = rules
        self._metrics = metrics
        #: accumulated worker-registry deltas plus collector-side
        #: counters; written only by the collector thread (under the
        #: lock), read via :meth:`metrics_registries`
        self._remote_metrics: Optional[MetricsRegistry] = (
            MetricsRegistry(metrics.level) if metrics is not None else None
        )
        self._num_workers = num_workers
        self._resilience = resilience or DEFAULT_RESILIENCE
        self._faults = faults
        # fork (where available) shares the already-imported modules;
        # spawn works too since the worker fn, rules, and rings are
        # picklable (rings re-attach by segment name).
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._task_q = self._result_q = None
        self._task_ring = self._result_ring = None
        if self._transport == "shm":
            self._task_ring = ShmRing(ring_bytes, ctx=self._ctx)
            self._result_ring = ShmRing(ring_bytes, ctx=self._ctx)
        else:
            self._task_q = self._ctx.Queue()
            self._result_q = self._ctx.Queue()
        # Pre-start the resource tracker so every worker shares it;
        # arena attach registrations then dedup against the creator's
        # instead of accumulating in per-worker private trackers that
        # would unlink live segments on a worker crash.
        ensure_tracker()
        self._processes = [
            self._spawn_worker(i, faults) for i in range(num_workers)
        ]
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._dispatched = 0
        self._completed: Set[int] = set()
        self._pending: List[Tuple[int, tuple]] = []  # unflushed batch
        self._results: List[_SeqResult] = []
        self._errors: List[Tuple[int, str]] = []
        #: seq -> wire for everything not yet checked (requeue source)
        self._incomplete: Dict[int, tuple] = {}
        #: worker index -> seqs acked but not yet completed
        self._outstanding: Dict[int, Set[int]] = {}
        self._last_seen: Dict[int, float] = {}
        self._per_worker_counts: Dict[int, int] = {
            i: 0 for i in range(num_workers)
        }
        self._dead_handled: Set[int] = set()
        self._respawns = 0
        self._stopped = False
        self._final: Optional[Tuple[str, Any]] = None
        self.events: List[RecoveryEvent] = []
        self._collector = threading.Thread(
            target=self._collect, name="pmtest-collector", daemon=True
        )
        self._collector.start()

    @property
    def diagnostics(self) -> List[str]:
        return render_events(self.events)

    def metrics_registries(self) -> List[MetricsRegistry]:
        if self._remote_metrics is None:
            return []
        with self._lock:
            return [self._remote_metrics.snapshot()]

    def _spawn_worker(self, index: int, faults: Optional[FaultPlan]):
        level = self._metrics.level.value if self._metrics is not None else None
        shm = self._transport == "shm"
        process = self._ctx.Process(
            target=_process_worker,
            args=(index,
                  self._task_ring if shm else self._task_q,
                  self._result_ring if shm else self._result_q,
                  self._rules, faults, level, self._transport, self._codec,
                  self._cache_size, self.engine_name, self._trace_ctx,
                  self.shadow_name),
            name=f"pmtest-checker-{index}",
            daemon=True,
        )
        process.start()
        return process

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def batch_size(self) -> int:
        """Current traces-per-message (moves when adaptive)."""
        return self._batch.size

    @property
    def transport(self) -> str:
        return self._transport

    @property
    def codec(self) -> str:
        return self._codec

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def worker_trace_counts(self) -> List[int]:
        """Traces checked per worker (self-scheduled, so load-dependent)."""
        with self._lock:
            return [
                self._per_worker_counts.get(i, 0)
                for i in range(len(self._processes))
            ]

    def heartbeats(self) -> Dict[int, float]:
        """Monotonic timestamp of each worker's last message."""
        with self._lock:
            return dict(self._last_seen)

    def backlog(self) -> int:
        """Traces submitted but not yet completed by any worker."""
        with self._lock:
            return max(0, self._dispatched - len(self._completed))

    def submit(self, trace: Trace) -> None:
        metrics = self._metrics
        if metrics is None:
            self._submit_impl(trace)
        elif metrics.full:
            # Ingest for the process backend is the real cost the paper's
            # Fig. 10b calls tracking: wire-encode plus queue handoff.
            start = perf_counter_ns()
            self._submit_impl(trace)
            counter = metrics.counter
            counter("stage.trace_ingest.ns").inc(perf_counter_ns() - start)
            counter("stage.trace_ingest.count").inc(1)
        else:
            self._submit_impl(trace)
            metrics.counter("stage.trace_ingest.count").inc(1)

    def _submit_impl(self, trace: Trace) -> None:
        wire = encode_trace(trace)
        if self._faults is not None:
            rule = self._faults.fire(FaultPoint.WIRE_ENCODE)
            if rule is not None and rule.kind is FaultKind.CORRUPT:
                # The pickle wire is corrupted structurally; the binary
                # codec needs its framing intact to *encode*, so the
                # poison there is an opcode no decoder accepts.
                corrupt = (
                    corrupt_wire if self._codec == "pickle"
                    else corrupt_wire_framed
                )
                wire = corrupt(wire)
        with self._done:
            seq = self._dispatched
            self._dispatched += 1
            self._incomplete[seq] = wire
            self._pending.append((seq, wire))
            if len(self._pending) >= self._batch.size:
                batch, self._pending = self._pending, []
            else:
                return
        if self._faults is not None:
            rule = self._faults.fire(FaultPoint.QUEUE_PUT)
            if rule is not None:
                if rule.kind in (FaultKind.STALL, FaultKind.SLOW):
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.FAIL:
                    raise FaultError("injected task-queue failure")
        self._send_batch(batch)

    def _send_batch(self, batch: List[Tuple[int, tuple]],
                    timeout: Optional[float] = None) -> bool:
        """Encode and ship one batch on the task channel.

        Returns ``False`` only when an ``shm`` push gives up (timeout
        while requeueing against a wedged ring, or the ring closed
        under us); the queue transport always succeeds.
        """
        metrics = self._metrics
        nbytes = None
        if self._codec == "binary":
            payload = encode_task_message(batch)
            nbytes = len(payload)
        else:
            payload = batch
            if metrics is not None and metrics.full:
                # The pickle wire's size is only observable by paying
                # for a pickle, so it is metered at full level only.
                nbytes = len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        if self._transport == "shm":
            try:
                self._task_ring.push(payload, timeout=timeout)
            except (TimeoutError, RingClosed):
                return False
        else:
            self._task_q.put(payload)
        if metrics is not None:
            counter = metrics.counter
            counter("process.batches").inc(1)
            if nbytes is not None:
                counter("codec.task_bytes").inc(nbytes)
                counter("codec.task_traces").inc(len(batch))
            if metrics.full and self._transport == "shm":
                metrics.histogram("shm.task_ring_used").record(
                    self._task_ring.used_bytes()
                )
        self._observe_backpressure(payload, metrics)
        return True

    def _observe_backpressure(self, payload, metrics) -> None:
        """Feed the adaptive batcher a channel-depth estimate."""
        batcher = self._batch
        if batcher.fixed:
            return
        if self._transport == "shm":
            backlog = self._task_ring.used_bytes() // max(len(payload), 1)
        else:
            try:
                backlog = self._task_q.qsize()
            except NotImplementedError:  # pragma: no cover - macOS
                return
        batcher.observe(backlog, self._num_workers)
        if metrics is not None:
            metrics.gauge("process.batch_size").observe(batcher.size)

    # ------------------------------------------------------------------
    def drain_pairs(self) -> List[_SeqResult]:
        res = self._resilience
        # Flush the partial batch outside the lock: an shm push may have
        # to wait for ring space, and the workers freeing that space
        # post results through _collect, which needs the lock.
        with self._done:
            batch, self._pending = self._pending, []
        if batch:
            self._send_batch(batch)
        with self._done:
            last_progress = time.monotonic()
            last_done = len(self._completed)
            swept = False
            while True:
                if self._errors:
                    seq, error = min(self._errors, key=lambda pair: pair[0])
                    raise CheckingFailed(
                        f"checking trace (submit #{seq}) failed in worker "
                        f"process: {error}"
                    )
                if len(self._completed) >= self._dispatched:
                    return sorted(self._results, key=lambda pair: pair[0])
                self._done.wait(timeout=_POLL)
                now = time.monotonic()
                if len(self._completed) != last_done:
                    last_done = len(self._completed)
                    last_progress = now
                    swept = False
                self._supervise_locked()
                if (
                    res.check_timeout is not None
                    and now - last_progress > res.check_timeout
                ):
                    if not swept:
                        n = self._requeue_locked(
                            set(self._incomplete) - self._completed
                        )
                        self.events.append(
                            RecoveryEvent.watchdog_requeue(
                                res.check_timeout, n
                            )
                        )
                        swept = True
                        last_progress = now
                    else:
                        self._raise_unhealthy_locked(
                            f"watchdog timeout: no checking progress for "
                            f"{res.check_timeout:g}s after requeueing "
                            f"outstanding traces"
                        )

    def _supervise_locked(self) -> None:
        """Respawn dead worker processes and requeue outstanding work.

        A worker that dies right after dequeueing a batch may die before
        its ack reaches us (the queue feeder flushes asynchronously), so
        the acked set understates what the corpse held.  The only safe
        recovery is to requeue *every* trace not yet completed —
        duplicate results from traces that were merely queued or in
        flight elsewhere are dropped by sequence number, so
        over-requeueing cannot change the aggregate.
        """
        if self._stopped:
            return
        res = self._resilience
        for index, process in enumerate(self._processes):
            if index in self._dead_handled or process.is_alive():
                continue
            self._dead_handled.add(index)
            exitcode = process.exitcode
            self._outstanding.pop(index, None)
            if self._respawns >= res.max_retries:
                self._raise_unhealthy_locked(
                    f"checking worker process {index} died "
                    f"(exit code {exitcode}) and the retry budget "
                    f"({res.max_retries}) is exhausted"
                )
            self._respawns += 1
            # Backoff on the condition so the collector keeps running.
            self._done.wait(
                timeout=res.backoff_base * (2 ** (self._respawns - 1))
            )
            new_index = len(self._processes)
            # Respawned workers are never re-injected (faults=None).
            self._processes.append(self._spawn_worker(new_index, None))
            self._per_worker_counts.setdefault(new_index, 0)
            requeued = self._requeue_locked(
                set(self._incomplete) - self._completed
            )
            self.events.append(
                RecoveryEvent.respawn_process(
                    index,
                    new_index,
                    exitcode,
                    requeued,
                    self._respawns,
                    res.max_retries,
                )
            )

    def _requeue_locked(self, seqs: Set[int]) -> int:
        # Requeue sends use a bounded timeout: if every worker is dead
        # and the ring is full, blocking forever under the lock would
        # wedge the watchdog that is trying to recover.  A partial
        # requeue is fine — the watchdog escalates to unhealthy on its
        # next firing if progress still stalls.
        batch: List[Tuple[int, tuple]] = []
        n = 0
        for seq in sorted(seqs):
            wire = self._incomplete.get(seq)
            if wire is None:
                continue
            batch.append((seq, wire))
            if len(batch) >= self._batch.size:
                if not self._send_batch(batch, timeout=1.0):
                    return n
                n += len(batch)
                batch = []
        if batch:
            if not self._send_batch(batch, timeout=1.0):
                return n
            n += len(batch)
        return n

    def _raise_unhealthy_locked(self, message: str) -> None:
        unchecked: List[Tuple[int, Trace]] = []
        for seq in sorted(set(self._incomplete) - self._completed):
            try:
                unchecked.append((seq, decode_trace(self._incomplete[seq])))
            except TraceDecodeError as exc:
                raise CheckingFailed(
                    f"trace (submit #{seq}) corrupted in transit: {exc}"
                ) from exc
        raise BackendUnhealthy(
            message,
            pairs=tuple(sorted(self._results, key=lambda pair: pair[0])),
            unchecked=tuple(unchecked),
            events=tuple(self.events),
        )

    # ------------------------------------------------------------------
    def drain(self) -> TestResult:
        result = _merge_ordered(self.drain_pairs())
        result.diagnostics.extend(self.diagnostics)
        return result

    def close(self) -> TestResult:
        if self._final is not None:
            kind, value = self._final
            if kind == "err":
                raise value
            return value
        try:
            result = self.drain()
        except BaseException as exc:
            self._final = ("err", exc)
            raise
        else:
            self._final = ("ok", result)
            return result
        finally:
            # Stop workers even when drain() surfaces a checking error.
            self.stop()

    def stop(self) -> None:
        """Stop all workers without draining.  Idempotent, never raises,
        and safe when workers are already dead or hung (they are
        terminated rather than joined forever)."""
        if self._stopped:
            return
        self._stopped = True
        if self._transport == "shm":
            # Closing the task ring is the stop signal: workers drain
            # what is left, hit RingClosed, and exit.
            self._task_ring.close()
            for process in self._processes:
                process.join(timeout=1.0)
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=1.0)
            # Workers are gone; closing the result ring lets the
            # collector drain stragglers and return.
            self._result_ring.close()
            self._collector.join(timeout=2.0)
            self._task_ring.release()
            self._result_ring.release()
            return
        alive = [p for p in self._processes if p.is_alive()]
        for _ in alive:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        for process in alive:
            process.join(timeout=1.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
        try:
            self._result_q.put(None)  # stop the collector
        except (OSError, ValueError):
            pass
        self._collector.join(timeout=2.0)
        for q in (self._task_q, self._result_q):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass

    def _collect(self) -> None:
        while True:
            raw = None
            if self._transport == "shm":
                try:
                    raw = self._result_ring.pop(timeout=0.5)
                except TimeoutError:
                    if self._stopped:
                        return
                    continue
                except RingClosed:
                    return
                except Exception:  # pragma: no cover - teardown races
                    if self._stopped:
                        return
                    raise
            else:
                message = self._result_q.get()
                if message is None:
                    return
                if isinstance(message, bytes):
                    raw = message  # binary codec over the queue transport
            if raw is not None:
                try:
                    message = decode_message(raw)
                except TraceDecodeError:
                    with self._done:
                        if self._remote_metrics is not None:
                            self._remote_metrics.counter(
                                "process.result_decode_errors"
                            ).inc(1)
                    continue
                if message[0] == "stop":  # pragma: no cover - defensive
                    return
            # Tuple result messages optionally carry a worker-registry
            # delta (4th element) and shipped span events (5th); acks
            # stay 3-tuples.  Binary messages decode to
            # ("res", index, items, registry|None, spans|None).
            kind, index, payload = message[0], message[1], message[2]
            if (
                self._tracer is not None
                and len(message) > 4
                and message[4]
            ):
                try:
                    self._tracer.absorb_events(message[4])
                except TracingError:  # tracer flushed mid-shutdown
                    pass
            with self._done:
                self._last_seen[index] = time.monotonic()
                remote = self._remote_metrics
                if remote is not None and raw is not None:
                    remote.counter("codec.result_bytes").inc(len(raw))
                if kind == "ack":
                    if remote is not None:
                        remote.counter("process.acks").inc(1)
                    self._outstanding.setdefault(index, set()).update(payload)
                    self._done.notify_all()
                    continue
                if remote is not None and len(message) > 3:
                    delta = message[3]
                    if delta is None:
                        pass
                    elif isinstance(delta, MetricsRegistry):
                        remote.merge(delta)
                    else:
                        try:
                            remote.merge(decode_registry(delta))
                        except TraceDecodeError:
                            remote.counter(
                                "process.registry_decode_errors"
                            ).inc(1)
                outstanding = self._outstanding.get(index)
                fresh = 0
                for seq, wire, error in payload:
                    if outstanding is not None:
                        outstanding.discard(seq)
                    if seq in self._completed:
                        continue  # duplicate from a requeue replay
                    self._completed.add(seq)
                    self._incomplete.pop(seq, None)
                    if error is not None:
                        self._errors.append((seq, error))
                    elif isinstance(wire, TestResult):
                        # Binary messages decode straight to results.
                        self._results.append((seq, wire))
                    else:
                        try:
                            self._results.append((seq, decode_result(wire)))
                        except TraceDecodeError as exc:
                            self._errors.append(
                                (seq, f"result decode failed: {exc}")
                            )
                    fresh += 1
                self._per_worker_counts[index] = (
                    self._per_worker_counts.get(index, 0) + fresh
                )
                self._done.notify_all()
