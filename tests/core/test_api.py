"""Tests for the session facade and the C-style interface (Table 2)."""

import threading

import pytest

from repro.core import capi
from repro.core.api import PMTestSession
from repro.core.checkers import (
    assert_ordered_chain,
    assert_persisted,
    assert_persisted_vars,
    tx_checked,
)
from repro.core.reports import ReportCode


class TestSessionLifecycle:
    def test_tracking_disabled_until_start(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.write(0, 8)
        assert s.pending_events == 0
        s.start()
        s.write(0, 8)
        assert s.pending_events == 1
        s.end()
        s.write(0, 8)
        assert s.pending_events == 1
        s.exit()

    def test_region_context_manager(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        with s.region():
            s.write(0, 8)
        s.write(8, 8)
        assert s.pending_events == 1
        s.exit()

    def test_send_trace_splits_traces(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.send_trace()
        s.write(8, 8)
        s.send_trace()
        assert s.traces_sent == 2
        s.exit()

    def test_empty_trace_not_sent(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.send_trace()
        assert s.traces_sent == 0
        s.exit()

    def test_traces_have_independent_shadows(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.send_trace()
        # In a fresh trace the earlier write is invisible: isPersist passes.
        s.is_persist(0, 8)
        result = s.exit()
        assert result.clean

    def test_exit_flushes_pending_trace(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.is_persist(0, 8)
        result = s.exit()
        assert result.count(ReportCode.NOT_PERSISTED) == 1

    def test_context_manager_protocol(self):
        with PMTestSession(workers=0) as s:
            s.write(0, 8)
            assert s.pending_events == 1

    def test_lazy_thread_init(self):
        s = PMTestSession(workers=0)
        s.start()  # no explicit thread_init
        s.write(0, 8)
        assert s.pending_events == 1
        s.exit()


class TestVarRegistry:
    def test_reg_get_unreg(self):
        s = PMTestSession(workers=0)
        s.reg_var("head", 0x40, 8)
        assert s.get_var("head") == (0x40, 8)
        s.unreg_var("head")
        with pytest.raises(KeyError):
            s.get_var("head")
        s.exit()

    def test_is_persist_var(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.reg_var("obj", 0, 8)
        s.write(0, 8)
        s.is_persist_var("obj")
        result = s.exit()
        assert result.count(ReportCode.NOT_PERSISTED) == 1


class TestMultithreadedTracking:
    def test_threads_have_independent_traces(self):
        s = PMTestSession(workers=0)
        errors = []

        def worker(base: int) -> None:
            try:
                s.thread_init(f"t{base}")
                s.start()
                for i in range(10):
                    s.write(base + i * 8, 8)
                s.send_trace()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k * 4096,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert s.traces_sent == 4
        result = s.exit()
        assert result.traces_checked == 4
        assert result.events_checked == 40


class TestHighLevelCheckers:
    def test_tx_checked_context_manager(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        with tx_checked(s):
            s.tx_begin()
            s.write(0, 8)  # no TX_ADD
            s.tx_end()
        result = s.exit()
        assert result.count(ReportCode.MISSING_LOG) == 1

    def test_assert_persisted(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.write(64, 8)
        assert_persisted(s, [(0, 8), (64, 8)])
        result = s.exit()
        assert result.count(ReportCode.NOT_PERSISTED) == 2

    def test_assert_persisted_vars(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.reg_var("a", 0, 8)
        s.write(0, 8)
        s.clwb(0, 8)
        s.sfence()
        assert_persisted_vars(s, ["a"])
        assert s.exit().clean

    def test_assert_ordered_chain(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.clwb(0, 8)
        s.sfence()
        s.write(64, 8)
        s.clwb(64, 8)
        s.sfence()
        s.write(128, 8)
        assert_ordered_chain(s, [(0, 8), (64, 8), (128, 8)])
        result = s.exit()
        assert not result.failures


class TestCAPI:
    def test_paper_style_usage(self):
        capi.PMTest_INIT(workers=0)
        try:
            capi.PMTest_START()
            capi.current_session().write(0x10, 64)
            capi.current_session().clwb(0x10, 64)
            capi.current_session().sfence()
            capi.current_session().write(0x50, 64)
            capi.isOrderedBefore(0x10, 64, 0x50, 64)
            capi.isPersist(0x50, 64)
            capi.PMTest_END()
            capi.PMTest_SEND_TRACE()
            result = capi.PMTest_GET_RESULT()
            assert result.count(ReportCode.NOT_PERSISTED) == 1
        finally:
            capi.PMTest_EXIT()

    def test_reg_var_roundtrip(self):
        capi.PMTest_INIT(workers=0)
        try:
            capi.PMTest_REG_VAR("x", 0, 16)
            assert capi.PMTest_GET_VAR("x") == (0, 16)
            capi.PMTest_UNREG_VAR("x")
        finally:
            capi.PMTest_EXIT()

    def test_double_init_rejected(self):
        capi.PMTest_INIT(workers=0)
        try:
            with pytest.raises(RuntimeError):
                capi.PMTest_INIT(workers=0)
        finally:
            capi.PMTest_EXIT()

    def test_uninitialized_use_rejected(self):
        with pytest.raises(RuntimeError):
            capi.current_session()


class TestSiteCapture:
    def test_sites_recorded_when_enabled(self):
        s = PMTestSession(workers=0, capture_sites=True)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.is_persist(0, 8)
        result = s.exit()
        [report] = result.failures
        assert report.site is not None
        assert report.site.file.endswith("test_api.py")
        assert report.related_site is not None

    def test_sites_omitted_by_default(self):
        s = PMTestSession(workers=0)
        s.thread_init()
        s.start()
        s.write(0, 8)
        s.is_persist(0, 8)
        result = s.exit()
        [report] = result.failures
        assert report.site is None
