#!/usr/bin/env python3
"""Test a kernel module: PMFS traces cross the kernel FIFO (Figure 9b).

The filesystem runs "in the kernel": its traces are pushed through a
bounded kernel FIFO to the user-space checking workers.  We first run a
Filebench-style load against the correct filesystem (clean), then
re-enable the historical journal.c bug — ``pmfs_commit_logentry``
flushing the just-flushed log entry again when committing the whole
transaction (the paper's Bug 1) — and watch the WARN arrive through the
same pipeline.

Run:  python examples/pmfs_kernel_module.py
"""

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmfs import PMFS, KernelBridge
from repro.workloads import drive_fs, filebench_ops


def run(faults) -> None:
    bridge = KernelBridge(num_workers=2, fifo_capacity=64)
    session = PMTestSession(workers=0, sink=bridge, capture_sites=True)
    session.thread_init()
    session.start()
    runtime = PMRuntime(
        machine=PMMachine(8 << 20), session=session, capture_sites=True
    )
    fs = PMFS(runtime, journal_capacity=32 * 1024, faults=faults)
    session.send_trace()

    drive_fs(fs, filebench_ops(120, seed=7), session=session, trace_every=5)
    result = session.exit()

    label = ", ".join(faults) if faults else "clean PMFS"
    print(f"--- {label}: {result.summary()}")
    print(f"    (FIFO backpressure events: {bridge.fifo.producer_waits})")
    seen = set()
    for report in result.reports[:8]:
        line = f"    {report}"
        if line not in seen:
            seen.add(line)
            print(line)
    print()


if __name__ == "__main__":
    print(__doc__)
    run(())
    run(("commit-dup-flush",))  # journal.c:632, the paper's Bug 1
    run(("fsync-extra-flush",))  # files.c:232, known bug
