"""Lifecycle tests for the shared-memory column arena (DESIGN.md §13).

The arena is the zero-copy shard plane's foundation, so its lifecycle
invariants get pinned here directly, separate from the end-to-end
sharding equivalence suite:

* build → attach → trace views are byte-identical to the source columns;
* descriptors resolve through the per-process attach cache;
* release is idempotent, and only the building process unlinks;
* the segment survives an attacher dying mid-hold (crash semantics) and
  is verifiably gone — no leak — once the creator releases it.
"""

import multiprocessing
import os
import signal

import pytest

from repro.core.column_arena import (
    ArenaError,
    ArenaOverflow,
    ArenaShardRef,
    ColumnArena,
    attach,
    build_arena,
    ensure_tracker,
    is_descriptor,
    resolve_descriptor,
)
from repro.core.columns import ColumnarTrace
from repro.core.events import Event, Op, SourceSite, Trace


def small_trace(trace_id: int = 7, epochs: int = 12) -> Trace:
    trace = Trace(trace_id)
    for e in range(epochs):
        base = 0x2000 + e * 0x40
        site = SourceSite("arena.c", e, "fill")
        trace.append(Event(Op.WRITE, base, 16, site=site, seq=3 * e))
        trace.append(Event(Op.CLWB, base, 16, seq=3 * e + 1))
        trace.append(Event(Op.SFENCE, seq=3 * e + 2))
    return trace


def columns_of(cols: ColumnarTrace) -> tuple:
    return (
        cols.trace_id,
        cols.thread_name,
        bytes(cols.ops),
        bytes(cols.flags),
        list(cols.addrs),
        list(cols.sizes),
        list(cols.addr2s),
        list(cols.size2s),
        list(cols.site_idx),
        list(cols.site_table),
        list(cols.seqs) if cols.seqs is not None else None,
    )


class TestBuildAndViews:
    def test_arena_trace_is_byte_identical_to_source(self):
        cols = ColumnarTrace.from_trace(small_trace())
        arena = build_arena(cols)
        try:
            view = arena.trace()
            assert columns_of(view) == columns_of(cols)
            assert view.to_trace().events == small_trace().events
            del view  # unpin before release so the mapping closes
        finally:
            arena.release()

    def test_shard_view_offsets(self):
        cols = ColumnarTrace.from_trace(small_trace())
        arena = build_arena(cols)
        try:
            view = arena.trace(end=9, check_from=3, is_shard=True)
            assert len(view) == 9
            assert view.check_from == 3
            assert view.is_shard
            assert bytes(view.ops) == bytes(cols.ops[:9])
            del view
        finally:
            arena.release()

    def test_out_of_range_view_rejected(self):
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        try:
            with pytest.raises(ArenaError, match="outside"):
                arena.trace(end=10_000)
            with pytest.raises(ArenaError, match="outside"):
                arena.trace(end=4, check_from=5)
        finally:
            arena.release()

    def test_no_seqs_column(self):
        cols = ColumnarTrace.from_trace(small_trace())
        stripped = ColumnarTrace(
            cols.trace_id, cols.thread_name, cols.ops, cols.flags,
            cols.addrs, cols.sizes, cols.addr2s, cols.size2s,
            cols.site_idx, cols.site_table, None,
        )
        arena = build_arena(stripped)
        try:
            assert arena.trace().seqs is None
        finally:
            arena.release()

    def test_overflow_column_refused(self):
        cols = ColumnarTrace.from_trace(small_trace())
        addrs = list(cols.addrs)
        addrs[0] = 1 << 80  # beyond i64: list-fallback column
        bad = ColumnarTrace(
            cols.trace_id, cols.thread_name, cols.ops, cols.flags,
            addrs, cols.sizes, cols.addr2s, cols.size2s,
            cols.site_idx, cols.site_table, cols.seqs,
        )
        with pytest.raises(ArenaOverflow, match="64-bit"):
            ColumnArena(bad)


class TestDescriptors:
    def test_descriptor_roundtrip_via_attach_cache(self):
        cols = ColumnarTrace.from_trace(small_trace())
        arena = build_arena(cols)
        try:
            ref = ArenaShardRef(arena, len(cols), 6)
            wire = ref.descriptor()
            assert is_descriptor(wire)
            view = resolve_descriptor(wire)
            assert view.check_from == 6
            assert columns_of(view)[2:] == columns_of(cols)[2:]
            # creator-side resolution hits the registered arena, not a
            # second mapping
            assert attach(arena.name) is arena
            del view
        finally:
            arena.release()

    def test_descriptor_trace_id_mismatch(self):
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        try:
            wire = ("PMCA", arena.name, 999, len(arena), 0)
            with pytest.raises(ArenaError, match="descriptor wants 999"):
                resolve_descriptor(wire)
        finally:
            arena.release()

    def test_gone_arena_is_typed_error(self):
        with pytest.raises(ArenaError, match="is gone"):
            attach("pmca-no-such-segment")

    def test_malformed_descriptor(self):
        assert not is_descriptor(("PMCA", "x"))
        assert not is_descriptor(b"PMCA")
        with pytest.raises(ArenaError, match="must be a string"):
            resolve_descriptor(("PMCA", 5, 1, 1, 0))


class TestLifecycle:
    def test_release_is_idempotent_and_views_refused_after(self):
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        arena.release()
        arena.release()  # second call is a no-op
        with pytest.raises(ArenaError, match="released"):
            arena.trace()

    def test_release_unlinks_no_leak(self):
        """After the creator releases, the name is unlinked: a fresh
        attach fails, proving nothing is left for the resource tracker
        to reap."""
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        name = arena.name
        arena.release()
        with pytest.raises(ArenaError, match="is gone"):
            attach(name)

    def test_release_safe_with_outstanding_views(self):
        """Unlink-while-mapped is the normal shutdown order: readers
        holding trace views keep the pages alive past release."""
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        view = arena.trace()
        arena.release()
        # the view still reads the (anonymous, unlinked) pages
        assert bytes(view.ops)
        with pytest.raises(ArenaError, match="is gone"):
            attach(arena.name)
        # once the last view dies, a repeat close detaches cleanly
        del view
        arena.close()

    def test_attach_survives_creator_exit_without_release(self):
        """Crash semantics: a creator that exits without releasing (a
        killed submitter) leaves the segment attachable; the last
        holder unlinks it explicitly."""
        ensure_tracker()
        ctx = multiprocessing.get_context("fork")
        recv, send = ctx.Pipe(duplex=False)
        cols = ColumnarTrace.from_trace(small_trace())

        def build_and_die(conn):
            arena = ColumnArena(cols)
            conn.send(arena.name)  # synchronous: lands before the kill
            os.kill(os.getpid(), signal.SIGKILL)  # no release, no atexit

        child = ctx.Process(target=build_and_die, args=(send,))
        child.start()
        assert recv.poll(10)
        name = recv.recv()
        child.join(timeout=10)
        attached = attach(name)
        try:
            assert columns_of(attached.trace()) == columns_of(cols)
        finally:
            # attach-side release never unlinks (pid guard) …
            attached.release()
            # … so reap the orphan explicitly for test hygiene.
            orphan = ColumnArena(name=name)
            orphan._owner_pid = os.getpid()
            orphan.release()
        with pytest.raises(ArenaError, match="is gone"):
            attach(name)

    def test_attacher_death_leaves_segment_alive(self):
        """A worker killed while holding an attachment must not take
        the segment down with it — siblings still resolve descriptors
        against it."""
        ensure_tracker()
        arena = build_arena(ColumnarTrace.from_trace(small_trace()))
        ctx = multiprocessing.get_context("fork")

        def attach_and_die(name):
            attach(name)
            os.kill(os.getpid(), signal.SIGKILL)

        try:
            child = ctx.Process(target=attach_and_die, args=(arena.name,))
            child.start()
            child.join(timeout=10)
            assert child.exitcode == -signal.SIGKILL
            # a fresh process-independent attach still succeeds
            fresh = ColumnArena(name=arena.name)
            try:
                assert fresh.n_events == arena.n_events
            finally:
                fresh.release()
        finally:
            arena.release()
