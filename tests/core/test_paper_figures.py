"""Literal replays of the paper's worked examples (Figures 1, 3, 4, 7)."""

from repro.core.api import PMTestSession
from repro.core.reports import ReportCode
from repro.core.rules import HOPSRules


def x86_session() -> PMTestSession:
    s = PMTestSession(workers=0)
    s.thread_init()
    s.start()
    return s


class TestFigure7:
    """The trace of Figure 7 with its expected verdicts."""

    def test_full_trace(self):
        s = x86_session()
        s.write(0x10, 64)
        s.clwb(0x10, 64)
        s.sfence()
        s.write(0x50, 64)
        s.is_persist(0x50, 64)  # line 5: FAIL
        s.is_ordered_before(0x10, 64, 0x50, 64)  # line 6: pass
        result = s.exit()
        assert [r.code for r in result.failures] == [ReportCode.NOT_PERSISTED]
        assert not result.warnings


class TestFigure4:
    """write A; clwb A; write B; sfence -- overlapping persist intervals."""

    def test_a_may_not_persist_before_b(self):
        s = x86_session()
        s.sfence()
        s.write(0xA0, 8)
        s.clwb(0xA0, 8)
        s.write(0xB0, 8)
        s.sfence()
        s.is_ordered_before(0xA0, 8, 0xB0, 8)
        s.is_persist(0xB0, 8)
        result = s.exit()
        assert [r.code for r in result.failures] == [
            ReportCode.NOT_ORDERED,
            ReportCode.NOT_PERSISTED,
        ]


class TestFigure3:
    """The same checkers work across persistency models."""

    A, B = 0x100, 0x200

    def test_x86_variant_passes(self):
        s = x86_session()
        s.write(self.A, 8)
        s.clwb(self.A, 8)
        s.sfence()
        s.write(self.B, 8)
        s.clwb(self.B, 8)
        s.sfence()
        s.is_ordered_before(self.A, 8, self.B, 8)
        s.is_persist(self.A, 8)
        s.is_persist(self.B, 8)
        assert s.exit().clean

    def test_hops_variant_passes(self):
        s = PMTestSession(rules=HOPSRules(), workers=0)
        s.thread_init()
        s.start()
        s.write(self.A, 8)
        s.ofence()
        s.write(self.B, 8)
        s.dfence()
        s.is_ordered_before(self.A, 8, self.B, 8)
        s.is_persist(self.A, 8)
        s.is_persist(self.B, 8)
        assert s.exit().clean


class TestFigure1a:
    """The undo-logging array update with missing persist_barriers.

    The buggy version misses the barrier between creating the backup and
    setting it valid, and between the in-place update and invalidating
    the backup; PMTest's ordering checkers expose both.
    """

    BACKUP_VAL, BACKUP_VALID, ARRAY = 0x00, 0x08, 0x40

    def _array_update(self, s: PMTestSession, with_barriers: bool) -> None:
        s.write(self.BACKUP_VAL, 8)  # backup.val = array[index]
        if with_barriers:  # the first missing persist_barrier
            s.clwb(self.BACKUP_VAL, 8)
            s.sfence()
        s.write(self.BACKUP_VALID, 8)  # backup.valid = true
        if with_barriers:
            s.clwb(self.BACKUP_VALID, 8)
        else:
            s.clwb(self.BACKUP_VAL, 16)
        s.sfence()  # persist_barrier() (line 4)
        # Requirement: the backup value persists before the valid flag.
        s.is_ordered_before(self.BACKUP_VAL, 8, self.BACKUP_VALID, 8)
        s.write(self.ARRAY, 8)  # array[index] = new_val
        if with_barriers:  # the second missing persist_barrier
            s.clwb(self.ARRAY, 8)
            s.sfence()
        s.write(self.BACKUP_VALID, 8)  # backup.valid = false
        if with_barriers:
            s.clwb(self.BACKUP_VALID, 8)
        else:
            s.clwb(self.ARRAY, 8)
            s.clwb(self.BACKUP_VALID, 8)
        s.sfence()  # persist_barrier() (line 7)
        # Requirement: the update persists before the backup invalidation.
        s.is_ordered_before(self.ARRAY, 8, self.BACKUP_VALID, 8)

    def test_buggy_version_detected(self):
        s = x86_session()
        self._array_update(s, with_barriers=False)
        result = s.exit()
        assert result.count(ReportCode.NOT_ORDERED) == 2

    def test_fixed_version_passes(self):
        s = x86_session()
        self._array_update(s, with_barriers=True)
        result = s.exit()
        assert not result.failures
