"""Ablation: x86 rules over a naive per-byte shadow memory.

The paper credits PMTest's speed partly to the interval-tree shadow
memory (coarse-grained tracking, Section 4.4).  This variant implements
the identical x86 checking semantics with the obvious alternative — one
shadow cell per byte in a dict — so the ablation benchmark can quantify
what the interval map buys.  Semantically equivalent (the unit tests
cross-check it against :class:`~repro.core.rules.x86.X86Rules`), just
asymptotically worse: every operation costs O(bytes touched).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.events import Event, FLUSH_OPS, Op
from repro.core.intervals import Interval
from repro.core.reports import Level, Report, ReportCode
from repro.core.rules.base import RangeInterval
from repro.core.rules.x86 import X86Rules
from repro.core.shadow import SegmentState, ShadowMemory


class NaiveShadowMemory(ShadowMemory):
    """Per-byte shadow state (the structure PMTest avoids)."""

    __slots__ = ("bytes_map",)

    def __init__(self) -> None:
        super().__init__()
        self.bytes_map: Dict[int, SegmentState] = {}


class NaiveX86Rules(X86Rules):
    """x86 semantics, one dict entry per byte."""

    name = "x86-naive"

    def make_shadow(self) -> NaiveShadowMemory:
        return NaiveShadowMemory()

    def apply_op(self, shadow: NaiveShadowMemory, event: Event) -> List[Report]:
        op = event.op
        if op is Op.WRITE:
            state = SegmentState(shadow.timestamp, None, event.site)
            for addr in range(event.addr, event.end):
                shadow.bytes_map[addr] = state
            return []
        if op is Op.WRITE_NT:
            state = SegmentState(
                shadow.timestamp, shadow.timestamp, event.site, event.site
            )
            for addr in range(event.addr, event.end):
                shadow.bytes_map[addr] = state
            return []
        if op in FLUSH_OPS:
            return self._naive_flush(shadow, event)
        if op is Op.SFENCE:
            shadow.advance()
            return []
        self.reject(event)
        return []  # pragma: no cover

    def _naive_flush(self, shadow: NaiveShadowMemory, event: Event) -> List[Report]:
        reports: List[Report] = []
        now = shadow.timestamp
        warned_gap = warned_dup = warned_unneeded = False
        for addr in range(event.addr, event.end):
            state = shadow.bytes_map.get(addr)
            if state is None:
                if not warned_gap:
                    warned_gap = True
                    reports.append(self._warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        "writeback of unmodified data", event))
                continue
            flush_iv = shadow.x86_flush_interval(state)
            if flush_iv is not None and not flush_iv.closed:
                if not warned_dup:
                    warned_dup = True
                    reports.append(self._warn(
                        ReportCode.DUP_FLUSH,
                        "writeback already in flight", event))
                continue  # keep the original flush epoch
            if flush_iv is not None:
                # Already persistent: the redundant writeback must not
                # reopen the closed persist interval.
                if not warned_unneeded:
                    warned_unneeded = True
                    reports.append(self._warn(
                        ReportCode.UNNECESSARY_FLUSH,
                        "data already persistent", event))
                continue
            shadow.bytes_map[addr] = state.with_flush(now, event.site)
        return reports

    def persist_intervals(
        self, shadow: NaiveShadowMemory, lo: int, hi: int
    ) -> List[RangeInterval]:
        """Group adjacent bytes with identical state into ranges."""
        out: List[RangeInterval] = []
        run_start = None
        run_state = None
        for addr in range(lo, hi + 1):
            state = shadow.bytes_map.get(addr) if addr < hi else None
            if state != run_state or addr == hi:
                if run_state is not None:
                    out.append(
                        (run_start, addr, shadow.x86_interval(run_state),
                         run_state)
                    )
                run_start, run_state = addr, state
        return out

    @staticmethod
    def _warn(code: ReportCode, message: str, event: Event) -> Report:
        return Report(level=Level.WARN, code=code, message=message,
                      site=event.site, seq=event.seq)
