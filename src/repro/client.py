"""Public client entry point for the checking daemon.

``from repro.client import CheckingClient`` is the supported import
path for instrumented programs; the implementation lives in
:mod:`repro.daemon.client`.
"""

from repro.daemon.client import (  # noqa: F401
    CheckingClient,
    DaemonError,
    DaemonOverloaded,
    DeadlineExceeded,
    parse_address,
)

__all__ = [
    "CheckingClient",
    "DaemonError",
    "DaemonOverloaded",
    "DeadlineExceeded",
    "parse_address",
]
