"""The PM machine: volatile cache domain over a durable memory image.

The machine executes the PM operations of a program under test and keeps
exact persistence state for every store, at the granularity real hardware
gives us — the cache line:

* a **store** updates the volatile view immediately and becomes a set of
  per-line *pending fragments* (a store straddling a line boundary can
  persist partially);
* a **flush** (clwb et al.) marks every fragment currently in the covered
  lines as having a write-back in flight;
* an **sfence** makes every in-flight write-back durable: those fragments
  are applied to the durable baseline image and retired.

Anything still pending *may* have persisted anyway (cache eviction writes
lines back opportunistically), which is exactly the nondeterminism that
makes crash-consistency bugs: within one line, persisted content is always
the merge of a *prefix* of that line's fragments (the cache holds one
merged copy of the line, so a later fragment can never persist without an
earlier, non-overwritten one), while across lines anything goes.
:mod:`repro.pmem.crash` enumerates these states.

HOPS mode replaces flush/sfence with ``ofence`` (epoch boundary: earlier
epochs persist before later ones) and ``dfence`` (drain everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.pmem.layout import split_by_line
from repro.pmem.memory import PMImage

#: Machine op-log record: ``(kind, addr, payload_or_size)``.
OpRecord = Tuple[str, int, object]


@dataclass(slots=True)
class StoreFragment:
    """The part of one store that falls within a single cache line."""

    seq: int
    addr: int
    data: bytes
    flush_pending: bool = False
    epoch: int = 0  # HOPS mode: the epoch the store executed in


@dataclass(slots=True)
class MachineStats:
    """Operation counters (used by the benchmark harness)."""

    stores: int = 0
    loads: int = 0
    flushes: int = 0
    fences: int = 0
    bytes_stored: int = 0


class PMMachine:
    """Simulated PM system executing one program's PM operations."""

    def __init__(
        self, size: int, model: str = "x86", record_ops: bool = False
    ) -> None:
        if model not in ("x86", "hops"):
            raise ValueError(f"unknown machine model {model!r}")
        self.model = model
        #: what loads observe: every store applied immediately
        self.volatile = PMImage(size)
        #: what has certainly persisted
        self.durable = PMImage(size)
        #: cache line index -> pending fragments, oldest first
        self.pending: Dict[int, List[StoreFragment]] = {}
        self.stats = MachineStats()
        self.epoch = 0  # HOPS epoch counter
        self._seq = 0
        #: linear op log for replay-based tools (Yat); None unless enabled
        self.oplog: Optional[List[OpRecord]] = [] if record_ops else None

    def __len__(self) -> int:
        return len(self.volatile)

    @classmethod
    def from_image(
        cls, image: PMImage, model: str = "x86", record_ops: bool = False
    ) -> "PMMachine":
        """Boot a machine from a crash image (post-restart state).

        After a restart nothing is in the cache, so the volatile and
        durable views both equal the image.
        """
        machine = cls(len(image), model=model, record_ops=record_ops)
        machine.volatile = image.snapshot()
        machine.durable = image.snapshot()
        return machine

    # ------------------------------------------------------------------
    # Loads and stores
    # ------------------------------------------------------------------
    def load(self, addr: int, size: int) -> bytes:
        self.stats.loads += 1
        return self.volatile.read(addr, size)

    def store(self, addr: int, payload: bytes, nt: bool = False) -> None:
        """Execute a store (``nt=True`` for a non-temporal store).

        A non-temporal store bypasses the cache: its write-back is
        considered in flight immediately, so the next fence persists it.
        """
        self.volatile.write(addr, payload)
        self.stats.stores += 1
        self.stats.bytes_stored += len(payload)
        offset = 0
        for line, frag_addr, frag_size in split_by_line(addr, len(payload)):
            fragment = StoreFragment(
                seq=self._seq,
                addr=frag_addr,
                data=payload[offset : offset + frag_size],
                flush_pending=nt,
                epoch=self.epoch,
            )
            offset += frag_size
            self.pending.setdefault(line, []).append(fragment)
        self._seq += 1
        if self.oplog is not None:
            self.oplog.append(("store_nt" if nt else "store", addr, payload))

    # ------------------------------------------------------------------
    # x86 persistence operations
    # ------------------------------------------------------------------
    def flush(self, addr: int, size: int) -> None:
        """clwb/clflushopt/clflush: start writing back the covered lines."""
        self._require("x86")
        self.stats.flushes += 1
        for line, _, _ in split_by_line(addr, size):
            for fragment in self.pending.get(line, ()):
                fragment.flush_pending = True
        if self.oplog is not None:
            self.oplog.append(("flush", addr, size))

    def sfence(self) -> None:
        """Complete all in-flight write-backs (they become durable)."""
        self._require("x86")
        self.stats.fences += 1
        self._retire(lambda fragment: fragment.flush_pending)
        if self.oplog is not None:
            self.oplog.append(("sfence", 0, None))

    # ------------------------------------------------------------------
    # HOPS persistence operations
    # ------------------------------------------------------------------
    def ofence(self) -> None:
        """Ordering fence: begin a new persist epoch."""
        self._require("hops")
        self.stats.fences += 1
        self.epoch += 1
        if self.oplog is not None:
            self.oplog.append(("ofence", 0, None))

    def dfence(self) -> None:
        """Durability fence: drain every pending store to PM."""
        self._require("hops")
        self.stats.fences += 1
        self.epoch += 1
        self._retire(lambda fragment: True)
        if self.oplog is not None:
            self.oplog.append(("dfence", 0, None))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def begin_oplog(self) -> PMImage:
        """Start (or restart) op-log recording at a quiescent checkpoint.

        Returns a snapshot of the durable image at the checkpoint, which
        replay-based tools (Yat) use as their base state — setup work
        like pool formatting would otherwise explode their crash-state
        spaces.
        """
        if not self.quiescent:
            raise RuntimeError(
                "op-log recording must start at a quiescent point "
                "(no pending stores)"
            )
        self.oplog = []
        return self.durable.snapshot()

    def pending_fragments(self) -> int:
        """Total stores (fragments) whose durability is not guaranteed."""
        return sum(len(fragments) for fragments in self.pending.values())

    def pending_lines(self) -> int:
        return len(self.pending)

    @property
    def quiescent(self) -> bool:
        """Whether volatile and durable state are guaranteed identical."""
        return not self.pending

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _retire(self, should_retire) -> None:
        """Apply matching fragments to the durable image and drop them.

        Within a line, flushed fragments always form a prefix (a flush
        marks everything currently in the line), so applying them in list
        order preserves store order.
        """
        emptied = []
        for line, fragments in self.pending.items():
            keep: List[StoreFragment] = []
            for fragment in fragments:
                if should_retire(fragment):
                    self.durable.write(fragment.addr, fragment.data)
                else:
                    keep.append(fragment)
            if keep:
                self.pending[line] = keep
            else:
                emptied.append(line)
        for line in emptied:
            del self.pending[line]

    def _require(self, model: str) -> None:
        if self.model != model:
            raise RuntimeError(
                f"operation requires the {model} machine model, "
                f"but this machine is {self.model}"
            )
