"""Catalog of the bug corpus (paper Tables 5 and 6).

Each :class:`BugCase` names a target system, the fault(s) to inject, the
workload shape that exercises the buggy path, and the PMTest diagnostics
that must fire.  The synthetic catalog reproduces Table 5's class
counts exactly:

=====================  =====  ==========================================
class                  count  description (paper wording)
=====================  =====  ==========================================
``ordering``               4  missing/misplaced ordering enforcement
``writeback``              6  missing/misplaced writeback operations
``perf-writeback``         2  writeback the same object more than once
``backup``                19  missing/misplaced backup of objects
``completion``             7  incomplete transactions (improper
                              termination)
``perf-log``               4  log the same object more than once
=====================  =====  ==========================================

(The paper's abstract counts 45 manually created bugs: the 42 of
Table 5 plus the three bugs reproduced from commit history, which live
in :data:`HISTORICAL_BUGS` together with the three new bugs.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.core.reports import ReportCode


@dataclass(frozen=True)
class BugCase:
    """One injectable bug and how to provoke + recognize it."""

    bug_id: str
    category: str
    target: str  # structure name, "pmfs", or "mnemosyne"
    description: str
    faults: Tuple[str, ...] = ()  # structure/fs-level fault names
    tx_faults: Tuple[str, ...] = ()  # PMDK transaction-manager faults
    log_faults: Tuple[str, ...] = ()  # Mnemosyne raw-word-log faults
    workload: str = "insert"  # insert|update|remove|ascending|descending
    expected: FrozenSet[ReportCode] = frozenset()
    historical: str = ""  # upstream reference for Table 6 rows


def _case(bug_id, category, target, description, expected, **kwargs):
    return BugCase(
        bug_id=bug_id,
        category=category,
        target=target,
        description=description,
        expected=frozenset(expected),
        **kwargs,
    )


_MISSING = {ReportCode.MISSING_LOG}
_DUPLOG = {ReportCode.DUP_LOG}
_NOTPERSIST = {ReportCode.NOT_PERSISTED}
_NOTORDERED = {ReportCode.NOT_ORDERED}
_DUPFLUSH = {ReportCode.DUP_FLUSH}
_UNNEEDED = {ReportCode.UNNECESSARY_FLUSH}
_INCOMPLETE = {ReportCode.INCOMPLETE_TX, ReportCode.TX_NOT_PERSISTED}


#: Table 5, row "Ordering" -- 4 cases.
_ORDERING = [
    _case("O1", "ordering", "hashmap_atomic",
          "entry published before it is persisted", _NOTORDERED,
          faults=("no-entry-persist",)),
    _case("O2", "ordering", "hashmap_atomic",
          "publication flushed but not fenced before the count",
          _NOTORDERED, faults=("no-publish-fence",)),
    _case("O3", "ordering", "pmfs",
          "file size published before the data it covers", _NOTORDERED,
          faults=("size-early",)),
    _case("O4", "ordering", "pmfs",
          "metadata not fenced before the journal commit", _NOTORDERED,
          faults=("meta-no-fence",)),
]

#: Table 5, row "Writeback" -- 6 cases.
_WRITEBACK = [
    _case("W1", "writeback", "hashmap_atomic",
          "count update never written back", _NOTPERSIST,
          faults=("count-no-flush",)),
    _case("W2", "writeback", "pmfs",
          "XIP data stores never written back", _NOTORDERED | _NOTPERSIST,
          faults=("write-no-flush",)),
    _case("W3", "writeback", "pmfs",
          "journal entries not written back before the update",
          _NOTPERSIST, faults=("log-no-flush",)),
    _case("W4", "writeback", "pmfs",
          "journal COMMIT entry never written back", _NOTPERSIST,
          faults=("no-commit-flush",)),
    _case("W5", "writeback", "mnemosyne",
          "redo-applied words never written back", _NOTPERSIST,
          log_faults=("apply-no-flush",)),
    _case("W6", "writeback", "mnemosyne",
          "raw-log records not flushed before the commit marker",
          _NOTORDERED, log_faults=("no-log-flush",)),
]

#: Table 5, row "Performance" (low-level) -- 2 cases.
_PERF_WRITEBACK = [
    _case("P1", "perf-writeback", "hashmap_atomic",
          "bucket head written back twice", _DUPFLUSH,
          faults=("double-flush-head",)),
    _case("P2", "perf-writeback", "hashmap_atomic",
          "entry written back twice before publication", _DUPFLUSH,
          faults=("double-flush-entry",)),
]

#: Table 5, row "Backup" -- 19 cases.
_BACKUP = [
    _case("K01", "backup", "ctree",
          "insert splices a pointer without logging it", _MISSING,
          faults=("no-log-splice",)),
    _case("K02", "backup", "ctree",
          "remove splices a pointer without logging it", _MISSING,
          faults=("no-log-splice",), workload="remove"),
    _case("K03", "backup", "ctree",
          "insert bumps the count without logging it", _MISSING,
          faults=("no-log-count",)),
    _case("K04", "backup", "ctree",
          "remove drops the count without logging it", _MISSING,
          faults=("no-log-count",), workload="remove"),
    _case("K05", "backup", "ctree",
          "value update without logging the value slot", _MISSING,
          faults=("no-log-value",), workload="update"),
    _case("K06", "backup", "btree",
          "split clears moved items without logging them", _MISSING,
          faults=("split-no-log",)),
    _case("K07", "backup", "btree",
          "delete replaces a separator without logging it", _MISSING,
          faults=("replace-no-log",), workload="remove"),
    _case("K08", "backup", "btree",
          "insert bumps the count without logging it", _MISSING,
          faults=("no-log-count",)),
    _case("K09", "backup", "btree",
          "remove drops the count without logging it", _MISSING,
          faults=("no-log-count",), workload="remove"),
    _case("K10", "backup", "rbtree",
          "left rotation re-parents without logging (ascending keys)",
          _MISSING, faults=("rotate-no-log",), workload="ascending"),
    _case("K11", "backup", "rbtree",
          "right rotation re-parents without logging (descending keys)",
          _MISSING, faults=("rotate-no-log",), workload="descending"),
    _case("K12", "backup", "rbtree",
          "insert bumps the count without logging it", _MISSING,
          faults=("no-log-count",)),
    _case("K13", "backup", "rbtree",
          "value update without logging the value slot", _MISSING,
          faults=("no-log-value",), workload="update"),
    _case("K14", "backup", "hashmap_tx",
          "bucket head modified without logging it", _MISSING,
          faults=("no-log-head",)),
    _case("K15", "backup", "hashmap_tx",
          "count modified without logging it (Figure 1b)", _MISSING,
          faults=("no-log-count",)),
    _case("K16", "backup", "hashmap_tx",
          "value update without logging the value slot", _MISSING,
          faults=("no-log-value",), workload="update"),
    _case("K17", "backup", "hashmap_tx",
          "remove unlinks without logging the predecessor", _MISSING,
          faults=("no-log-prev",), workload="remove"),
    _case("K18", "backup", "hashmap_tx",
          "count modified without logging it on the remove path",
          _MISSING, faults=("no-log-count",), workload="remove"),
    _case("K19", "backup", "mnemosyne",
          "backup log commit marker not ordered after its records",
          _NOTORDERED, log_faults=("no-commit-fence",)),
]

#: Table 5, row "Completion" -- 7 cases.
_COMPLETION = [
    _case("C1", "completion", "hashmap_tx",
          "transaction never terminated (no TX_END)", _INCOMPLETE,
          faults=("skip-commit",)),
    _case("C2", "completion", "ctree",
          "commit returns without flushing the updates", _INCOMPLETE,
          tx_faults=("commit-no-flush",)),
    _case("C3", "completion", "btree",
          "commit returns without flushing the updates", _INCOMPLETE,
          tx_faults=("commit-no-flush",)),
    _case("C4", "completion", "rbtree",
          "commit returns without flushing the updates", _INCOMPLETE,
          tx_faults=("commit-no-flush",)),
    _case("C5", "completion", "hashmap_tx",
          "commit returns without flushing the updates", _INCOMPLETE,
          tx_faults=("commit-no-flush",)),
    _case("C6", "completion", "ctree",
          "commit returns without its fences", _INCOMPLETE,
          tx_faults=("commit-no-fence",)),
    _case("C7", "completion", "hashmap_tx",
          "commit returns without its fences", _INCOMPLETE,
          tx_faults=("commit-no-fence",)),
]

#: Table 5, row "Performance" (transactions) -- 4 cases.
_PERF_LOG = [
    _case("T1", "perf-log", "hashmap_tx",
          "bucket head logged twice in one transaction", _DUPLOG,
          faults=("dup-log-head",)),
    _case("T2", "perf-log", "btree",
          "rotate_left logs a node insert_item already logged", _DUPLOG,
          faults=("rotate-dup-log",), workload="remove"),
    _case("T3", "perf-log", "ctree",
          "spliced slot logged twice", _DUPLOG,
          faults=("dup-log-splice",)),
    _case("T4", "perf-log", "rbtree",
          "fix-up field logged twice", _DUPLOG,
          faults=("dup-log-set",), workload="ascending"),
]

SYNTHETIC_BUGS: List[BugCase] = (
    _ORDERING + _WRITEBACK + _PERF_WRITEBACK + _BACKUP + _COMPLETION
    + _PERF_LOG
)

#: Table 6: three bugs reproduced from commit history, three new ones.
HISTORICAL_BUGS: List[BugCase] = [
    _case("H1", "known", "pmfs",
          "xips.c:207,262 -- flush the same persistent buffer twice",
          _DUPFLUSH, faults=("xip-dup-flush",),
          historical="PMFS-new@ded1b075"),
    _case("H2", "known", "pmfs",
          "files.c:232 -- flush an unmapped (clean) buffer in fsync",
          _UNNEEDED, faults=("fsync-extra-flush",),
          historical="linux-pmfs@e293e147"),
    _case("H3", "known", "rbtree",
          "rbtree_map.c:379 -- modify a tree node without logging it",
          _MISSING, faults=("rotate-no-log",), workload="ascending",
          historical="pmem/pmdk@04ec84e2"),
    _case("H4", "new", "pmfs",
          "journal.c:632 -- flush redundant data when committing "
          "(the paper's Bug 1)", _DUPFLUSH, faults=("commit-dup-flush",),
          historical="reported by PMTest"),
    _case("H5", "new", "btree",
          "btree_map.c:201 -- modify a tree node without logging it "
          "(the paper's Bug 2)", _MISSING, faults=("split-no-log",),
          historical="pmem/pmdk@25f5e4f6"),
    _case("H6", "new", "btree",
          "btree_map.c:367 -- log the same object twice "
          "(the paper's Bug 3)", _DUPLOG, faults=("rotate-dup-log",),
          workload="remove", historical="pmem/pmdk@b9232407"),
]

#: Table 5 row counts (used as a structural self-check).
EXPECTED_COUNTS: Dict[str, int] = {
    "ordering": 4,
    "writeback": 6,
    "perf-writeback": 2,
    "backup": 19,
    "completion": 7,
    "perf-log": 4,
}


def bugs_by_category() -> Dict[str, List[BugCase]]:
    grouped: Dict[str, List[BugCase]] = {}
    for case in SYNTHETIC_BUGS:
        grouped.setdefault(case.category, []).append(case)
    return grouped


def _self_check() -> None:
    grouped = bugs_by_category()
    for category, count in EXPECTED_COUNTS.items():
        actual = len(grouped.get(category, []))
        if actual != count:
            raise AssertionError(
                f"bug catalog drifted: {category} has {actual} cases, "
                f"Table 5 requires {count}"
            )
    ids = [case.bug_id for case in SYNTHETIC_BUGS + HISTORICAL_BUGS]
    if len(ids) != len(set(ids)):
        raise AssertionError("duplicate bug ids in the catalog")


_self_check()
