"""Tests for the real-workload servers and load generators."""

import random

import pytest

from repro.core.api import PMTestSession
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmfs import PMFS
from repro.workloads import (
    MemcachedServer,
    RedisServer,
    ZipfSampler,
    drive_fs,
    drive_kv,
    filebench_ops,
    memslap_ops,
    oltp_ops,
    redis_lru_ops,
    run_client_threads,
    ycsb_ops,
)


def make_pool(session=None, size=32 << 20):
    runtime = PMRuntime(machine=PMMachine(size), session=session)
    return PMPool(runtime, log_capacity=256 * 1024)


def make_session(workers=0):
    session = PMTestSession(workers=workers)
    session.thread_init()
    session.start()
    return session


class TestClients:
    def test_memslap_mix(self):
        ops = list(memslap_ops(2000, set_ratio=0.05, seed=1))
        sets = sum(1 for kind, _, _ in ops if kind == "set")
        assert len(ops) == 2000
        assert 40 <= sets <= 180  # ~5%

    def test_ycsb_mix_and_skew(self):
        ops = list(ycsb_ops(2000, key_space=100, update_ratio=0.5, seed=1))
        updates = sum(1 for kind, _, _ in ops if kind == "set")
        assert 850 <= updates <= 1150  # ~50%
        # Zipfian: the hottest key dominates.
        from collections import Counter

        keys = Counter(key for _, key, _ in ops)
        top = keys.most_common(1)[0][1]
        assert top > len(ops) / 100  # far above uniform share

    def test_zipf_sampler_bounds(self):
        sampler = ZipfSampler(50)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(500)]
        assert all(0 <= d < 50 for d in draws)
        assert draws.count(0) > draws.count(49)

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_redis_lru_reaches_key_count(self):
        ops = list(redis_lru_ops(100, seed=2))
        sets = [op for op in ops if op[0] == "set"]
        assert len(sets) == 100

    def test_filebench_ops_well_formed(self):
        live = set()
        for op in filebench_ops(300, seed=3):
            if op[0] == "create":
                assert op[1] not in live
                live.add(op[1])
            elif op[0] == "delete":
                assert op[1] in live
                live.remove(op[1])
            else:
                assert op[1] in live

    def test_oltp_begins_with_table_setup(self):
        ops = list(oltp_ops(10, seed=4))
        assert ops[0][0] == "create"
        assert ops[1][0] == "write"
        assert sum(1 for op in ops if op[0] == "fsync") == 10


class TestMemcachedServer:
    def test_basic_commands(self):
        server = MemcachedServer(make_pool())
        server.set(b"k", b"v")
        assert server.get(b"k") == b"v"
        assert server.get(b"missing") is None
        assert server.delete(b"k")
        assert server.stats["set"] == 1
        assert server.stats["miss"] == 1

    def test_serve_clean_under_pmtest(self):
        session = make_session()
        server = MemcachedServer(make_pool(session=session))
        session.send_trace()
        n = drive_kv(server, memslap_ops(200, key_space=50), session=session,
                     trace_every=10)
        assert n == 200
        assert session.exit().clean

    def test_multithreaded_serving(self):
        session = make_session(workers=2)
        server = MemcachedServer(make_pool(session=session))
        session.send_trace()

        def worker(index):
            return drive_kv(
                server,
                ycsb_ops(100, key_space=40, seed=index),
                session=session,
                trace_every=10,
            )

        counts = run_client_threads(worker, 3, session=session)
        assert counts == [100, 100, 100]
        result = session.exit()
        assert result.clean
        assert result.traces_checked >= 3


class TestRedisServer:
    def test_basic_commands(self):
        server = RedisServer(make_pool())
        server.set(b"a", b"1")
        server.set(b"a", b"2")
        assert server.get(b"a") == b"2"
        assert len(server) == 1
        assert server.delete(b"a")
        assert len(server) == 0

    def test_lru_eviction_holds_cap(self):
        server = RedisServer(make_pool(), maxkeys=10)
        for i in range(30):
            server.set(f"k{i}".encode(), b"v")
        assert len(server) == 10
        assert server.evictions == 20
        # The most recent keys survive.
        assert server.get(b"k29") == b"v"
        assert server.get(b"k0") is None

    def test_get_refreshes_lru(self):
        server = RedisServer(make_pool(), maxkeys=2)
        server.set(b"a", b"1")
        server.set(b"b", b"2")
        server.get(b"a")  # refresh a
        server.set(b"c", b"3")  # evicts b
        assert server.get(b"a") == b"1"
        assert server.get(b"b") is None

    def test_reopen_rebuilds_lru(self):
        pool = make_pool()
        server = RedisServer(pool)
        server.set(b"x", b"y")
        again = RedisServer(pool)
        assert again.get(b"x") == b"y"
        assert len(again.lru) == 1

    def test_serve_clean_with_tx_checkers(self):
        session = make_session()
        server = RedisServer(make_pool(session=session), maxkeys=20)
        session.send_trace()
        drive_kv(server, redis_lru_ops(60), session=session, trace_every=5)
        result = session.exit()
        assert result.clean, [str(r) for r in result.reports[:5]]
        assert server.evictions > 0


class TestFsWorkloads:
    @pytest.mark.parametrize("gen", [filebench_ops(150, seed=5),
                                     oltp_ops(40, seed=6)])
    def test_fs_streams_clean_under_pmtest(self, gen):
        session = make_session()
        runtime = PMRuntime(machine=PMMachine(8 << 20), session=session)
        fs = PMFS(runtime, journal_capacity=32 * 1024)
        session.send_trace()
        drive_fs(fs, gen, session=session, trace_every=5)
        result = session.exit()
        assert result.clean, [str(r) for r in result.reports[:5]]

    def test_drive_fs_rejects_unknown_op(self):
        runtime = PMRuntime(machine=PMMachine(8 << 20))
        fs = PMFS(runtime, journal_capacity=32 * 1024)
        with pytest.raises(ValueError):
            drive_fs(fs, [("chmod", b"f")])


class TestRunner:
    def test_worker_errors_propagate(self):
        def worker(index):
            raise RuntimeError("client crashed")

        with pytest.raises(RuntimeError):
            run_client_threads(worker, 2)
