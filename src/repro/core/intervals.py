"""Epoch intervals used by the shadow memory.

PMTest reasons about *when* a write may persist in units of epochs: the
global timestamp starts at 0 and increments at every ordering fence.  A
persist interval ``(start, end)`` means "this write may become durable at
any point strictly after epoch ``start`` began and no later than the fence
that started epoch ``end``".  An interval whose ``end`` is :data:`INF` is
*open*: nothing in the trace so far guarantees the write ever persists.

The overlap rules here are exactly the paper's (Section 4.4):

* a write is *persisted* by the time of a checker iff its interval is
  closed (``end <= now``);
* write A is *ordered before* write B iff A's interval ends no later than
  B's interval starts (``a.end <= b.start``), i.e. the intervals do not
  overlap.
"""

from __future__ import annotations

from typing import NamedTuple, Union

#: Sentinel for an open interval end ("may never persist").  ``float('inf')``
#: compares correctly against integer epochs.
INF: float = float("inf")

Epoch = Union[int, float]


class Interval(NamedTuple):
    """A half-open-ish epoch interval ``(start, end)``.

    ``start`` is the epoch in which the triggering operation executed;
    ``end`` is the epoch whose opening fence guarantees completion, or
    :data:`INF` when no such fence exists yet.
    """

    start: int
    end: Epoch

    @property
    def closed(self) -> bool:
        """Whether the interval has a guaranteed completion point."""
        return self.end != INF

    def ends_by(self, now: int) -> bool:
        """Whether the interval is guaranteed complete at epoch ``now``."""
        return self.end <= now

    def ordered_before(self, other: "Interval") -> bool:
        """x86 rule: self completes no later than ``other`` may begin."""
        return self.end != INF and self.end <= other.start

    def starts_before(self, other: "Interval") -> bool:
        """HOPS rule: self began in a strictly earlier epoch than ``other``."""
        return self.start < other.start

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals may be concurrently in flight."""
        return not (self.ordered_before(other) or other.ordered_before(self))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        end = "inf" if self.end == INF else str(self.end)
        return f"({self.start}, {end})"


def span(start: int, end: Epoch = INF) -> Interval:
    """Convenience constructor mirroring the paper's ``(E1, E2)`` notation."""
    return Interval(start, end)
