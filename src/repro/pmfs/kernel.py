"""Kernel-to-user trace plumbing (paper Figure 9b).

A kernel module cannot host the checking engine, so PMTest routes its
traces through a bounded kernel FIFO (``/proc/PMTest``) to the
user-space workers.  :class:`KernelBridge` is that channel: it exposes
the same sink protocol as :class:`~repro.core.workers.WorkerPool`
(``submit``/``drain``/``close``/``dispatched``), so a
:class:`~repro.core.api.PMTestSession` can be pointed at it via its
``sink`` parameter.  A consumer thread plays the user-space daemon,
popping traces from the FIFO and dispatching them to the pool.

Backpressure is end to end: if checking falls behind, the FIFO fills
and the "kernel" thread parks on the interruptible wait queue until the
consumer drains the FIFO below half capacity.

Fault tolerance mirrors the user-space pipeline: the worker pool under
the bridge supervises its workers and can degrade backends, ``submit``
honours an optional ``put_timeout`` so a parked kernel producer cannot
block forever when the consumer dies, ``drain`` watchdogs the consumer
daemon itself, and ``close`` is idempotent and always releases parked
producers (even when the drain fails).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.core.backends import CheckingFailed
from repro.core.events import Trace
from repro.core.faults import FaultPlan
from repro.core.kfifo import (
    DEFAULT_CAPACITY,
    FifoClosed,
    KernelFifo,
    ShmKernelFifo,
)
from repro.core.metrics import MetricsRegistry, make_registry
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.tracing import Tracer
from repro.core.backends import resolve_transport_name
from repro.core.workers import WorkerPool, _METRICS_FROM_ENV


class KernelBridge:
    """A trace sink that crosses a simulated kernel/user boundary.

    ``transport`` selects both legs: the kernel FIFO's backing
    (``shm`` stores binary-encoded traces in a shared-memory ring,
    ``queue`` keeps the historical in-process deque) and the worker
    pool's process-backend IPC channel.  ``None`` consults
    ``PMTEST_TRANSPORT``.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        num_workers: int = 1,
        fifo_capacity: int = DEFAULT_CAPACITY,
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        transport: Optional[str] = None,
        check_timeout: Optional[float] = None,
        max_retries: int = 2,
        fallback: bool = True,
        faults: Optional[FaultPlan] = None,
        put_timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = _METRICS_FROM_ENV,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if metrics is _METRICS_FROM_ENV:
            metrics = make_registry()
        # The FIFO gets its own registry: its producer is the "kernel"
        # thread, and FIFO recording happens under the FIFO lock — kept
        # apart from the pool's submit-side registry and merged in
        # :meth:`metrics_snapshot`.
        self._fifo_metrics: Optional[MetricsRegistry] = (
            MetricsRegistry(metrics.level) if metrics is not None else None
        )
        self._transport = resolve_transport_name(transport)
        fifo_cls = ShmKernelFifo if self._transport == "shm" else KernelFifo
        self.fifo: KernelFifo[Trace] = fifo_cls(
            fifo_capacity, faults=faults, metrics=self._fifo_metrics
        )
        self.pool = WorkerPool(
            rules,
            num_workers=max(num_workers, 0),
            backend=backend,
            batch_size=batch_size,
            transport=transport,
            check_timeout=check_timeout,
            max_retries=max_retries,
            fallback=fallback,
            faults=faults,
            metrics=metrics,
            tracer=tracer,
        )
        self._check_timeout = check_timeout
        self._put_timeout = put_timeout
        self._submitted = 0
        self._lock = threading.Lock()
        self._closed = False
        self._final: Optional[Tuple[str, object]] = None
        self._consumer = threading.Thread(
            target=self._consume, name="pmtest-kernel-consumer", daemon=True
        )
        self._consumer.start()

    # ------------------------------------------------------------------
    # The sink protocol used by PMTestSession
    # ------------------------------------------------------------------
    @property
    def dispatched(self) -> int:
        with self._lock:
            return self._submitted

    @property
    def diagnostics(self) -> List[str]:
        """Recovery events observed by the pool below the bridge."""
        return self.pool.diagnostics

    def metrics_snapshot(self) -> Optional[MetricsRegistry]:
        """Pool registries plus the kernel-FIFO registry, merged."""
        snapshot = self.pool.metrics_snapshot()
        if snapshot is not None and self._fifo_metrics is not None:
            snapshot.merge(self._fifo_metrics)
        return snapshot

    def submit(self, trace: Trace) -> None:
        """Kernel side: push a trace, blocking on FIFO backpressure.

        With ``put_timeout`` configured, a producer parked on a dead
        consumer raises :class:`TimeoutError` instead of blocking
        forever; a closed bridge raises :class:`FifoClosed` promptly.
        """
        self.fifo.put(trace, timeout=self._put_timeout)
        with self._lock:
            self._submitted += 1

    def drain(self) -> TestResult:
        """Block until every submitted trace crossed the FIFO and was
        checked; return the aggregate result.

        The FIFO crossing itself is watchdogged: if the user-space
        consumer daemon dies with traces still in the FIFO (or
        ``check_timeout`` elapses with no crossing progress), this
        raises :class:`~repro.core.backends.CheckingFailed` instead of
        polling forever.
        """
        last_crossed = -1
        last_progress = time.monotonic()
        while True:
            with self._lock:
                submitted = self._submitted
            crossed = self.pool.dispatched
            if crossed >= submitted:
                break
            if crossed != last_crossed:
                last_crossed = crossed
                last_progress = time.monotonic()
            if not self._consumer.is_alive():
                raise CheckingFailed(
                    f"kernel consumer daemon died with "
                    f"{submitted - crossed} trace(s) still in the FIFO"
                )
            if (
                self._check_timeout is not None
                and time.monotonic() - last_progress > self._check_timeout
            ):
                raise CheckingFailed(
                    f"watchdog timeout: no trace crossed the kernel FIFO "
                    f"for {self._check_timeout:g}s "
                    f"({submitted - crossed} outstanding)"
                )
            time.sleep(0.0005)
        return self.pool.drain()

    def close(self) -> TestResult:
        """Drain, tear down the FIFO and the pool.  Idempotent, and the
        FIFO is closed (releasing any parked producer) even when the
        drain itself fails."""
        if self._final is not None:
            kind, value = self._final
            if kind == "err":
                raise value  # type: ignore[misc]
            return value  # type: ignore[return-value]
        self._closed = True
        try:
            self.drain()
            result = self.pool.close()
        except BaseException as exc:
            self._final = ("err", exc)
            raise
        else:
            self._final = ("ok", result)
            return result
        finally:
            self.fifo.close()
            self._consumer.join(timeout=5)
            # Ring-backed FIFOs own a shared-memory segment; reclaim it
            # once the consumer is done draining.
            release = getattr(self.fifo, "release", None)
            if release is not None:
                release()

    # ------------------------------------------------------------------
    def _consume(self) -> None:
        """The user-space daemon: FIFO -> worker pool."""
        while True:
            try:
                trace = self.fifo.get()
            except FifoClosed:
                return
            self.pool.submit(trace)
