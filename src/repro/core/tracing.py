"""Lightweight span tracing for the checking pipeline.

Where :mod:`repro.core.metrics` aggregates (how much time went into each
stage overall), tracing preserves *sequence*: a :class:`Tracer` records
named spans with begin/end timestamps and writes them out in the Chrome
trace event format, so a run can be opened in ``chrome://tracing`` (or
Perfetto) and read as a timeline — which trace was being checked while
``drain`` was blocked, how long each backend submit took, and so on.

Design constraints:

* **Explicit clocks.**  The tracer never calls ``time`` directly except
  through its injected ``clock`` (default ``time.perf_counter_ns``), so
  tests install a deterministic fake clock and assert exact durations.
* **Cheap when absent.**  Nothing in the pipeline owns a tracer by
  default; every hook is a ``tracer is not None`` branch.
* **Misuse is loud.**  A span left open when the tracer is finished
  raises :class:`TracingError` in strict mode (tests) and emits a
  ``RuntimeWarning`` otherwise (production keeps going and the partial
  span is still written, with its end clamped to the finish time).

Output format: one JSON object per line, wrapped in a JSON array —
valid JSON for tooling, and still greppable/streamable line by line.
Durations use the Chrome convention (microseconds, ``X`` events).
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union


class TracingError(Exception):
    """Span misuse: unbalanced begin/end or an unclosed span at finish."""


class _OpenSpan:
    __slots__ = ("name", "start_ns", "args")

    def __init__(self, name: str, start_ns: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.start_ns = start_ns
        self.args = args


class Tracer:
    """Collects spans/instants/counter samples; writes Chrome trace JSON.

    Thread-safe: spans opened on different threads nest independently
    (per-thread stacks) and carry their thread id in the output.
    """

    def __init__(
        self,
        clock=time.perf_counter_ns,
        strict: bool = False,
        process_name: str = "pmtest",
    ) -> None:
        self._clock = clock
        self._strict = strict
        self._process_name = process_name
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._stacks: Dict[int, List[_OpenSpan]] = {}
        self._finished = False
        self._epoch_ns = clock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """``with tracer.span("drain"):`` — a timed, nested span."""
        self.begin(name, **args)
        try:
            yield
        finally:
            self.end(name)

    def begin(self, name: str, **args: Any) -> None:
        """Open a span explicitly (must be closed by :meth:`end`)."""
        tid = threading.get_ident()
        start = self._clock()
        with self._lock:
            self._check_not_finished()
            self._stacks.setdefault(tid, []).append(
                _OpenSpan(name, start, args)
            )

    def end(self, name: Optional[str] = None) -> None:
        """Close the innermost open span on the calling thread.

        With ``name`` given, the innermost span must carry that name —
        mismatches raise :class:`TracingError` in strict mode and warn
        otherwise (the span is closed anyway so the timeline stays
        parseable).
        """
        tid = threading.get_ident()
        now = self._clock()
        with self._lock:
            stack = self._stacks.get(tid)
            if not stack:
                self._misuse(f"end({name!r}) with no open span")
                return
            span = stack.pop()
            if name is not None and span.name != name:
                self._misuse(
                    f"end({name!r}) closes span {span.name!r} "
                    f"(unbalanced nesting)"
                )
            self._emit_complete(span, now, tid)

    def instant(self, name: str, **args: Any) -> None:
        """A zero-duration marker (worker respawned, backend degraded)."""
        now = self._clock()
        with self._lock:
            self._check_not_finished()
            event = self._base_event("i", name, now, threading.get_ident())
            event["s"] = "t"  # thread-scoped marker
            if args:
                event["args"] = args
            self._events.append(event)

    def counter(self, name: str, **values: Union[int, float]) -> None:
        """A counter sample (queue depth over time renders as a graph)."""
        now = self._clock()
        with self._lock:
            self._check_not_finished()
            event = self._base_event("C", name, now, threading.get_ident())
            event["args"] = dict(values)
            self._events.append(event)

    # ------------------------------------------------------------------
    # Introspection / output
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        with self._lock:
            return sum(len(stack) for stack in self._stacks.values())

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def finish(self) -> None:
        """Close the tracer; unclosed spans raise (strict) or warn.

        Idempotent.  Leaked spans are force-closed at the finish
        timestamp so the written timeline still contains them.
        """
        now = self._clock()
        with self._lock:
            if self._finished:
                return
            leaked = [
                (tid, span)
                for tid, stack in self._stacks.items()
                for span in stack
            ]
            for tid, span in leaked:
                self._emit_complete(span, now, tid)
            self._stacks.clear()
            self._finished = True
        if leaked:
            names = ", ".join(repr(span.name) for _, span in leaked)
            self._misuse(f"{len(leaked)} span(s) never closed: {names}")

    def write(self, destination: Union[str, Path, TextIO]) -> int:
        """Write the Chrome trace (finishing first); returns event count."""
        self.finish()
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.write(handle)
        with self._lock:
            events = list(self._events)
        meta = self._base_event("M", "process_name", self._epoch_ns, 0)
        meta["args"] = {"name": self._process_name}
        lines = [json.dumps(meta)] + [json.dumps(e) for e in events]
        destination.write("[\n" + ",\n".join(lines) + "\n]\n")
        return len(events)

    # ------------------------------------------------------------------
    # Internals (all called with the lock held except _misuse)
    # ------------------------------------------------------------------
    def _base_event(self, phase: str, name: str, ts_ns: int, tid: int) -> dict:
        return {
            "ph": phase,
            "name": name,
            "pid": os.getpid(),
            "tid": tid,
            "ts": (ts_ns - self._epoch_ns) / 1000.0,
        }

    def _emit_complete(self, span: _OpenSpan, end_ns: int, tid: int) -> None:
        event = self._base_event("X", span.name, span.start_ns, tid)
        event["dur"] = (end_ns - span.start_ns) / 1000.0
        if span.args:
            event["args"] = span.args
        self._events.append(event)

    def _check_not_finished(self) -> None:
        if self._finished:
            raise TracingError("tracer already finished")

    def _misuse(self, message: str) -> None:
        if self._strict:
            raise TracingError(message)
        warnings.warn(f"pmtest tracing: {message}", RuntimeWarning,
                      stacklevel=3)
