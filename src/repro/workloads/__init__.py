"""Real workloads (paper Table 4) and their load-generating clients.

The paper's Figure 11/12 workloads, rebuilt on this repository's
libraries:

=================  ========================  ==========================
Workload           Persistence library       Clients
=================  ========================  ==========================
``memcached``      Mnemosyne (raw word log)  Memslap (5% set),
                                             YCSB (50% update, zipfian)
``redis``          PMDK transactions         redis-cli LRU test
PMFS (repro.pmfs)  low-level primitives      Filebench fileserver mix,
                                             OLTP-complex row updates
=================  ========================  ==========================

Op counts are scaled down from the paper's (100k ops/client, 1M keys)
by a harness parameter — the Python substrate is ~100× slower per op
than the paper's C binaries, and relative slowdowns (the published
quantity) are scale-invariant here, which EXPERIMENTS.md verifies.
"""

from repro.workloads.clients import (
    ZipfSampler,
    filebench_ops,
    memslap_ops,
    oltp_ops,
    redis_lru_ops,
    ycsb_ops,
)
from repro.workloads.memcached import MemcachedServer
from repro.workloads.redis import RedisServer
from repro.workloads.runner import drive_fs, drive_kv, run_client_threads

__all__ = [
    "MemcachedServer",
    "RedisServer",
    "ZipfSampler",
    "drive_fs",
    "drive_kv",
    "filebench_ops",
    "memslap_ops",
    "oltp_ops",
    "redis_lru_ops",
    "run_client_threads",
    "ycsb_ops",
]
