"""The transaction log tree (paper Section 5.1.1).

To detect missing undo-log backups, the checking engine maintains a second
interval structure alongside the shadow memory: the *log tree* records
which address ranges the current transaction has snapshotted via
``TX_ADD``.  A write inside a transaction to a range the log tree does not
cover is a crash-consistency bug (the object cannot be rolled back); a
``TX_ADD`` over an already-covered range is a performance bug (duplicate
log, Section 5.1.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.events import SourceSite
from repro.core.interval_map import IntervalMap


class LogTree:
    """Address ranges backed up by ``TX_ADD`` in the current transaction."""

    __slots__ = ("_ranges",)

    def __init__(self) -> None:
        self._ranges: IntervalMap[Optional[SourceSite]] = IntervalMap()

    def __len__(self) -> int:
        return len(self._ranges)

    def add(
        self, lo: int, hi: int, site: Optional[SourceSite] = None
    ) -> List[Tuple[int, int, Optional[SourceSite]]]:
        """Record a backup of ``[lo, hi)``.

        Returns the already-covered subranges (with the site of the earlier
        ``TX_ADD``), which the caller reports as duplicate logs.  The new
        backup is recorded either way; the earlier site is kept for covered
        parts so repeated duplicates keep pointing at the original.
        """
        duplicates = self._ranges.overlaps(lo, hi)
        for gap_lo, gap_hi in self._ranges.gaps(lo, hi):
            self._ranges.assign(gap_lo, gap_hi, site)
        return duplicates

    def uncovered(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Subranges of ``[lo, hi)`` with no backup (missing-log bugs)."""
        return self._ranges.gaps(lo, hi)

    def covers(self, lo: int, hi: int) -> bool:
        """Whether the whole range has been backed up."""
        return self._ranges.covers(lo, hi)

    def reset(self) -> None:
        """Drop all backups (a fresh outermost transaction began)."""
        self._ranges.clear()
