"""Instrumentation: connects programs under test to tracking backends.

The paper tracks PM operations either through WHISPER's operation macros
or an LLVM pass (Section 4.3).  In this reproduction the analogous seam is
:class:`repro.instr.runtime.PMRuntime`: every library and workload issues
its PM operations through a runtime, and the runtime fans each operation
out to

* the simulated PM machine (so the program actually runs), and
* any number of :class:`repro.instr.runtime.TraceObserver` backends —
  the PMTest session, the pmemcheck baseline, or nothing at all (the
  uninstrumented baseline used as the denominator in slowdown figures).
"""

from repro.instr.runtime import PMRuntime, SessionObserver, TraceObserver

__all__ = ["PMRuntime", "SessionObserver", "TraceObserver"]
