"""Tests for the pmemcheck and Yat baseline tools."""

import pytest

from repro.baselines import PmemcheckTool, YatTester
from repro.baselines.yat import YatBudgetExceeded
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.pmdk.tx import recover_image
from repro.structures import AtomicHashMap
from repro.structures.hashmap_atomic import validate_image as validate_atomic


def runtime_with_tool(size=1 << 20):
    tool = PmemcheckTool()
    runtime = PMRuntime(machine=PMMachine(size), observers=[tool])
    return runtime, tool


class TestPmemcheck:
    def test_clean_sequence_no_findings(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1)
        runtime.clwb(0, 8)
        runtime.sfence()
        assert tool.finish() == []

    def test_unpersisted_store_reported(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1)
        findings = tool.finish()
        assert [f.kind for f in findings] == ["not-persisted"]

    def test_flush_without_fence_reported(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1)
        runtime.clwb(0, 8)
        findings = tool.finish()
        assert [f.kind for f in findings] == ["not-persisted"]

    def test_nt_store_needs_only_fence(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1, nt=True)
        runtime.sfence()
        assert tool.finish() == []

    def test_redundant_flush_reported(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1)
        runtime.clwb(0, 8)
        runtime.clwb(0, 8)
        runtime.sfence()
        kinds = [f.kind for f in tool.finish()]
        assert kinds == ["redundant-flush"]

    def test_unneeded_flush_reported(self):
        runtime, tool = runtime_with_tool()
        runtime.clwb(0x100, 8)
        kinds = [f.kind for f in tool.finish()]
        assert kinds == ["unneeded-flush"]

    def test_multiline_store_flushed_once(self):
        # A 128-byte store flushed by one 128-byte flush: no findings.
        runtime, tool = runtime_with_tool()
        runtime.store(0, b"x" * 128)
        runtime.clwb(0, 128)
        runtime.sfence()
        assert tool.finish() == []

    def test_dfence_retires_everything(self):
        tool = PmemcheckTool()
        runtime = PMRuntime(machine=PMMachine(1 << 20, model="hops"),
                            observers=[tool])
        runtime.store_u64(0, 1)
        runtime.dfence()
        assert tool.finish() == []

    def test_ofence_retires_nothing(self):
        tool = PmemcheckTool()
        runtime = PMRuntime(machine=PMMachine(1 << 20, model="hops"),
                            observers=[tool])
        runtime.store_u64(0, 1)
        runtime.ofence()
        assert [f.kind for f in tool.finish()] == ["not-persisted"]

    def test_counters(self):
        runtime, tool = runtime_with_tool()
        runtime.store_u64(0, 1)
        runtime.clwb(0, 8)
        runtime.sfence()
        assert tool.stores_tracked == 1
        assert tool.flushes_tracked == 1
        assert tool.fences_tracked == 1


class TestYat:
    def _atomic_oplog(self, faults=(), n_keys=3):
        """Record an atomic-hashmap run's machine op log, starting from
        a quiescent checkpoint after setup (as Yat users do)."""
        machine = PMMachine(1 << 20)
        runtime = PMRuntime(machine=machine)
        pool = PMPool(runtime, log_capacity=4096)
        structure = AtomicHashMap(pool, value_size=8, faults=faults,
                                  nbuckets=4)
        root_addr = pool.root_slot_addr(0)
        base = machine.begin_oplog()
        for key in range(n_keys):
            structure.insert(key)
        return machine.oplog, root_addr, base

    def test_clean_protocol_passes_exhaustively(self):
        oplog, root_addr, base = self._atomic_oplog()
        tester = YatTester(
            1 << 20,
            validate=lambda img: validate_atomic(img, img.read_u64(root_addr)),
            state_budget=1 << 16,
            base_image=base,
        )
        report = tester.run(oplog)
        assert report.consistent
        assert report.states_tested > 0
        assert report.crash_points > 1

    def test_buggy_protocol_caught(self):
        oplog, root_addr, base = self._atomic_oplog(
            faults=("no-entry-persist",)
        )
        tester = YatTester(
            1 << 20,
            validate=lambda img: validate_atomic(img, img.read_u64(root_addr)),
            crash_at="ops",  # the bad window closes at the next fence
            state_budget=1 << 18,
            base_image=base,
        )
        report = tester.run(oplog)
        assert report.violations

    def test_budget_aborts_with_state_count(self):
        oplog, root_addr, base = self._atomic_oplog()
        tester = YatTester(
            1 << 20,
            validate=lambda img: True,
            state_budget=1,
            base_image=base,
        )
        report = tester.run(oplog)
        assert report.aborted
        assert report.states_needed > 1

    def test_state_count_grows_with_trace(self):
        short_log, _, base = self._atomic_oplog(n_keys=2)
        long_log, _, base2 = self._atomic_oplog(n_keys=8)
        tester = YatTester(1 << 20, validate=lambda img: True,
                           base_image=base2)
        short_tester = YatTester(1 << 20, validate=lambda img: True,
                                 base_image=base)
        assert tester.state_count(long_log) > short_tester.state_count(short_log)

    def test_crash_at_validation(self):
        with pytest.raises(ValueError):
            YatTester(1 << 20, validate=lambda img: True, crash_at="never")

    def test_yat_with_recovery(self):
        """Yat + the PMDK recovery procedure: mid-transaction crashes
        are repaired before validation, so the run is consistent."""
        machine = PMMachine(1 << 20)
        runtime = PMRuntime(machine=machine)
        pool = PMPool(runtime, log_capacity=4096)
        addr = pool.alloc(8)
        runtime.store_u64(addr, 1)
        runtime.persist(addr, 8)
        base = machine.begin_oplog()
        with pool.tx.transaction() as tx:
            tx.add(addr, 8)
            runtime.store_u64(addr, 2)
        tester = YatTester(
            1 << 20,
            recover=lambda img: recover_image(img, pool.layout),
            validate=lambda img: img.read_u64(addr) in (1, 2),
            crash_at="ops",
            state_budget=1 << 16,
            base_image=base,
        )
        report = tester.run(machine.oplog)
        assert report.consistent
