"""Competing testing tools, rebuilt for the paper's comparisons.

``pmemcheck``
    The Valgrind-based checker PMTest is benchmarked against (Fig. 10a,
    Fig. 11): per-store fine-grained tracking with no interval
    coalescing.  It attaches to the same instrumentation runtime as
    PMTest, so the two tools can be timed on identical executions.
``yat``
    The exhaustive crash-state tester (Table 1, Section 2.2): enumerates
    every persist reordering at every fence and validates a recovery
    predicate against each image.  Exponentially slow by construction —
    which is the point; its state counter quantifies the paper's
    "five years for 100k operations" argument.
"""

from repro.baselines.pmemcheck import PmemcheckFinding, PmemcheckTool
from repro.baselines.yat import YatReport, YatTester

__all__ = ["PmemcheckFinding", "PmemcheckTool", "YatReport", "YatTester"]
