#!/usr/bin/env python3
"""Record a run now, check it offline later (under several models).

The trace is the interface: this example records a hashmap workload to a
``.pmtrace`` file with :class:`TraceRecorder` (no checking at runtime),
then replays it through the engine offline — once under x86 rules and
once under the eADR extension, which additionally flags every ``clwb``
as unnecessary on a flush-free platform.  The same file can be checked
from the command line::

    python -m repro stats  /tmp/hashmap.pmtrace
    python -m repro check  /tmp/hashmap.pmtrace --model x86
    python -m repro check  /tmp/hashmap.pmtrace --model eadr --quiet

Run:  python examples/record_and_replay.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.cli import main as repro_cli
from repro.core.api import PMTestSession
from repro.core.traceio import TraceRecorder, dump_traces, load_traces
from repro.instr.runtime import PMRuntime
from repro.pmem.machine import PMMachine
from repro.pmdk.pool import PMPool
from repro.structures import AtomicHashMap


def record(path: Path) -> None:
    recorder = TraceRecorder()
    session = PMTestSession(workers=0, sink=recorder)
    session.thread_init()
    session.start()
    runtime = PMRuntime(machine=PMMachine(8 << 20), session=session)
    pool = PMPool(runtime, log_capacity=64 * 1024)
    table = AtomicHashMap(pool, value_size=32)
    session.send_trace()
    for key in range(20):
        table.insert(key)
        session.send_trace()
    for key in range(0, 20, 3):
        table.remove(key)
        session.send_trace()
    session.exit()
    count = dump_traces(recorder.traces, path)
    events = sum(len(t) for t in load_traces(path))
    print(f"recorded {count} traces / {events} events -> {path}")


def main() -> None:
    print(__doc__)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "hashmap.pmtrace"
        record(path)
        print("\n--- python -m repro stats")
        repro_cli(["stats", str(path)])
        print("\n--- python -m repro check --model x86")
        status = repro_cli(["check", str(path), "--model", "x86"])
        print(f"(exit status {status})")
        print("\n--- python -m repro check --model eadr --quiet")
        status = repro_cli(["check", str(path), "--model", "eadr",
                            "--quiet"])
        print(f"(exit status {status}: clwb-based code ports cleanly, "
              "but every flush is flagged as removable)")


if __name__ == "__main__":
    main()
