"""A PMFS-like persistent-memory filesystem (kernel-module analogue).

Intel's PMFS is the kernel-space CCS of the paper's evaluation: an
XIP (execute-in-place) filesystem whose metadata updates are made crash
consistent by an undo journal.  This package rebuilds the pieces PMTest
exercises:

``journal``
    The "lite" undo journal: generation-tagged 64-byte log entries, a
    commit record, and offline rollback of uncommitted transactions.
    Contains the paper's Bug 1 site (``pmfs_commit_logentry`` flushing
    the same log entry twice, journal.c:632).
``fs``
    Superblock, inode table, a flat root directory, block allocation and
    the XIP read/write path — with the historical xips.c and files.c
    flush bugs reproducible by name, plus synthetic low-level bug sites
    (missing flush/fence) for the Table 5 corpus.
``kernel``
    The kernel-to-user integration of paper Figure 9(b): traces cross a
    bounded kernel FIFO (with the half-full wake-up) before reaching the
    user-space checking workers.
"""

from repro.pmfs.fs import PMFS, FSError
from repro.pmfs.journal import Journal, recover_journal
from repro.pmfs.kernel import KernelBridge

__all__ = ["FSError", "Journal", "KernelBridge", "PMFS", "recover_journal"]
