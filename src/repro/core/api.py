"""The PMTest session facade: the paper's full interface (Table 2).

A :class:`PMTestSession` owns the worker pool and per-thread trace
construction.  The method names translate the paper's C interface to
Python:

=======================  =============================================
Paper (Table 2)          This module
=======================  =============================================
``PMTest_INIT``          ``PMTestSession(...)``
``PMTest_EXIT``          :meth:`PMTestSession.exit`
``PMTest_THREAD_INIT``   :meth:`PMTestSession.thread_init`
``PMTest_START``         :meth:`PMTestSession.start`
``PMTest_END``           :meth:`PMTestSession.end`
``PMTest_EXCLUDE``       :meth:`PMTestSession.exclude`
``PMTest_INCLUDE``       :meth:`PMTestSession.include`
``PMTest_REG_VAR``       :meth:`PMTestSession.reg_var`
``PMTest_UNREG_VAR``     :meth:`PMTestSession.unreg_var`
``PMTest_GET_VAR``       :meth:`PMTestSession.get_var`
``PMTest_SEND_TRACE``    :meth:`PMTestSession.send_trace`
``PMTest_GET_RESULT``    :meth:`PMTestSession.get_result`
``isPersist``            :meth:`PMTestSession.is_persist`
``isOrderedBefore``      :meth:`PMTestSession.is_ordered_before`
``TX_CHECKER_START``     :meth:`PMTestSession.tx_check_start`
``TX_CHECKER_END``       :meth:`PMTestSession.tx_check_end`
=======================  =============================================

(The C-style spelling itself is available in :mod:`repro.core.capi` for
examples that want to read like the paper.)

PM *operations* (``write``/``clwb``/``sfence``/...) are normally recorded
by the instrumentation runtime (:mod:`repro.instr.runtime`), which plays
the role of the paper's WHISPER-macro / LLVM-pass tracking hooks; they are
public here so custom instrumentation can drive a session directly.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.events import Event, Op, SourceSite, Trace
from repro.core.metrics import MetricsRegistry
from repro.core.reports import TestResult
from repro.core.rules import PersistencyRules
from repro.core.tracing import Tracer
from repro.core.workers import WorkerPool, _METRICS_FROM_ENV


class _ThreadState:
    """Per-program-thread tracking state."""

    __slots__ = ("name", "enabled", "trace")

    def __init__(self, name: str, trace: Trace) -> None:
        self.name = name
        self.enabled = False
        self.trace = trace


class PMTestSession:
    """One testing session: trace capture plus the checking runtime.

    Parameters
    ----------
    rules:
        The persistency model's checking rules (default x86).
    workers:
        Checking worker threads.  ``0`` selects synchronous mode: traces
        are checked inline during :meth:`send_trace`, which is fully
        deterministic and what most unit tests use.
    capture_sites:
        Capture the source file/line of every recorded operation.  This
        is the paper's per-op metadata; it makes reports actionable but
        is the most expensive part of tracking (measured by the
        site-capture ablation benchmark).
    backend:
        Checking backend: ``"inline"``, ``"thread"`` or ``"process"``
        (see :mod:`repro.core.backends`).  ``None`` derives it from
        ``workers``: ``0`` means inline, otherwise the thread pool.
        The process backend checks traces on true parallel worker
        processes.
    batch_size:
        Traces per IPC message (process backend only).  ``None``
        (default) adapts to backpressure; an integer pins it.
    transport:
        Process-backend IPC channel: ``"queue"`` or ``"shm"``
        (shared-memory rings).  ``None`` consults ``PMTEST_TRANSPORT``.
    check_timeout:
        Per-drain watchdog (seconds) for ``get_result``: an
        unrecoverable checking-pipeline hang surfaces within this bound
        instead of blocking forever (``None``: wait forever).
    max_retries:
        Dead checking workers respawned per backend before it is
        declared unhealthy.
    fallback:
        Degrade the checking backend along process -> thread -> inline
        when spawning fails or the backend turns unhealthy mid-run; the
        degradation is recorded in the result's ``diagnostics``.
    faults:
        Deterministic chaos plan (:mod:`repro.core.faults`) consulted
        by the checking pipeline's fault points.
    sink:
        Where completed traces go.  Defaults to an in-process
        :class:`~repro.core.workers.WorkerPool`; kernel-module testing
        substitutes a :class:`~repro.pmfs.kernel.KernelBridge`, which
        routes traces through the bounded kernel FIFO first (paper
        Section 4.5).  Any object with ``submit``/``drain``/``close``
        and a ``dispatched`` count works.
    metrics:
        A :class:`~repro.core.metrics.MetricsRegistry` for pipeline
        telemetry, ``None`` to disable, or omitted to follow the
        ``PMTEST_METRICS`` environment switch.  Ignored when an
        explicit ``sink`` is supplied (configure the sink directly).
    tracer:
        An optional :class:`~repro.core.tracing.Tracer` threaded down
        to the worker pool.
    verdict_cache:
        On/off switch for the per-worker verdict cache
        (:mod:`repro.core.verdict_cache`): structurally identical
        traces are answered from a fingerprint-keyed cache instead of
        replayed, with byte-identical verdicts.  ``None`` (default)
        consults ``PMTEST_VERDICT_CACHE``; unset means on.
    verdict_cache_size:
        Per-worker verdict-cache capacity in entries (default 1024).
    engine:
        Replay engine: ``"object"`` (per-event dispatch, the default)
        or ``"columnar"`` (struct-of-arrays batch replay,
        :mod:`repro.core.engine_columnar`).  Verdict-neutral — both
        engines produce identical results; columnar is faster on large
        traces.  ``None`` consults ``PMTEST_ENGINE``.
    shadow:
        Shadow-memory interval store: ``"object"`` (the default
        :class:`~repro.core.interval_map.IntervalMap`) or ``"array"``
        (struct-of-arrays :class:`~repro.core.interval_array
        .ArrayIntervalMap` with batched epoch updates).
        Verdict-neutral, like ``engine``.  ``None`` consults
        ``PMTEST_SHADOW``.
    shard_min_events:
        Epoch-shard threshold in events (columnar engine only): traces
        at least this large are split at fence boundaries across the
        workers and the per-shard results folded back into one
        per-trace result.  ``None`` consults
        ``PMTEST_SHARD_MIN_EVENTS`` (unset: sharding off).
    shard_plan:
        Shard-count policy (:mod:`repro.core.shard_plan`): ``"off"``,
        ``"fixed"`` (the ``shard_min_events`` threshold) or ``"auto"``
        (adaptive, from a measured per-event replay cost).  ``None``
        consults ``PMTEST_SHARD_PLAN``, defaulting to ``fixed`` when
        ``shard_min_events`` is set and ``off`` otherwise.
    """

    def __init__(
        self,
        rules: Optional[PersistencyRules] = None,
        workers: int = 1,
        capture_sites: bool = False,
        backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        transport: Optional[str] = None,
        check_timeout: Optional[float] = None,
        max_retries: int = 2,
        fallback: bool = True,
        faults=None,
        sink=None,
        metrics: Optional[MetricsRegistry] = _METRICS_FROM_ENV,
        tracer: Optional[Tracer] = None,
        verdict_cache: Optional[bool] = None,
        verdict_cache_size: Optional[int] = None,
        engine: Optional[str] = None,
        shadow: Optional[str] = None,
        shard_min_events: Optional[int] = None,
        shard_plan: Optional[str] = None,
    ) -> None:
        self.capture_sites = capture_sites
        self._pool = sink if sink is not None else WorkerPool(
            rules,
            num_workers=workers,
            backend=backend,
            batch_size=batch_size,
            transport=transport,
            check_timeout=check_timeout,
            max_retries=max_retries,
            fallback=fallback,
            faults=faults,
            metrics=metrics,
            tracer=tracer,
            verdict_cache=verdict_cache,
            verdict_cache_size=verdict_cache_size,
            engine=engine,
            shadow=shadow,
            shard_min_events=shard_min_events,
            shard_plan=shard_plan,
        )
        self._trace_ids = itertools.count()
        self._local = threading.local()
        self._vars: Dict[str, Tuple[int, int]] = {}
        self._vars_lock = threading.Lock()
        self._sticky_exclusions: List[Tuple[int, int]] = []
        self._exited = False
        #: total events recorded across all threads (tracking overhead metric)
        self.ops_recorded = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def thread_init(self, name: Optional[str] = None) -> None:
        """Initialize tracking for the calling thread (PMTest_THREAD_INIT)."""
        thread_name = name or threading.current_thread().name
        self._local.state = _ThreadState(thread_name, self._new_trace(thread_name))

    def start(self) -> None:
        """Enable tracking and testing for the calling thread."""
        self._state().enabled = True

    def end(self) -> None:
        """Disable tracking for the calling thread."""
        self._state().enabled = False

    @contextmanager
    def region(self) -> Iterator["PMTestSession"]:
        """``with session.region():`` — a PMTest_START/PMTest_END pair."""
        self.start()
        try:
            yield self
        finally:
            self.end()

    def send_trace(self) -> None:
        """Ship the thread's current trace to the checking engine and
        start a new one (PMTest_SEND_TRACE)."""
        state = self._state()
        if state.trace.events:
            self._pool.submit(state.trace)
            state.trace = self._new_trace(state.name)

    def get_result(self) -> TestResult:
        """Block until all sent traces are tested (PMTest_GET_RESULT)."""
        return self._pool.drain()

    def result(self) -> TestResult:
        """Convenience: send the pending trace, then get the result."""
        self.send_trace()
        return self.get_result()

    def exit(self) -> TestResult:
        """Flush, stop the workers, and return the final result
        (PMTest_EXIT)."""
        if self._exited:
            return self._pool.drain()
        self.send_trace()
        self._exited = True
        return self._pool.close()

    def __enter__(self) -> "PMTestSession":
        self.thread_init()
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.exit()

    # ------------------------------------------------------------------
    # Persistent-object scope management
    # ------------------------------------------------------------------
    def exclude(self, addr: int, size: int) -> None:
        """Remove ``[addr, addr+size)`` from the testing scope."""
        self._record(Op.EXCLUDE, addr, size)

    def exclude_always(self, addr: int, size: int) -> None:
        """Exclude a range from *every* trace of this session.

        Because each trace is checked against a fresh shadow memory, a
        plain :meth:`exclude` only affects the trace it lands in.  PM
        libraries use this sticky variant to carve their internal
        metadata (e.g. the undo-log region) out of the application-level
        testing scope once, at pool creation.  Register sticky exclusions
        before spawning tracked threads: only traces created afterwards
        see them.
        """
        self._sticky_exclusions.append((addr, size))
        # Also apply to the calling thread's current trace.
        self._state().trace.append(Event(Op.EXCLUDE, addr, size))

    def include(self, addr: int, size: int) -> None:
        """Restore ``[addr, addr+size)`` to the testing scope."""
        self._record(Op.INCLUDE, addr, size)

    def reg_var(self, name: str, addr: int, size: int) -> None:
        """Register a named persistent variable (PMTest_REG_VAR)."""
        with self._vars_lock:
            self._vars[name] = (addr, size)

    def unreg_var(self, name: str) -> None:
        with self._vars_lock:
            del self._vars[name]

    def get_var(self, name: str) -> Tuple[int, int]:
        """Return ``(addr, size)`` of a registered variable."""
        with self._vars_lock:
            return self._vars[name]

    # ------------------------------------------------------------------
    # PM operations (called by the instrumentation runtime)
    # ------------------------------------------------------------------
    def write(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._record(Op.WRITE, addr, size, site=site)

    def write_nt(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._record(Op.WRITE_NT, addr, size, site=site)

    def clwb(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._record(Op.CLWB, addr, size, site=site)

    def clflushopt(
        self, addr: int, size: int, site: Optional[SourceSite] = None
    ) -> None:
        self._record(Op.CLFLUSHOPT, addr, size, site=site)

    def clflush(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._record(Op.CLFLUSH, addr, size, site=site)

    def sfence(self, site: Optional[SourceSite] = None) -> None:
        self._record(Op.SFENCE, site=site)

    def ofence(self, site: Optional[SourceSite] = None) -> None:
        self._record(Op.OFENCE, site=site)

    def dfence(self, site: Optional[SourceSite] = None) -> None:
        self._record(Op.DFENCE, site=site)

    def tx_begin(self, site: Optional[SourceSite] = None) -> None:
        self._record(Op.TX_BEGIN, site=site)

    def tx_end(self, site: Optional[SourceSite] = None) -> None:
        self._record(Op.TX_END, site=site)

    def tx_add(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        self._record(Op.TX_ADD, addr, size, site=site)

    # ------------------------------------------------------------------
    # Checkers
    # ------------------------------------------------------------------
    def is_persist(self, addr: int, size: int, site: Optional[SourceSite] = None) -> None:
        """Assert ``[addr, addr+size)`` has persisted since its last update."""
        self._record(Op.CHECK_PERSIST, addr, size, site=site)

    def is_persist_var(self, name: str, site: Optional[SourceSite] = None) -> None:
        """``isPersist`` over a variable registered with :meth:`reg_var`."""
        addr, size = self.get_var(name)
        self.is_persist(addr, size, site=site)

    def is_ordered_before(
        self,
        addr_a: int,
        size_a: int,
        addr_b: int,
        size_b: int,
        site: Optional[SourceSite] = None,
    ) -> None:
        """Assert writes to A are guaranteed to persist before writes to B."""
        self._record(Op.CHECK_ORDER, addr_a, size_a, addr_b, size_b, site=site)

    def tx_check_start(self, site: Optional[SourceSite] = None) -> None:
        """Begin the high-level transaction checker scope."""
        self._record(Op.TX_CHECK_START, site=site)

    def tx_check_end(self, site: Optional[SourceSite] = None) -> None:
        """End the scope; isPersist is injected for every modified object."""
        self._record(Op.TX_CHECK_END, site=site)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events captured on the calling thread but not yet sent."""
        return len(self._state().trace)

    @property
    def traces_sent(self) -> int:
        return self._pool.dispatched

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def metrics_snapshot(self) -> Optional[MetricsRegistry]:
        """Merged registry copy from the sink, or ``None`` (metrics off
        or a sink that records none)."""
        snapshot_fn = getattr(self._pool, "metrics_snapshot", None)
        return snapshot_fn() if snapshot_fn is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            self.thread_init()
            state = self._local.state
        return state

    def _new_trace(self, thread_name: str) -> Trace:
        trace = Trace(trace_id=next(self._trace_ids), thread_name=thread_name)
        for addr, size in self._sticky_exclusions:
            trace.append(Event(Op.EXCLUDE, addr, size))
        return trace

    def _record(
        self,
        op: Op,
        addr: int = 0,
        size: int = 0,
        addr2: int = 0,
        size2: int = 0,
        site: Optional[SourceSite] = None,
    ) -> None:
        state = self._state()
        if not state.enabled:
            return
        if site is None and self.capture_sites:
            site = SourceSite.capture(3)
        state.trace.append(Event(op, addr, size, addr2, size2, site))
        self.ops_recorded += 1
