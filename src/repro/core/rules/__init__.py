"""Pluggable checking rules, one set per memory persistency model.

The paper's flexibility claim rests on this seam: the engine is model
agnostic and delegates the semantics of PM operations — and the meaning of
``isPersist``/``isOrderedBefore`` — to a :class:`PersistencyRules`
implementation.  x86 strict persistency (Section 4.4) and HOPS relaxed
persistency (Section 5.2) ship in-tree; new models subclass
:class:`~repro.core.rules.base.PersistencyRules`.
"""

from repro.core.rules.base import PersistencyRules, UnsupportedOperation
from repro.core.rules.eadr import EADRRules
from repro.core.rules.hops import HOPSRules
from repro.core.rules.naive import NaiveX86Rules
from repro.core.rules.x86 import X86Rules

__all__ = [
    "EADRRules",
    "HOPSRules",
    "NaiveX86Rules",
    "PersistencyRules",
    "UnsupportedOperation",
    "X86Rules",
]
