"""The bug corpus: Table 5's synthetic bugs and Table 6's real ones.

``registry``
    42 synthetic bug cases matching the paper's Table 5 class counts —
    ordering (4), writeback (6), writeback-performance (2), transaction
    backup (19), transaction completion (7), transaction-log
    performance (4) — plus the six historical bugs of Table 6 (three
    reproduced from PMFS/PMDK commit history, three the paper found).
``injector``
    Runs any case: builds the target system with the case's faults
    injected, drives the standard workload under PMTest, and reports
    whether the expected diagnostic fired.
"""

from repro.bugs.injector import run_bug_case
from repro.bugs.registry import (
    HISTORICAL_BUGS,
    SYNTHETIC_BUGS,
    BugCase,
    bugs_by_category,
)

__all__ = [
    "BugCase",
    "HISTORICAL_BUGS",
    "SYNTHETIC_BUGS",
    "bugs_by_category",
    "run_bug_case",
]
